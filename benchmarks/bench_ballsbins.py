"""Ablation: exact allocation processes vs the published max-load bounds.

Calibrates the paper's folded constant ``k`` from first principles: for
each load level, the measured d-choice max occupancy minus the mean is
the ``log log n / log d + k'`` gap the cache-size theorem rests on —
and, unlike the one-choice gap, it must not grow with the load.
"""

from _util import active_profiler, register

from repro.ballsbins import (
    d_choice_allocate,
    max_load_bound,
    one_choice_allocate,
)
from repro.experiments.report import ExperimentResult

BINS = 500
SEED = 64
LOADS = (5_000, 20_000, 80_000)
TRIALS = 8


def _gap(allocate, balls):
    worst = 0.0
    for t in range(TRIALS):
        occ = allocate(balls, t)
        worst = max(worst, float(occ.max()) - balls / BINS)
    return worst


def _run():
    profiler = active_profiler()
    metrics = profiler.metrics if profiler is not None else None
    columns = {"balls": [], "gap_1choice": [], "gap_3choice": [], "bound_3choice_gap": []}
    for balls in LOADS:
        columns["balls"].append(balls)
        columns["gap_1choice"].append(
            _gap(
                lambda b, t: one_choice_allocate(
                    b, BINS, rng=SEED + t, metrics=metrics
                ),
                balls,
            )
        )
        columns["gap_3choice"].append(
            _gap(
                lambda b, t: d_choice_allocate(
                    b, BINS, 3, rng=SEED + t, metrics=metrics
                ),
                balls,
            )
        )
        columns["bound_3choice_gap"].append(
            max_load_bound(balls, BINS, 3, k_prime=0.75) - balls / BINS
        )
    return ExperimentResult(
        name="ballsbins",
        description="max-occupancy gap above the mean: one choice grows, three choices stay O(1)",
        columns=columns,
        config={"bins": BINS, "trials": TRIALS},
    )


def _check(result) -> None:
    one = result.column("gap_1choice")
    three = result.column("gap_3choice")
    bound = result.column("bound_3choice_gap")
    # One-choice gap grows with load (~sqrt), three-choice stays flat.
    assert one[-1] > 2 * one[0]
    assert three[-1] <= three[0] + 1.0
    # The calibrated d-choice bound covers every measurement.
    assert all(g <= b for g, b in zip(three, bound))
    # And the d-choice gap is dramatically smaller at heavy load.
    assert three[-1] < one[-1] / 5


def _workload(result):
    # Both processes throw every load level TRIALS times.
    return {"balls": 2 * TRIALS * sum(result.column("balls"))}


SPEC = register("ballsbins", run=_run, check=_check, workload=_workload, seed=SEED)


def bench_ballsbins(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: exact allocation processes vs the published max-load bounds.

Calibrates the paper's folded constant ``k`` from first principles: for
each load level, the measured d-choice max occupancy minus the mean is
the ``log log n / log d + k'`` gap the cache-size theorem rests on —
and, unlike the one-choice gap, it must not grow with the load.
"""

from _util import emit

from repro.ballsbins import (
    d_choice_allocate,
    max_load_bound,
    one_choice_allocate,
)
from repro.experiments.report import ExperimentResult

BINS = 500
SEED = 64
LOADS = (5_000, 20_000, 80_000)
TRIALS = 8


def _gap(allocate, balls):
    worst = 0.0
    for t in range(TRIALS):
        occ = allocate(balls, t)
        worst = max(worst, float(occ.max()) - balls / BINS)
    return worst


def _run():
    columns = {"balls": [], "gap_1choice": [], "gap_3choice": [], "bound_3choice_gap": []}
    for balls in LOADS:
        columns["balls"].append(balls)
        columns["gap_1choice"].append(
            _gap(lambda b, t: one_choice_allocate(b, BINS, rng=SEED + t), balls)
        )
        columns["gap_3choice"].append(
            _gap(lambda b, t: d_choice_allocate(b, BINS, 3, rng=SEED + t), balls)
        )
        columns["bound_3choice_gap"].append(
            max_load_bound(balls, BINS, 3, k_prime=0.75) - balls / BINS
        )
    return ExperimentResult(
        name="ballsbins",
        description="max-occupancy gap above the mean: one choice grows, three choices stay O(1)",
        columns=columns,
        config={"bins": BINS, "trials": TRIALS},
    )


def bench_ballsbins(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("ballsbins", result.render())

    one = result.column("gap_1choice")
    three = result.column("gap_3choice")
    bound = result.column("bound_3choice_gap")
    # One-choice gap grows with load (~sqrt), three-choice stays flat.
    assert one[-1] > 2 * one[0]
    assert three[-1] <= three[0] + 1.0
    # The calibrated d-choice bound covers every measurement.
    assert all(g <= b for g, b in zip(three, bound))
    # And the d-choice gap is dramatically smaller at heavy load.
    assert three[-1] < one[-1] / 5

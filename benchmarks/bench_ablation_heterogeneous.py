"""Ablation: heterogeneous capacities — capacity-blind vs aware placement.

The paper assumes uniform node capacity; real clusters mix hardware
generations.  Under capacity-blind least-loaded placement every node
carries the same worst-case load, so the weakest machine caps the whole
cluster.  Capacity-aware (least-utilized) placement shifts keys toward
big nodes; this bench measures peak *utilization* (load/capacity) under
both policies on a mixed cluster and checks the
:mod:`repro.core.heterogeneous` per-node bound covers the aware run.
"""

import numpy as np
from _util import register

from repro.ballsbins.allocation import sample_replica_groups
from repro.cluster.selection import LeastLoadedKeyPinning, LeastUtilizedKeyPinning
from repro.core.heterogeneous import utilization_equalizing_bound
from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.rng import RngFactory

N = 100
M = 20_000
C = 100
D = 3
RATE = 10_000.0
TRIALS = 10
SEED = 67


def _capacities():
    # Two hardware generations: 80 standard nodes, 20 at 3x capacity.
    capacities = np.full(N, 1.5 * RATE / N)
    capacities[:20] *= 3.0
    return capacities


def _run():
    params = SystemParameters(n=N, m=M, c=C, d=D, rate=RATE)
    capacities = _capacities()
    x = M  # the Case-2 full sweep
    rates = np.full(x - C, RATE / x)
    factory = RngFactory(SEED)

    blind_util, aware_util, blind_sat, aware_sat = [], [], [], []
    for trial in range(TRIALS):
        gen = factory.generator("hetero", trial=trial)
        groups = sample_replica_groups(x - C, N, D, rng=gen)
        blind = LeastLoadedKeyPinning().node_loads(groups, rates, N)
        aware = LeastUtilizedKeyPinning(capacities).node_loads(groups, rates, N)
        blind_util.append(float((blind / capacities).max()))
        aware_util.append(float((aware / capacities).max()))
        blind_sat.append(int((blind > capacities).sum()))
        aware_sat.append(int((aware > capacities).sum()))

    bound = utilization_equalizing_bound(params, capacities, k_prime=0.75)
    columns = {
        "policy": ["capacity-blind", "capacity-aware"],
        "peak_utilization": [
            round(float(np.max(blind_util)), 3),
            round(float(np.max(aware_util)), 3),
        ],
        "saturated_nodes_worst": [max(blind_sat), max(aware_sat)],
    }
    return ExperimentResult(
        name="ablation-heterogeneous",
        description=(
            "mixed-capacity cluster (20% nodes at 3x) under the full-sweep "
            "attack: peak node utilization by placement policy"
        ),
        columns=columns,
        config={"n": N, "m": M, "c": C, "d": D, "trials": TRIALS,
                "standard_capacity": round(1.5 * RATE / N, 1),
                "bound_utilization_max": round(float((bound / capacities).max()), 4)},
    )


def _check(result) -> None:
    blind, aware = result.column("peak_utilization")
    # Capacity-aware placement strictly reduces the peak utilization on
    # a mixed cluster.
    assert aware < blind
    # And keeps the standard nodes from saturating where blind placement
    # pushes them over.
    blind_sat, aware_sat = result.column("saturated_nodes_worst")
    assert aware_sat <= blind_sat
    # The per-node heterogeneous bound covers the aware policy's loads
    # (utilization form: bound_i / capacity_i >= measured peak).
    assert aware <= result.config["bound_utilization_max"] + 0.05


def _workload(result):
    return {"balls": TRIALS * (M - C)}


SPEC = register(
    "ablation_heterogeneous", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_heterogeneous(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: replica-selection policy vs attack gain.

The theory models per-key least-loaded-of-d selection.  How much do the
deployable alternatives (per-query round-robin, random pinning, primary
pinning) give away under the full-sweep attack?

Expected ordering (heavy-load regime): least-loaded best, round-robin
close behind, random/primary pinning clearly worse (they degenerate to
one-choice placement).
"""

from _util import register

from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack

TRIALS = 10
SEED = 61
POLICIES = ("least-loaded", "round-robin", "random-pin", "primary")


def _run():
    params = SystemParameters(n=200, m=20_000, c=200, d=3, rate=20_000.0)
    x = params.m
    columns = {"policy": [], "worst_gain": [], "mean_gain": []}
    for policy in POLICIES:
        report = simulate_uniform_attack(
            params, x, trials=TRIALS, seed=SEED, selection=policy
        )
        columns["policy"].append(policy)
        columns["worst_gain"].append(report.worst_case)
        columns["mean_gain"].append(report.mean)
    return ExperimentResult(
        name="ablation-selection",
        description="attack gain under each replica-selection policy (x = m sweep)",
        columns=columns,
        config={"n": params.n, "m": params.m, "c": params.c, "d": params.d, "trials": TRIALS},
    )


def _check(result) -> None:
    gain = dict(zip(result.column("policy"), result.column("worst_gain")))
    assert gain["least-loaded"] <= gain["round-robin"] + 0.02
    assert gain["round-robin"] < gain["random-pin"]
    # Random and primary pinning are the same process statistically.
    assert abs(gain["random-pin"] - gain["primary"]) < 0.5


def _workload(result):
    return {"balls": len(POLICIES) * TRIALS * result.config["m"]}


SPEC = register(
    "ablation_selection", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_selection(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

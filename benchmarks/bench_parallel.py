"""Serial-vs-parallel campaign speedup and d-choice kernel throughput.

Two measurements, one artifact (``benchmarks/results/parallel.json``):

- **campaign**: the same Monte-Carlo uniform-attack campaign run at
  several worker counts.  Per worker count: wall-seconds, trials/s,
  speedup over the serial run and — the part that actually matters —
  whether the per-trial results are bit-identical to the serial run
  (they must be; the parallel substrate derives the exact same
  ``(seed, label, trial)`` RNG streams).
- **kernel**: the sequential reference d-choice loop vs the batched
  numpy kernel on one shared candidate matrix, with byte-identical
  occupancy required.

``REPRO_BENCH_SMOKE=1`` shrinks both to a seconds-scale run (written to
``parallel_smoke.json`` so the full-scale artifact survives test runs).
Speedup assertions are gated on the host actually having the cores to
parallelise over — a single-core container can still verify determinism
and kernel throughput, just not multi-process scaling.
"""

import os

from _util import active_profiler, register, smoke_mode, timed

from repro.ballsbins.allocation import (
    _d_choice_batched,
    _d_choice_sequential,
    sample_replica_groups,
)
from repro.core.notation import SystemParameters
from repro.sim.analytic import simulate_uniform_attack

SEED = 20130708

#: Full-scale campaign: the acceptance configuration — 64 trials of the
#: widest paper attack (x = m, ~1e5 balls/trial) at 1/2/4 workers.
FULL_CAMPAIGN = {
    "params": dict(n=1000, m=100_000, c=200, d=3, rate=1e5),
    "x": 100_000,
    "trials": 64,
    "workers": (1, 2, 4),
}
SMOKE_CAMPAIGN = {
    "params": dict(n=200, m=10_000, c=100, d=3, rate=1e5),
    "x": 10_000,
    "trials": 8,
    "workers": (1, 2),
}

#: Full-scale kernel: the acceptance configuration from ISSUE 1.
FULL_KERNEL = {"balls": 1_000_000, "bins": 1024, "d": 2}
SMOKE_KERNEL = {"balls": 100_000, "bins": 1024, "d": 2}


def _profiler_metrics():
    profiler = active_profiler()
    return profiler.metrics if profiler is not None else None


def run_campaign_bench() -> dict:
    spec = SMOKE_CAMPAIGN if smoke_mode() else FULL_CAMPAIGN
    params = SystemParameters(**spec["params"])
    trials, x = spec["trials"], spec["x"]
    metrics = _profiler_metrics()
    rows = []
    serial_seconds = None
    serial_series = None
    for workers in spec["workers"]:
        report, seconds = timed(
            simulate_uniform_attack,
            params, x, trials=trials, seed=SEED, workers=workers,
            metrics=metrics,
        )
        if serial_seconds is None:
            serial_seconds, serial_series = seconds, report.normalized_max_per_trial
        rows.append(
            {
                "workers": workers,
                "wall_seconds": seconds,
                "trials_per_second": trials / seconds,
                "speedup": serial_seconds / seconds,
                "identical_to_serial": bool(
                    (report.normalized_max_per_trial == serial_series).all()
                ),
            }
        )
    return {
        "config": {**spec["params"], "x": x, "trials": trials, "seed": SEED},
        "results": rows,
    }


def run_kernel_bench() -> dict:
    spec = SMOKE_KERNEL if smoke_mode() else FULL_KERNEL
    balls, bins, d = spec["balls"], spec["bins"], spec["d"]
    metrics = _profiler_metrics()
    choices = sample_replica_groups(balls, bins, d, rng=SEED, metrics=metrics)
    sequential_occ, sequential_seconds = timed(_d_choice_sequential, choices, bins)
    batched_occ, batched_seconds = timed(
        _d_choice_batched, choices, bins, metrics=metrics
    )
    return {
        "config": {**spec, "seed": SEED},
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "sequential_balls_per_second": balls / sequential_seconds,
        "batched_balls_per_second": balls / batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "identical_occupancy": bool((sequential_occ == batched_occ).all()),
    }


def _run() -> dict:
    return {
        "smoke": smoke_mode(),
        "cpu_count": os.cpu_count(),
        "campaign": run_campaign_bench(),
        "kernel": run_kernel_bench(),
    }


def _render(payload: dict) -> str:
    campaign, kernel = payload["campaign"], payload["kernel"]
    lines = [
        "== parallel: campaign fan-out speedup + batched d-choice kernel",
        f"host cpus: {payload['cpu_count']}, smoke: {payload['smoke']}",
        "",
        f"campaign ({campaign['config']['trials']} trials, "
        f"x={campaign['config']['x']}, n={campaign['config']['n']}):",
        "workers  wall_s  trials/s  speedup  identical",
    ]
    for row in campaign["results"]:
        lines.append(
            f"{row['workers']:>7}  {row['wall_seconds']:>6.2f}  "
            f"{row['trials_per_second']:>8.2f}  {row['speedup']:>7.2f}  "
            f"{str(row['identical_to_serial']):>9}"
        )
    lines += [
        "",
        f"kernel (n={kernel['config']['bins']}, d={kernel['config']['d']}, "
        f"balls={kernel['config']['balls']}):",
        f"sequential {kernel['sequential_seconds']:.3f}s "
        f"({kernel['sequential_balls_per_second']:.2e} balls/s), "
        f"batched {kernel['batched_seconds']:.3f}s "
        f"({kernel['batched_balls_per_second']:.2e} balls/s), "
        f"speedup {kernel['speedup']:.2f}x, "
        f"identical: {kernel['identical_occupancy']}",
    ]
    return "\n".join(lines)


def _check(payload: dict) -> None:
    # Determinism is non-negotiable on any host.
    assert all(r["identical_to_serial"] for r in payload["campaign"]["results"])
    assert payload["kernel"]["identical_occupancy"]
    if not payload["smoke"]:
        # Throughput claims need the full-scale workload (and, for the
        # campaign, actual cores) to be meaningful.
        assert payload["kernel"]["speedup"] >= 3.0
        cpus = payload["cpu_count"] or 1
        for row in payload["campaign"]["results"]:
            if row["workers"] > 1 and cpus >= row["workers"]:
                assert row["speedup"] >= row["workers"] / 2.0


def _workload(payload: dict):
    campaign = payload["campaign"]["config"]
    balls = campaign["x"] * campaign["trials"] * len(payload["campaign"]["results"])
    balls += 2 * payload["kernel"]["config"]["balls"]
    return {"balls": balls}


SPEC = register(
    "parallel", run=_run, render=_render, check=_check, workload=_workload,
    seed=SEED,
)


def bench_parallel(benchmark):
    result = benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )
    payload = result.payload
    # Scaling assertions from the original pytest-only path (full scale).
    if not payload["smoke"]:
        assert payload["kernel"]["speedup"] >= 3.0


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

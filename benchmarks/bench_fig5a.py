"""Figure 5(a): best achievable normalized max workload vs cache size.

Paper shape to reproduce: the best gain decreases with the cache size
and crosses 1.0 at a critical point that is Theta(n) and independent of
the number of stored items; the analytic bound lands near the crossing.
"""

from _util import register

from repro.core.cases import critical_cache_size
from repro.experiments import PAPER, run_fig5a

TRIALS = 10
SEED = 51


def _run():
    return run_fig5a(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    cs = result.column("c")
    gains = result.column("best_gain")
    assert gains[0] > 1.0, "small caches must admit effective attacks"
    assert gains[-1] <= 1.05, "large caches must prevent them"
    # Weak monotonicity (Monte-Carlo wiggle tolerated).
    assert all(a >= b - 0.25 for a, b in zip(gains, gains[1:]))
    # The empirical crossing sits between the two analytic estimates
    # (paper's folded k = 1.2 and the substrate-calibrated k), up to the
    # sweep granularity.
    crossing = next(c for c, g in zip(cs, gains) if g <= 1.0)
    lo = critical_cache_size(PAPER.n, PAPER.d, k=PAPER.k)
    hi = critical_cache_size(PAPER.n, PAPER.d, k_prime=0.75)
    assert 0.5 * lo <= crossing <= 1.5 * hi


SPEC = register("fig5a", run=_run, check=_check, seed=SEED)


def bench_fig5a(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Extension: stealth attack shares — damage vs visibility.

Sweeps the fraction of offered traffic the adversary controls (the rest
is benign Zipf) against an under-provisioned cache.  Asserted findings:

- damage is ~linear in the share: gain ≈ share × n/(c+1), so crossing
  the even split needs a majority share;
- visibility is poor: blended shares keep a benign-looking entropy
  fingerprint; only the ~pure flood is flagged — detection does not
  substitute for provisioning.
"""

from _util import register

from repro.experiments.stealth import run_stealth_sweep

TRIALS = 10
SEED = 71


def _run():
    return run_stealth_sweep(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    fractions = result.column("attack_fraction")
    gains = result.column("gain")
    verdicts = result.column("verdict")
    n = result.config["n"]
    flood_x = result.config["flood_x"]

    # Pure flood reproduces the Case-1 gain n/(c+1).
    assert gains[-1] == max(gains)
    assert abs(gains[-1] - n / flood_x) / (n / flood_x) < 0.1
    # Damage ~ linear: half share yields well under the full-gain damage.
    idx_small = fractions.index(0.2)
    assert gains[idx_small] < 0.6 * gains[-1]
    # Visibility: every blended share reads benign; the pure flood is
    # flagged.
    for fraction, verdict in zip(fractions, verdicts):
        if 0.0 < fraction <= 0.7:
            assert verdict == "skewed-benign", (fraction, verdict)
    assert verdicts[-1] == "uniform-flood"


SPEC = register("stealth", run=_run, check=_check, seed=SEED)


def bench_stealth(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

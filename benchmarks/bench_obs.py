"""Observability overhead: instrumented vs uninstrumented hot paths.

The observability layer's contract (docs/OBSERVABILITY.md) is that the
default-off configuration costs nothing measurable and that attaching a
registry never changes a result.  This bench quantifies both claims on
the two engines:

- **monte-carlo**: the uniform-attack campaign with (a) ``metrics=None``
  (the default), (b) the shared null registry, (c) a live
  ``MetricsRegistry`` plus ``Tracer``.
- **eventsim**: one request-level replay under the same three modes.
- **monitor**: the same replay with the *online monitor* off / null /
  live — the per-request path is the hottest hook in the repository, so
  the null monitor must sit at the uninstrumented floor and even the
  live monitor (windows + streaming entropy + alerts) must not dominate
  the run.
- **trace**: the same replay with the *flight recorder* off / sampled
  (1% — the recommended production rate) / full (every request traced
  and attributed).  The sampler is a keyed hash, not an RNG draw, so
  all three modes must return bit-identical results; the 1% mode must
  stay within 15% of the untraced floor.

Wall time per mode is the *minimum* over ``REPEATS`` runs (minimum, not
mean: instrumentation overhead is a floor effect, and the minimum
discards scheduler noise).  Determinism is asserted strictly —
instrumented results must equal uninstrumented bit for bit; the timing
thresholds stay deliberately lenient because container CI timing is
noisy (the committed full-scale artifact is the honest measurement).

``REPRO_BENCH_SMOKE=1`` shrinks the configuration and writes
``obs_smoke.json`` so the full-scale artifact survives test runs.
"""

from _util import register, smoke_mode, timed

from repro.cache.lru import LRUCache
from repro.core.notation import SystemParameters
from repro.obs import (
    NULL_MONITOR,
    NULL_REGISTRY,
    NULL_TRACER,
    FlightRecorder,
    LoadMonitor,
    MetricsRegistry,
    MonitorConfig,
    TraceConfig,
    Tracer,
)
from repro.sim.analytic import MonteCarloSimulator
from repro.sim.config import SimulationConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.distributions import UniformDistribution

SEED = 20130708

FULL = {
    "params": dict(n=1000, m=100_000, c=200, d=3, rate=1e5),
    "x": 20_000,
    "trials": 40,
    "n_queries": 60_000,
    "repeats": 3,
}
SMOKE = {
    "params": dict(n=100, m=5_000, c=50, d=3, rate=1e5),
    "x": 2_000,
    "trials": 8,
    "n_queries": 8_000,
    "repeats": 2,
}

#: (mode name, registry factory, tracer factory).  ``None`` factories
#: leave the argument at its default-off value.
MODES = (
    ("off", lambda: None, lambda: None),
    ("null", lambda: NULL_REGISTRY, lambda: NULL_TRACER),
    ("full", MetricsRegistry, Tracer),
)

#: (mode name, monitor factory) for the online-monitor section.
MONITOR_MODES = (
    ("off", lambda: None),
    ("null", lambda: NULL_MONITOR),
    ("live", lambda: LoadMonitor(MonitorConfig(window=0.05))),
)

#: (mode name, recorder factory) for the flight-recorder section.
TRACE_MODES = (
    ("off", lambda: None),
    ("sampled", lambda: FlightRecorder(TraceConfig(sample=0.01), seed=SEED)),
    ("full", lambda: FlightRecorder(TraceConfig(sample=1.0), seed=SEED)),
)


def _min_of(repeats, fn):
    best_result, best_seconds = None, None
    for _ in range(repeats):
        result, seconds = timed(fn)
        if best_seconds is None or seconds < best_seconds:
            best_result, best_seconds = result, seconds
    return best_result, best_seconds


def run_monte_carlo_bench(spec) -> dict:
    params = SystemParameters(**spec["params"])
    rows, baseline = {}, None
    for mode, metrics_factory, tracer_factory in MODES:

        def campaign():
            sim = MonteCarloSimulator(
                SimulationConfig(
                    params=params, trials=spec["trials"], seed=SEED,
                    metrics=metrics_factory(), tracer=tracer_factory(),
                )
            )
            return sim.uniform_attack(spec["x"])

        report, seconds = _min_of(spec["repeats"], campaign)
        series = report.normalized_max_per_trial
        if baseline is None:
            baseline = series
        rows[mode] = {
            "wall_seconds": seconds,
            "identical_to_off": bool((series == baseline).all()),
        }
    off = rows["off"]["wall_seconds"]
    for mode in rows:
        rows[mode]["overhead_pct"] = 100.0 * (rows[mode]["wall_seconds"] / off - 1.0)
    return {
        "config": {**spec["params"], "x": spec["x"], "trials": spec["trials"],
                   "seed": SEED},
        "modes": rows,
    }


def run_eventsim_bench(spec) -> dict:
    params = SystemParameters(**spec["params"])
    rows, baseline = {}, None
    for mode, metrics_factory, tracer_factory in MODES:

        def replay():
            sim = EventDrivenSimulator(
                params,
                UniformDistribution(params.m),
                cache=LRUCache(params.c),
                seed=SEED,
                metrics=metrics_factory(),
                tracer=tracer_factory(),
            )
            return sim.run(spec["n_queries"])

        outcome, seconds = _min_of(spec["repeats"], replay)
        if baseline is None:
            baseline = outcome
        rows[mode] = {
            "wall_seconds": seconds,
            "identical_to_off": bool(
                outcome.normalized_max == baseline.normalized_max
                and (outcome.served == baseline.served).all()
                and outcome.cache_hit_rate == baseline.cache_hit_rate
            ),
        }
    off = rows["off"]["wall_seconds"]
    for mode in rows:
        rows[mode]["overhead_pct"] = 100.0 * (rows[mode]["wall_seconds"] / off - 1.0)
    return {
        "config": {**spec["params"], "n_queries": spec["n_queries"], "seed": SEED},
        "modes": rows,
    }


def run_monitor_bench(spec) -> dict:
    """Null vs live online monitor on the event-driven request path."""
    params = SystemParameters(**spec["params"])
    rows, baseline = {}, None
    for mode, monitor_factory in MONITOR_MODES:

        def replay():
            sim = EventDrivenSimulator(
                params,
                UniformDistribution(params.m),
                cache=LRUCache(params.c),
                seed=SEED,
                monitor=monitor_factory(),
            )
            return sim.run(spec["n_queries"])

        outcome, seconds = _min_of(spec["repeats"], replay)
        if baseline is None:
            baseline = outcome
        rows[mode] = {
            "wall_seconds": seconds,
            "identical_to_off": bool(
                outcome.normalized_max == baseline.normalized_max
                and (outcome.served == baseline.served).all()
                and outcome.cache_hit_rate == baseline.cache_hit_rate
            ),
        }
    off = rows["off"]["wall_seconds"]
    for mode in rows:
        rows[mode]["overhead_pct"] = 100.0 * (rows[mode]["wall_seconds"] / off - 1.0)
    return {
        "config": {**spec["params"], "n_queries": spec["n_queries"], "seed": SEED},
        "modes": rows,
    }


def run_trace_bench(spec) -> dict:
    """Off vs sampled vs full flight recorder on the request path."""
    params = SystemParameters(**spec["params"])
    rows, baseline = {}, None
    for mode, trace_factory in TRACE_MODES:
        sampled = 0

        def replay():
            nonlocal sampled
            recorder = trace_factory()
            sim = EventDrivenSimulator(
                params,
                UniformDistribution(params.m),
                cache=LRUCache(params.c),
                seed=SEED,
                trace=recorder,
            )
            outcome = sim.run(spec["n_queries"])
            if recorder is not None:
                sampled = recorder.sampled
            return outcome

        outcome, seconds = _min_of(spec["repeats"], replay)
        if baseline is None:
            baseline = outcome
        rows[mode] = {
            "wall_seconds": seconds,
            "sampled": sampled,
            "identical_to_off": bool(
                outcome.normalized_max == baseline.normalized_max
                and (outcome.served == baseline.served).all()
                and outcome.cache_hit_rate == baseline.cache_hit_rate
            ),
        }
    off = rows["off"]["wall_seconds"]
    for mode in rows:
        rows[mode]["overhead_pct"] = 100.0 * (rows[mode]["wall_seconds"] / off - 1.0)
    return {
        "config": {**spec["params"], "n_queries": spec["n_queries"], "seed": SEED},
        "modes": rows,
    }


def _run() -> dict:
    spec = SMOKE if smoke_mode() else FULL
    return {
        "smoke": smoke_mode(),
        "repeats": spec["repeats"],
        "monte_carlo": run_monte_carlo_bench(spec),
        "eventsim": run_eventsim_bench(spec),
        "monitor": run_monitor_bench(spec),
        "trace": run_trace_bench(spec),
    }


def _render(payload: dict) -> str:
    lines = [
        "== obs: instrumentation overhead (min over "
        f"{payload['repeats']} runs, smoke: {payload['smoke']})",
    ]
    for section in ("monte_carlo", "eventsim", "monitor", "trace"):
        lines += ["", f"{section}:", "mode     wall_s   overhead  identical"]
        for mode, row in payload[section]["modes"].items():
            lines.append(
                f"{mode:>7}  {row['wall_seconds']:>6.3f}  "
                f"{row['overhead_pct']:>+7.1f}%  {str(row['identical_to_off']):>9}"
            )
    return "\n".join(lines)


def _check(payload: dict) -> None:
    for section in ("monte_carlo", "eventsim", "monitor", "trace"):
        modes = payload[section]["modes"]
        # Hard contract: instrumentation never changes a result.  For
        # the trace section this is the RNG-free sampler claim: traced
        # runs reproduce the untraced golden results bit for bit.
        assert all(row["identical_to_off"] for row in modes.values()), section
        if payload["smoke"] or section == "trace":
            continue
        # Soft contract, full scale only (smoke runs are too short
        # to time reliably on a loaded host): the null sink must
        # stay near the uninstrumented floor, and even full
        # instrumentation must not dominate the run.
        assert modes["null"]["overhead_pct"] < 25.0, section
        live = "live" if "live" in modes else "full"
        assert modes[live]["overhead_pct"] < 100.0, section
    trace = payload["trace"]["modes"]
    assert trace["sampled"]["sampled"] > 0, "1% sampler admitted nothing"
    assert trace["full"]["sampled"] == payload["trace"]["config"]["n_queries"]
    if not payload["smoke"]:
        # The production recommendation: 1% sampling stays within 15%
        # of the untraced floor.  Tracing *everything* honestly costs
        # about one extra run (a record plus attribution per request);
        # bound it so a superlinear regression still fails.
        assert trace["sampled"]["overhead_pct"] < 15.0, "trace"
        assert trace["full"]["overhead_pct"] < 250.0, "trace"


def _workload(payload: dict):
    mc = payload["monte_carlo"]["config"]
    ev = payload["eventsim"]["config"]
    repeats = payload["repeats"]
    modes = len(MODES)
    # eventsim + monitor + trace sections each replay every mode.
    events = 3 * modes * repeats * ev["n_queries"]
    balls = modes * repeats * mc["trials"] * mc["x"]
    return {"events": events, "balls": balls}


SPEC = register(
    "obs", run=_run, render=_render, check=_check, workload=_workload, seed=SEED
)


def bench_obs(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

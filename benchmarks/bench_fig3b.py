"""Figure 3(b): normalized max workload vs x, large cache (c = 2000).

Paper shape to reproduce: the curve *increases* with the number of
queried keys but stays at/below ~1.0 — with a provisioned cache the
adversary's best play (query everything) is no better than benign
uniform traffic.
"""

from _util import register

from repro.experiments import run_fig3b

TRIALS = 30
SEED = 32


def _run():
    return run_fig3b(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    gains = result.column("sim_max")
    assert gains[-1] >= gains[0], "curve must increase in x"
    assert max(gains) <= 1.1, "no strongly effective attack with c = 2000"
    calibrated = result.column("bound_calib")
    assert all(g <= b + 1e-9 for g, b in zip(gains, calibrated))


SPEC = register("fig3b", run=_run, check=_check, seed=SEED)


def bench_fig3b(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

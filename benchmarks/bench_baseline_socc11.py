"""Ablation: the unreplicated baseline's interior optimum, empirically.

The paper's contrast with Fan et al. (SoCC'11): without replication the
adversary's best flood width ``x*`` is an *interior* optimum (a
continuous function of c and n), and the attack is always effective.
This bench sweeps ``x`` on a ``d = 1`` cluster, locates the empirical
optimum, and checks it against :mod:`repro.core.baseline_socc11`'s
analytic ``x*`` — then confirms the same sweep on ``d = 3`` has *no*
interior optimum (the endpoints win), which is this paper's Theorem-1
case structure.
"""

import numpy as np
from _util import register

from repro.core import baseline_socc11
from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack

N = 200
M = 20_000
C = 60
RATE = 20_000.0
TRIALS = 12
SEED = 70


def _sweep(d):
    params = SystemParameters(n=N, m=M, c=C, d=d, rate=RATE)
    xs = np.unique(
        np.round(np.geomspace(C + 1, M, num=14)).astype(int)
    )
    gains = [
        simulate_uniform_attack(params, int(x), trials=TRIALS, seed=SEED).worst_case
        for x in xs
    ]
    return params, xs.tolist(), gains


def _run():
    params1, xs, gains_d1 = _sweep(d=1)
    _, _, gains_d3 = _sweep(d=3)
    analytic_xstar = baseline_socc11.optimal_query_count(params1)
    return ExperimentResult(
        name="baseline-socc11",
        description=(
            "gain vs flood width x: unreplicated (d=1, interior optimum) vs "
            "replicated (d=3, endpoint optimum)"
        ),
        columns={"x": xs, "gain_d1": gains_d1, "gain_d3": gains_d3},
        config={
            "n": N, "m": M, "c": C, "trials": TRIALS,
            "analytic_xstar_d1": analytic_xstar,
        },
    )


def _check(result) -> None:
    xs = result.column("x")
    d1 = result.column("gain_d1")
    d3 = result.column("gain_d3")
    analytic_xstar = result.config["analytic_xstar_d1"]

    # d=1: interior optimum — the peak is strictly inside the sweep...
    peak = int(np.argmax(d1))
    assert 0 < peak < len(xs) - 1, "d=1 optimum should be interior"
    # ...in the same region as the analytic x* (order of magnitude).
    assert xs[peak] / 10 <= analytic_xstar <= xs[peak] * 10
    # ...and always effective at its optimum.
    assert max(d1) > 1.0

    # d=3 with c < c*: the optimum hugs the small endpoint.  (The bound
    # is maximised exactly at x = c + 1; the max-of-trials statistic can
    # peak one grid step in, where the discrete max occupancy first
    # jumps from 1 to 2 — still nothing like d=1's mid-sweep optimum.)
    peak_d3 = int(np.argmax(d3))
    assert xs[peak_d3] <= 3 * (C + 1), "d=3 optimum must hug x ~ c + 1"
    # Past the small-x region the d=3 curve is decreasing toward ~1.
    assert d3[-1] < max(d3) / 2
    # Replication beats no-replication at every interior width.
    for g1, g3 in zip(d1[2:-1], d3[2:-1]):
        assert g3 <= g1 + 0.05


def _workload(result):
    # Two sweeps, TRIALS trials per x, each throwing ~x balls.
    return {"balls": 2 * TRIALS * sum(result.column("x"))}


SPEC = register(
    "baseline_socc11", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_baseline_socc11(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: request-level engine vs the paper's placement model.

The paper (and our Monte-Carlo engine) abstracts queueing away; this
bench replays the same attack through the discrete-event engine — real
Poisson arrivals, per-node FIFO queues, finite capacity — and checks the
two engines agree on the normalized max load, and that the capacity
corollary (capacity > E[L_max] bound => no drops) holds in the queueing
world.

``REPRO_BENCH_SMOKE=1`` shrinks the replay to a seconds-scale run and
writes ``eventsim_smoke.json`` so the committed full-scale artifact
survives test runs.
"""

import numpy as np
from _util import active_profiler, register, smoke_mode, timed

from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

SEED = 65

FULL = {
    "params": dict(n=50, m=5000, c=25, d=3, rate=10_000.0),
    "x_values": (26, 200, 2000),
    "n_queries": 60_000,
    "event_trials": 4,
    "analytic_trials": 20,
}
SMOKE = {
    "params": dict(n=20, m=1000, c=10, d=3, rate=10_000.0),
    "x_values": (11, 200),
    "n_queries": 8_000,
    "event_trials": 2,
    "analytic_trials": 8,
}


def _sweep():
    spec = SMOKE if smoke_mode() else FULL
    params = SystemParameters(**spec["params"])
    profiler = active_profiler()
    metrics = profiler.metrics if profiler is not None else None
    columns = {"x": [], "analytic_mean": [], "eventsim_mean": [], "drop_rate": []}
    for x in spec["x_values"]:
        analytic = simulate_uniform_attack(
            params, x, trials=spec["analytic_trials"], seed=SEED
        ).mean
        gains, drops = [], []
        for trial in range(spec["event_trials"]):
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(params.m, x), seed=SEED,
                metrics=metrics,
            )
            outcome = sim.run(spec["n_queries"], trial=trial)
            gains.append(outcome.normalized_max)
            drops.append(outcome.drop_rate)
        columns["x"].append(x)
        columns["analytic_mean"].append(analytic)
        columns["eventsim_mean"].append(float(np.mean(gains)))
        columns["drop_rate"].append(float(np.mean(drops)))
    return ExperimentResult(
        name="eventsim-vs-analytic",
        description="normalized max load: placement model vs request-level queueing model",
        columns=columns,
        config={**spec["params"], "queries": spec["n_queries"],
                "event_trials": spec["event_trials"]},
    )


def _agreement(columns: dict) -> bool:
    ok = True
    for analytic, event in zip(columns["analytic_mean"], columns["eventsim_mean"]):
        ok = ok and abs(event - analytic) <= 0.3 * abs(analytic)
    # Capacity corollary: default capacity is 4 R / n; whenever the
    # analytic gain stays below 4, drops are negligible.
    for analytic, drop in zip(columns["analytic_mean"], columns["drop_rate"]):
        if analytic < 3.5:
            ok = ok and drop < 0.01
    return ok


def _run() -> dict:
    result, seconds = timed(_sweep)
    return {
        "smoke": smoke_mode(),
        "wall_seconds": seconds,
        "config": dict(result.config),
        "columns": {name: list(values) for name, values in result.columns.items()},
        "engines_agree": _agreement(result.columns),
    }


def _render(payload: dict) -> str:
    return ExperimentResult(
        name="eventsim-vs-analytic",
        description="normalized max load: placement model vs request-level queueing model",
        columns=payload["columns"],
        config=payload["config"],
    ).render()


def _check(payload: dict) -> None:
    columns = payload["columns"]
    for analytic, event in zip(columns["analytic_mean"], columns["eventsim_mean"]):
        assert abs(event - analytic) <= 0.3 * abs(analytic), (analytic, event)
    assert payload["engines_agree"]


def _workload(payload: dict):
    config = payload["config"]
    events = (
        config["queries"] * config["event_trials"] * len(payload["columns"]["x"])
    )
    return {"events": events}


SPEC = register(
    "eventsim", run=_run, render=_render, check=_check, workload=_workload,
    seed=SEED,
)


def bench_eventsim(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

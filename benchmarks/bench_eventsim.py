"""Ablation: request-level engine vs the paper's placement model.

The paper (and our Monte-Carlo engine) abstracts queueing away; this
bench replays the same attack through the discrete-event engine — real
Poisson arrivals, per-node FIFO queues, finite capacity — and checks the
two engines agree on the normalized max load, and that the capacity
corollary (capacity > E[L_max] bound => no drops) holds in the queueing
world.

The replay runs twice, once per event engine: the ``legacy`` per-event
scheduler and the ``fast`` batched kernel (``repro.sim.kernel``).  The
payload's ``engines`` block records per-engine throughput, the check
asserts the two engines produced *identical* results, and — at full
scale — that the fast kernel beats legacy by >= 5x (the committed
``BENCH_eventsim.json`` trajectory tracks the measured ratio).

``REPRO_BENCH_SMOKE=1`` shrinks the replay to a seconds-scale run and
writes ``eventsim_smoke.json`` so the committed full-scale artifact
survives test runs.
"""

import tracemalloc
from contextlib import contextmanager, nullcontext

import numpy as np
from _util import active_profiler, register, smoke_mode, timed

from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

SEED = 65

#: Full-scale gate: the batched kernel must beat the legacy scheduler
#: by at least this factor (the ISSUE 6 floor; measured ratios run
#: higher, see ``BENCH_eventsim.json``).
MIN_SPEEDUP = 5.0

FULL = {
    "params": dict(n=50, m=5000, c=25, d=3, rate=10_000.0),
    "x_values": (26, 200, 2000),
    "n_queries": 60_000,
    "event_trials": 4,
    "analytic_trials": 20,
}
SMOKE = {
    "params": dict(n=20, m=1000, c=10, d=3, rate=10_000.0),
    "x_values": (11, 200),
    "n_queries": 8_000,
    "event_trials": 2,
    "analytic_trials": 8,
}


@contextmanager
def _memory_tracing_paused():
    """Suspend ``tracemalloc`` around the throughput-timed sections.

    The perf harness traces allocations for the manifest's memory
    column; that tracing costs a large constant factor per allocation
    and taxes the two engines unevenly (the legacy scheduler allocates
    an order of magnitude more objects per event), which would distort
    the engine-vs-engine timing this bench exists to record.  Restarting
    resets the traced peak, so the manifest's ``tracemalloc`` number
    covers only the untimed phases — the RSS high-water mark remains the
    whole-process figure.
    """
    if not tracemalloc.is_tracing():
        yield
        return
    tracemalloc.stop()
    try:
        yield
    finally:
        tracemalloc.start()


def _replay(spec: dict, engine: str, metrics) -> dict:
    """Run the full x-sweep under one event engine.

    Returns the per-(x, trial) outcomes in a form strict enough for the
    cross-engine identity check (normalized max, drop rate, latency
    stats, the whole served vector) plus the aggregated columns.
    """
    params = SystemParameters(**spec["params"])
    outcomes = []
    columns = {"x": [], "eventsim_mean": [], "drop_rate": []}
    for x in spec["x_values"]:
        gains, drops = [], []
        for trial in range(spec["event_trials"]):
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(params.m, x), seed=SEED,
                metrics=metrics, engine=engine,
            )
            outcome = sim.run(spec["n_queries"], trial=trial)
            assert sim.last_engine == ("fast" if engine == "fast" else "legacy")
            outcomes.append((
                x, trial,
                outcome.normalized_max, outcome.drop_rate,
                outcome.latency_mean, outcome.latency_p99,
                outcome.served.tolist(), outcome.dropped.tolist(),
            ))
            gains.append(outcome.normalized_max)
            drops.append(outcome.drop_rate)
        columns["x"].append(x)
        columns["eventsim_mean"].append(float(np.mean(gains)))
        columns["drop_rate"].append(float(np.mean(drops)))
    return {"outcomes": outcomes, "columns": columns}


def _sweep():
    spec = SMOKE if smoke_mode() else FULL
    params = SystemParameters(**spec["params"])
    profiler = active_profiler()
    metrics = profiler.metrics if profiler is not None else None
    events_per_engine = (
        spec["n_queries"] * spec["event_trials"] * len(spec["x_values"])
    )
    analytic_mean = [
        simulate_uniform_attack(
            params, x, trials=spec["analytic_trials"], seed=SEED
        ).mean
        for x in spec["x_values"]
    ]
    engines = {}
    replays = {}
    for engine in ("legacy", "fast"):
        span = (
            profiler.span(f"engine-{engine}")
            if profiler is not None
            else nullcontext()
        )
        with span, _memory_tracing_paused():
            replays[engine], seconds = timed(_replay, spec, engine, metrics)
        engines[engine] = {
            "events": events_per_engine,
            "seconds": seconds,
            "events_per_second": events_per_engine / seconds,
        }
    speedup = (
        engines["fast"]["events_per_second"]
        / engines["legacy"]["events_per_second"]
    )
    columns = {
        "x": replays["legacy"]["columns"]["x"],
        "analytic_mean": analytic_mean,
        "eventsim_mean": replays["legacy"]["columns"]["eventsim_mean"],
        "drop_rate": replays["legacy"]["columns"]["drop_rate"],
    }
    return {
        "smoke": smoke_mode(),
        "config": {**spec["params"], "queries": spec["n_queries"],
                   "event_trials": spec["event_trials"]},
        "columns": columns,
        "engines": engines,
        "speedup": speedup,
        "results_identical": (
            replays["legacy"]["outcomes"] == replays["fast"]["outcomes"]
        ),
        "engines_agree": _agreement(columns),
    }


def _agreement(columns: dict) -> bool:
    ok = True
    for analytic, event in zip(columns["analytic_mean"], columns["eventsim_mean"]):
        ok = ok and abs(event - analytic) <= 0.3 * abs(analytic)
    # Capacity corollary: default capacity is 4 R / n; whenever the
    # analytic gain stays below 4, drops are negligible.
    for analytic, drop in zip(columns["analytic_mean"], columns["drop_rate"]):
        if analytic < 3.5:
            ok = ok and drop < 0.01
    return ok


def _run() -> dict:
    payload, seconds = timed(_sweep)
    payload["wall_seconds"] = seconds
    return payload


def _render(payload: dict) -> str:
    table = ExperimentResult(
        name="eventsim-vs-analytic",
        description="normalized max load: placement model vs request-level queueing model",
        columns=payload["columns"],
        config=payload["config"],
    ).render()
    lines = [table, "", "event engines (same replay, both engines):"]
    for name, stats in payload["engines"].items():
        lines.append(
            f"  {name:>6}: {stats['seconds']:8.3f}s  "
            f"{stats['events_per_second']:>12,.0f} events/s"
        )
    lines.append(
        f"  speedup {payload['speedup']:.1f}x, results identical: "
        f"{payload['results_identical']}"
    )
    return "\n".join(lines)


def _check(payload: dict) -> None:
    columns = payload["columns"]
    for analytic, event in zip(columns["analytic_mean"], columns["eventsim_mean"]):
        assert abs(event - analytic) <= 0.3 * abs(analytic), (analytic, event)
    assert payload["engines_agree"]
    # The batched kernel must replay the legacy engine bit-for-bit.
    assert payload["results_identical"]
    if not payload["smoke"]:
        # Full-scale perf gate (smoke configs are too small to time).
        assert payload["speedup"] >= MIN_SPEEDUP, payload["speedup"]


def _workload(payload: dict):
    events = sum(stats["events"] for stats in payload["engines"].values())
    return {"events": events}


SPEC = register(
    "eventsim", run=_run, render=_render, check=_check, workload=_workload,
    seed=SEED,
)


def bench_eventsim(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

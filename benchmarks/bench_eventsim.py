"""Ablation: request-level engine vs the paper's placement model.

The paper (and our Monte-Carlo engine) abstracts queueing away; this
bench replays the same attack through the discrete-event engine — real
Poisson arrivals, per-node FIFO queues, finite capacity — and checks the
two engines agree on the normalized max load, and that the capacity
corollary (capacity > E[L_max] bound => no drops) holds in the queueing
world.
"""

import numpy as np
import pytest
from _util import emit

from repro.core.cases import plan_best_attack
from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

SEED = 65
N_QUERIES = 60_000
EVENT_TRIALS = 4


def _run():
    params = SystemParameters(n=50, m=5000, c=25, d=3, rate=10_000.0)
    columns = {"x": [], "analytic_mean": [], "eventsim_mean": [], "drop_rate": []}
    for x in (26, 200, 2000):
        analytic = simulate_uniform_attack(params, x, trials=20, seed=SEED).mean
        gains, drops = [], []
        for trial in range(EVENT_TRIALS):
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(params.m, x), seed=SEED
            )
            outcome = sim.run(N_QUERIES, trial=trial)
            gains.append(outcome.normalized_max)
            drops.append(outcome.drop_rate)
        columns["x"].append(x)
        columns["analytic_mean"].append(analytic)
        columns["eventsim_mean"].append(float(np.mean(gains)))
        columns["drop_rate"].append(float(np.mean(drops)))
    return params, ExperimentResult(
        name="eventsim-vs-analytic",
        description="normalized max load: placement model vs request-level queueing model",
        columns=columns,
        config={"n": params.n, "m": params.m, "c": params.c, "d": params.d,
                "queries": N_QUERIES, "event_trials": EVENT_TRIALS},
    )


def bench_eventsim(benchmark):
    params, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("eventsim", result.render())

    for analytic, event in zip(
        result.column("analytic_mean"), result.column("eventsim_mean")
    ):
        assert event == pytest.approx(analytic, rel=0.3)

    # Capacity corollary: default capacity is 4 R / n; whenever the
    # analytic gain stays below 4, drops are negligible.
    for analytic, drop in zip(
        result.column("analytic_mean"), result.column("drop_rate")
    ):
        if analytic < 3.5:
            assert drop < 0.01

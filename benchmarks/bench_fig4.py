"""Figure 4: normalized max workload vs cluster size, three patterns.

Paper shape to reproduce: Zipf(1.01) is the cheapest for the back end
(the cache eats the head), uniform hovers near 1 independent of n, and
the adversarial pattern grows ~linearly with n (as n / (c + 1)).
"""

from _util import register

from repro.experiments import run_fig4

TRIALS = 10
SEED = 41


def _run():
    return run_fig4(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    uniform = result.column("uniform")
    zipf = result.column("zipf")
    adversarial = result.column("adversarial")
    n_values = result.column("n")

    # Zipf stays below uniform across the paper's n range.
    assert all(z <= u + 0.1 for z, u in zip(zipf, uniform))
    # Uniform stays near 1 while adversarial grows with n.
    assert all(0.8 < u < 1.6 for u in uniform)
    assert adversarial[-1] > 3 * adversarial[0]
    # Adversarial growth is ~ n / (c + 1).
    c = result.config["c"]
    expected = n_values[-1] / (c + 1)
    assert abs(adversarial[-1] - expected) / expected < 0.1


SPEC = register("fig4", run=_run, check=_check, seed=SEED)


def bench_fig4(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

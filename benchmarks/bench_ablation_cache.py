"""Ablation: real cache policies vs the perfect-cache assumption.

The analysis assumes the front end always holds the c most popular keys
(assumption 2).  This bench replays three traces through every
implemented policy and reports hit rates:

- ``zipf``: stationary benign skew — the workload the cache exists for;
- ``attack_iid``: the paper's adversarial pattern sampled i.i.d.
  (uniform over x > c keys).  Notable negative result: because the
  pattern is exchangeable, *every* policy converges to holding some c
  of the x keys and hits at ~c/x — the perfect-cache assumption costs
  the paper nothing against its own adversary;
- ``attack_scan``: the same x keys queried as a cyclic sweep.  Same
  marginal distribution, adversarially chosen *order*: every
  replacement-on-miss policy collapses to ~0 — including exact LFU,
  whose equal-frequency LRU tie-break evicts precisely the key the scan
  will request next.  Only frequency-based *admission* (TinyLFU)
  survives, by refusing to admit keys no more popular than the
  incumbent victim.  An adversary against a real deployment would send
  this — a sharpening of the paper's model that its theorems do not
  cover (they assume the perfect cache).
"""

import numpy as np
from _util import register

from repro.cache import (
    ARCCache,
    ClockCache,
    FIFOCache,
    FrequencyAdmissionCache,
    LFUAgingCache,
    LFUCache,
    LRUCache,
    PerfectCache,
    RandomEvictionCache,
    SieveCache,
    SLRUCache,
    TwoQCache,
)
from repro.experiments.report import ExperimentResult
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.zipf import ZipfDistribution

M = 20_000
C = 500
X_ATTACK = 4 * C
N_QUERIES = 60_000
SEED = 62


def _policies():
    return {
        "perfect": lambda probs: PerfectCache.from_distribution(probs, C),
        "lfu": lambda probs: LFUCache(C),
        "lfu-aging": lambda probs: LFUAgingCache(C),
        "tinylfu-lru": lambda probs: FrequencyAdmissionCache(LRUCache(C)),
        "arc": lambda probs: ARCCache(C),
        "2q": lambda probs: TwoQCache(C),
        "slru": lambda probs: SLRUCache(C),
        "sieve": lambda probs: SieveCache(C),
        "lru": lambda probs: LRUCache(C),
        "clock": lambda probs: ClockCache(C),
        "fifo": lambda probs: FIFOCache(C),
        "random": lambda probs: RandomEvictionCache(C, rng=SEED),
    }


def _hit_rate(cache, keys):
    access = cache.access
    hits = 0
    for key in keys:
        hits += access(key)
    return hits / len(keys)


def _run():
    zipf = ZipfDistribution(M, 1.01)
    attack = AdversarialDistribution(M, x=X_ATTACK)
    zipf_keys = zipf.sample(N_QUERIES, rng=SEED).tolist()
    attack_iid_keys = attack.sample(N_QUERIES, rng=SEED + 1).tolist()
    attack_scan_keys = (np.arange(N_QUERIES) % X_ATTACK).tolist()

    columns = {"policy": [], "zipf": [], "attack_iid": [], "attack_scan": []}
    for name, factory in _policies().items():
        columns["policy"].append(name)
        columns["zipf"].append(_hit_rate(factory(zipf.probabilities()), zipf_keys))
        columns["attack_iid"].append(
            _hit_rate(factory(attack.probabilities()), attack_iid_keys)
        )
        columns["attack_scan"].append(
            _hit_rate(factory(attack.probabilities()), attack_scan_keys)
        )
    return ExperimentResult(
        name="ablation-cache",
        description="front-end hit rate per policy: benign Zipf, i.i.d. attack, cyclic-scan attack",
        columns=columns,
        config={"m": M, "c": C, "queries": N_QUERIES, "attack_x": X_ATTACK},
        notes=[
            "i.i.d. attack: order is exchangeable, every policy ~ c/x — the "
            "perfect-cache assumption is harmless against the paper's adversary",
            "cyclic-scan attack: same keys, adversarial order — every "
            "replace-on-miss policy (even exact LFU) collapses; only "
            "frequency-based admission (TinyLFU) retains ~c/x",
        ],
    )


def _check(result) -> None:
    rows = {
        policy: dict(zipf=z, iid=i, scan=s)
        for policy, z, i, s in zip(
            result.column("policy"),
            result.column("zipf"),
            result.column("attack_iid"),
            result.column("attack_scan"),
        )
    }
    steady = C / X_ATTACK  # 0.25: the perfect cache's hit rate

    # Benign Zipf: LFU tracks the perfect cache; every real policy beats
    # half the perfect hit rate.
    assert rows["lfu"]["zipf"] >= rows["perfect"]["zipf"] - 0.05
    assert all(r["zipf"] >= rows["perfect"]["zipf"] * 0.5 for r in rows.values())

    # i.i.d. attack: exchangeable order => everyone lands near c/x.
    for policy, r in rows.items():
        assert abs(r["iid"] - steady) < 0.1, (policy, r["iid"])

    # Cyclic scan: every replace-on-miss policy collapses (exact LFU
    # included — its equal-frequency tie-break churns with the scan);
    # only the perfect oracle and frequency-based admission hold ~c/x.
    for policy in ("lru", "fifo", "clock", "lfu", "lfu-aging", "arc", "2q", "slru", "sieve"):
        assert rows[policy]["scan"] < 0.05, policy
    for policy in ("perfect", "tinylfu-lru"):
        assert rows[policy]["scan"] > steady - 0.1, policy


def _workload(result):
    # Three traces replayed through every policy.
    return {"events": 3 * N_QUERIES * len(result.column("policy"))}


SPEC = register(
    "ablation_cache", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_cache(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Fault-injection ablation: service quality vs failure intensity.

Sweeps the per-node crash rate through the event-driven engine under the
paper's worst-case attack and records what replication buys back:
retries absorb most crashes, unavailability stays a tail effect until
the failure process overwhelms ``d``, and the degraded Theorem-2 bound
(recomputed from the windowed effective ``d``) stays above the observed
gain throughout — the provable-protection story degrades gracefully
instead of breaking.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to a seconds-scale run and
writes ``chaos_smoke.json`` so the committed full-scale artifact
survives test runs.
"""

import numpy as np
from _util import register, smoke_mode, timed

from repro.chaos import ChaosConfig, RetryPolicy
from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.obs import LoadMonitor, MonitorConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

SEED = 65

FULL = {
    "params": dict(n=50, m=5000, c=25, d=3, rate=10_000.0),
    "x": 200,
    "failure_rates": (0.0, 0.05, 0.2, 0.5, 1.0),
    "mttr": 0.5,
    "n_queries": 40_000,
    "trials": 3,
}
SMOKE = {
    "params": dict(n=20, m=1000, c=10, d=3, rate=10_000.0),
    # The smoke horizon is ~0.6 simulated seconds, so the swept crash
    # intensities must be high enough to actually fire events there.
    "x": 50,
    "failure_rates": (0.0, 1.0, 4.0),
    "mttr": 0.5,
    "n_queries": 6_000,
    "trials": 2,
}


def _sweep():
    spec = SMOKE if smoke_mode() else FULL
    params = SystemParameters(**spec["params"])
    distribution = AdversarialDistribution(params.m, spec["x"])
    columns = {
        "failure_rate": [], "failure_events": [], "retries": [],
        "unavailable_rate": [], "effective_d_min": [], "degraded_bound_max": [],
        "gain_mean": [], "wall_seconds": [],
    }
    for failure_rate in spec["failure_rates"]:
        chaos = None
        if failure_rate > 0:
            chaos = ChaosConfig(
                failure_rate=failure_rate, mttr=spec["mttr"],
                retry=RetryPolicy(max_attempts=3, timeout=0.01, backoff=0.005),
            )
        monitor = LoadMonitor(
            MonitorConfig.from_params(params, x=spec["x"], window=0.05)
        )
        gains, events, retries, unavailable, backend = [], 0, 0, 0, 0
        start_seconds = 0.0
        for trial in range(spec["trials"]):
            sim = EventDrivenSimulator(
                params, distribution, seed=SEED, monitor=monitor, chaos=chaos
            )
            result, seconds = timed(sim.run, spec["n_queries"], trial=trial)
            start_seconds += seconds
            gains.append(result.normalized_max)
            events += result.failure_events
            retries += result.retries
            unavailable += result.unavailable
            backend += result.backend_queries
        eff = [w["effective_d"] for w in monitor.windows if "effective_d" in w]
        deg = [
            w["degraded_bound"] for w in monitor.windows
            if w.get("degraded_bound") is not None
        ]
        columns["failure_rate"].append(failure_rate)
        columns["failure_events"].append(events)
        columns["retries"].append(retries)
        columns["unavailable_rate"].append(unavailable / max(backend, 1))
        columns["effective_d_min"].append(min(eff) if eff else float(params.d))
        columns["degraded_bound_max"].append(max(deg) if deg else None)
        columns["gain_mean"].append(float(np.mean(gains)))
        columns["wall_seconds"].append(start_seconds)
    return ExperimentResult(
        name="chaos-sweep",
        description=(
            "service quality and degraded Theorem-2 bound vs per-node "
            "crash intensity (event-driven engine, worst-case attack)"
        ),
        columns=columns,
        config={
            **spec["params"], "x": spec["x"], "mttr": spec["mttr"],
            "queries": spec["n_queries"], "trials": spec["trials"],
        },
    )


def _shape_ok(columns: dict, config: dict) -> bool:
    """Qualitative shape: degradation is monotone and never silent."""
    rates = columns["failure_rate"]
    eff = columns["effective_d_min"]
    events = columns["failure_events"]
    ok = True
    for rate, e, ev in zip(rates, eff, events):
        if rate == 0:
            ok = ok and ev == 0 and e == config["d"]
        else:
            ok = ok and ev > 0
    # The heaviest failure process degrades effective d the most.
    ok = ok and eff[-1] == min(eff)
    return ok


def _run() -> dict:
    result, seconds = timed(_sweep)
    return {
        "smoke": smoke_mode(),
        "wall_seconds": seconds,
        "config": dict(result.config),
        "columns": {name: list(values) for name, values in result.columns.items()},
        "shape_ok": _shape_ok(result.columns, result.config),
    }


def _render(payload: dict) -> str:
    return ExperimentResult(
        name="chaos-sweep",
        description=(
            "service quality and degraded Theorem-2 bound vs per-node "
            "crash intensity (event-driven engine, worst-case attack)"
        ),
        columns=payload["columns"],
        config=payload["config"],
    ).render()


def _check(payload: dict) -> None:
    assert payload["shape_ok"]


def _workload(payload: dict):
    config = payload["config"]
    events = (
        config["queries"] * config["trials"]
        * len(payload["columns"]["failure_rate"])
    )
    return {"events": events}


SPEC = register(
    "chaos", run=_run, render=_render, check=_check, workload=_workload, seed=SEED
)


def bench_chaos(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

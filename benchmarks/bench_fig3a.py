"""Figure 3(a): normalized max workload vs x, small cache (c = 200).

Paper shape to reproduce: the curve *decreases* with the number of
queried keys, exceeds 1.0 (effective attack) near ``x = c + 1``, and the
Eq. (10) bound sits above the measurements.
"""

from _util import register

from repro.experiments import run_fig3a

TRIALS = 30  # paper: 200; shape is stable well before that
SEED = 31


def _run():
    return run_fig3a(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    gains = result.column("sim_max")
    xs = result.column("x")
    assert xs[0] == 201
    assert gains[0] > 1.0, "attack near x = c + 1 must be effective"
    assert gains[0] > gains[-1], "curve must decrease in x"
    calibrated = result.column("bound_calib")
    assert all(g <= b + 1e-9 for g, b in zip(gains, calibrated)), (
        "calibrated Eq. (10) bound must cover the simulation"
    )


SPEC = register("fig3a", run=_run, check=_check, seed=SEED)


def bench_fig3a(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: attack gain vs replication factor d (the paper's knob).

Sweeps d at fixed (n, c, x = m) and reports the measured worst-case gain
next to the analytic bounds — the d = 1 column is the SoCC'11 baseline
world, d >= 2 is this paper's.  Expected: a large drop from d = 1 to
d = 2 (sqrt excess -> log log excess) and mild further gains after.
"""

from _util import register

from repro.core import baseline_socc11
from repro.core.bounds import normalized_max_load_bound
from repro.core.notation import SystemParameters
from repro.experiments.report import ExperimentResult
from repro.sim.analytic import simulate_uniform_attack

TRIALS = 10
SEED = 63
D_VALUES = (1, 2, 3, 4, 5)


def _run():
    columns = {"d": [], "sim_gain": [], "bound": []}
    for d in D_VALUES:
        params = SystemParameters(n=200, m=20_000, c=200, d=d, rate=20_000.0)
        report = simulate_uniform_attack(params, params.m, trials=TRIALS, seed=SEED)
        if d == 1:
            bound = baseline_socc11.normalized_max_load_bound(params, params.m)
        else:
            bound = normalized_max_load_bound(params, params.m, k_prime=0.75)
        columns["d"].append(d)
        columns["sim_gain"].append(report.worst_case)
        columns["bound"].append(bound)
    return ExperimentResult(
        name="ablation-replication",
        description="worst-case gain vs replication factor (x = m sweep)",
        columns=columns,
        config={"n": 200, "m": 20_000, "c": 200, "trials": TRIALS},
    )


def _check(result) -> None:
    gains = dict(zip(result.column("d"), result.column("sim_gain")))
    bounds = dict(zip(result.column("d"), result.column("bound")))
    # The big cliff: two choices already capture most of the benefit.
    assert gains[2] < gains[1]
    assert gains[1] - gains[2] > 0.5 * (gains[1] - gains[5])
    # More replication never hurts (within MC noise).
    assert gains[5] <= gains[2] + 0.05
    # Each regime's bound covers its simulation (d=1 within the
    # concentration-estimate slack).
    assert gains[1] <= bounds[1] * 1.05
    for d in (2, 3, 4, 5):
        assert gains[d] <= bounds[d] + 1e-9


def _workload(result):
    return {"balls": len(D_VALUES) * TRIALS * result.config["m"]}


SPEC = register(
    "ablation_replication", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_replication(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (or one ablation) at a scale
that keeps the whole harness under a few minutes, prints the resulting
table (visible with ``pytest benchmarks/ --benchmark-only``), and saves
it under ``benchmarks/results/`` for EXPERIMENTS.md provenance.

Scale note: the paper runs 200 trials per sweep point; the benches
default to fewer (the per-bench ``TRIALS`` constants) because the
qualitative shape — who wins, where the crossover sits — stabilises far
earlier than the worst-case tail.  ``python -m repro <fig> --full``
reruns any figure at full paper scale.

Perf benches additionally persist machine-readable JSON via
:func:`emit_json` (config + wall-seconds + derived throughput numbers)
and honour ``REPRO_BENCH_SMOKE=1`` (see :func:`smoke_mode`) so a
seconds-scale variant can run inside the tier-1 test budget.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Tuple

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{text}\n", file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result dict as benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def smoke_mode() -> bool:
    """Whether ``REPRO_BENCH_SMOKE=1`` asks for a seconds-scale run.

    Smoke runs shrink every dimension (trials, balls, worker counts) so
    the bench can execute inside the tier-1 test budget, and write their
    JSON under a ``*_smoke`` name so full-scale artifacts are never
    overwritten by a test run.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def timed(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start

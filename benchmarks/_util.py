"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (or one ablation) at a scale
that keeps the whole harness under a few minutes, prints the resulting
table (visible with ``pytest benchmarks/ --benchmark-only``), and saves
it under ``benchmarks/results/`` for EXPERIMENTS.md provenance.

Scale note: the paper runs 200 trials per sweep point; the benches
default to fewer (the per-bench ``TRIALS`` constants) because the
qualitative shape — who wins, where the crossover sits — stabilises far
earlier than the worst-case tail.  ``python -m repro <fig> --full``
reruns any figure at full paper scale.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{text}\n", file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

"""Thin shim over :mod:`repro.perf.harness` (the unified bench harness).

The helpers every bench script imports (``emit``, ``emit_json``,
``smoke_mode``, ``timed``) now live in the harness, next to
``register()`` — the entry point each ``bench_*.py`` declares itself
through.  This module only re-exports them so the scripts keep one
import style and external callers of the old helpers keep working.

Scale note: the paper runs 200 trials per sweep point; the benches
default to fewer (the per-bench ``TRIALS`` constants) because the
qualitative shape — who wins, where the crossover sits — stabilises far
earlier than the worst-case tail.  ``python -m repro <fig> --full``
reruns any figure at full paper scale, and ``REPRO_BENCH_SMOKE=1`` (or
``repro perf run --smoke``) shrinks the perf benches to a seconds-scale
configuration whose artifacts land under ``*_smoke`` names.
"""

from repro.perf.harness import (  # noqa: F401
    active_profiler,
    emit,
    emit_json,
    register,
    smoke_mode,
    timed,
)

"""Attack gain: flat cache vs the DistCache hierarchy under shard floods.

ISSUE 9's headline measurement.  A :class:`ShardTargetingAdversary` who
has learned the edge layer's hash seed floods ``x`` keys that all land
on ONE edge shard.  A flat cache of the same per-shard capacity absorbs
the flood as usual; a naive cascade tree funnels every one of those hits
through the targeted shard; the two-choice tree re-spreads them across
layers because the aggregate layer hashes the same keys *independently*.

The bench replays both floods — ``targeted`` (one edge shard) and
``spread`` (the same ``x`` keys chosen without the leaked seed) —
against three defenses: ``flat``, ``tree-cascade``,
``tree-two-choice``.  Per defense it records the normalized backend max
load (the paper's attack gain), the targeted shard's share of all cache
hits (the quantity the hierarchy is meant to cap), and the
:func:`repro.core.bounds.distcache_max_load_bound` overlay from the
monitor's per-layer summaries.  The check asserts:

* the degenerate 1x1 tree is bit-identical to the flat baseline (the
  differential contract, re-proven here at bench scale);
* under the targeted flood, cascade funnels most hits through the
  targeted shard while two-choice halves its share, and the monitor's
  per-layer bound overlay flags the compromised edge layer;
* under a *spread* flood of the same width (the paper's Fig.-3 regime,
  where every flooded key is cache-resident and layer selection — not
  residency churn — decides who serves), every layer of the two-choice
  tree stays within its DistCache bound.

``REPRO_BENCH_SMOKE=1`` shrinks the replay and writes
``tree_smoke.json`` so the committed artifact survives test runs.
"""

from _util import register, smoke_mode, timed

from repro.adversary.strategies import ShardTargetingAdversary
from repro.cache import make_cache
from repro.cache.tree import _build_tree
from repro.core.bounds import DEFAULT_CALIBRATED_K_PRIME
from repro.core.notation import SystemParameters
from repro.obs import LoadMonitor, MonitorConfig
from repro.scenario.build import BuildContext
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution

SEED = 83

FULL = {
    "params": dict(n=50, m=5000, c=40, d=3, rate=20_000.0),
    "edges": 2,
    "aggregates": 1,
    "n_queries": 40_000,
    "trials": 3,
}
SMOKE = {
    "params": dict(n=20, m=1000, c=10, d=3, rate=10_000.0),
    "edges": 2,
    "aggregates": 1,
    "n_queries": 4_000,
    "trials": 1,
}


def _tree_layers(spec: dict, selection: str):
    ctx = BuildContext(
        params=SystemParameters(**spec["params"]), seed=SEED
    )
    layers = [
        {"shards": spec["edges"], "cache": "lru"},
        {"shards": spec["aggregates"], "cache": "lru"},
    ]
    return _build_tree(ctx, layers=layers, selection=selection)


def _defenses(spec: dict):
    return (
        ("flat", lambda: make_cache("lru", spec["params"]["c"])),
        ("tree-cascade", lambda: _tree_layers(spec, "cascade")),
        ("tree-two-choice", lambda: _tree_layers(spec, "two-choice")),
    )


def _replay(spec: dict, name: str, cache_factory, distribution, x: int):
    """Run one defense against one workload; return its summary row."""
    params = SystemParameters(**spec["params"])
    config = MonitorConfig.from_params(
        params, x=x, k_prime=DEFAULT_CALIBRATED_K_PRIME
    )
    gains, hit_rates, target_shares, layer_rows = [], [], [], []
    events = 0
    for trial in range(spec["trials"]):
        monitor = LoadMonitor(config)
        cache = cache_factory()
        sim = EventDrivenSimulator(
            params, distribution, seed=SEED, cache=cache, monitor=monitor
        )
        outcome = sim.run(spec["n_queries"], trial=trial)
        events += spec["n_queries"]
        gains.append(outcome.normalized_max)
        hit_rates.append(outcome.cache_hit_rate)
        rows = monitor.summaries[-1].get("layers", ())
        layer_rows.extend(rows)
        if rows:
            # The targeted shard's share of ALL cache hits: the flood
            # keys occupy exactly one edge shard, so that shard's load
            # is layer 0's shard_max; the hierarchy's defense is to
            # serve the rest of the hits from other layers.
            total_hits = sum(row["hits"] for row in rows)
            target_shares.append(
                rows[0]["shard_max"] / total_hits if total_hits else 0.0
            )
    return {
        "defense": name,
        "gain_mean": sum(gains) / len(gains),
        "gain_worst": max(gains),
        "hit_rate": sum(hit_rates) / len(hit_rates),
        "target_share_worst": max(target_shares) if target_shares else None,
        "within_bound": all(row["within_bound"] for row in layer_rows)
        if layer_rows
        else None,
        "events": events,
    }


def _degeneracy_identical(spec: dict) -> bool:
    """Bench-scale re-proof of the 1x1-tree == flat differential."""
    params = SystemParameters(**spec["params"])
    ctx = BuildContext(params=params, seed=SEED)
    outcomes = []
    for build in (
        lambda: make_cache("lru", params.c),
        lambda: _build_tree(
            ctx, layers=[{"shards": 1, "cache": "lru"}], selection="cascade"
        ),
    ):
        sim = EventDrivenSimulator(
            params, UniformDistribution(params.m), seed=SEED, cache=build()
        )
        outcome = sim.run(spec["n_queries"], trial=0)
        outcomes.append((
            outcome.normalized_max, outcome.drop_rate,
            outcome.cache_hit_rate,
            outcome.latency_mean, outcome.latency_p99,
            outcome.served.tolist(), outcome.dropped.tolist(),
        ))
    return outcomes[0] == outcomes[1]


def _sweep() -> dict:
    spec = SMOKE if smoke_mode() else FULL
    params = SystemParameters(**spec["params"])
    adversary = ShardTargetingAdversary(
        params, x=params.c + 1, shards=spec["edges"], target=0, seed=SEED
    )
    targeted = adversary.distribution()
    spread = AdversarialDistribution(params.m, adversary.x)
    attack_rows, spread_rows = [], []
    events = 0
    for name, factory in _defenses(spec):
        row = _replay(spec, name, factory, targeted, adversary.x)
        events += row.pop("events")
        attack_rows.append(row)
        row = _replay(spec, name, factory, spread, adversary.x)
        events += row.pop("events")
        spread_rows.append(row)
    return {
        "smoke": smoke_mode(),
        "config": {**spec["params"], "edges": spec["edges"],
                   "aggregates": spec["aggregates"],
                   "queries": spec["n_queries"], "trials": spec["trials"],
                   "x": adversary.x},
        "targeted": attack_rows,
        "spread": spread_rows,
        "degeneracy_identical": _degeneracy_identical(spec),
        "events": events,
    }


def _run() -> dict:
    payload, seconds = timed(_sweep)
    payload["wall_seconds"] = seconds
    payload["events_per_second"] = payload["events"] / seconds
    return payload


def _render(payload: dict) -> str:
    config = payload["config"]
    lines = [
        f"shard flood x={config['x']} on edge shard 0/{config['edges']} "
        f"(n={config['n']}, m={config['m']}, c={config['c']})",
        "",
        f"{'defense':>16}  {'gain(targeted)':>14}  {'gain(spread)':>12}  "
        f"{'target share':>12}  {'in bound':>8}",
    ]
    for attack, spread in zip(payload["targeted"], payload["spread"]):
        share = attack["target_share_worst"]
        bound = spread["within_bound"]
        lines.append(
            f"{attack['defense']:>16}  {attack['gain_worst']:>14.3f}  "
            f"{spread['gain_worst']:>12.3f}  "
            f"{'-' if share is None else format(share, '.3f'):>12}  "
            f"{'-' if bound is None else str(bound):>8}"
        )
    lines.append(
        f"degenerate 1x1 tree identical to flat: "
        f"{payload['degeneracy_identical']}"
    )
    return "\n".join(lines)


def _check(payload: dict) -> None:
    assert payload["degeneracy_identical"]
    by_name = {row["defense"]: row for row in payload["targeted"]}
    cascade = by_name["tree-cascade"]
    two_choice = by_name["tree-two-choice"]
    # Cascade funnels the flood through the targeted shard; two-choice
    # re-spreads it across the layers' independent hashes.
    assert cascade["target_share_worst"] >= 0.75, cascade
    assert (
        two_choice["target_share_worst"]
        <= cascade["target_share_worst"] - 0.15
    ), (cascade, two_choice)
    # The per-layer overlay flags the compromised layer under attack...
    for row in (cascade, two_choice):
        assert row["within_bound"] is False, row
    # ...and holds on the spread flood, where layer assignments really
    # are independent hashes (the regime the bound is stated for).
    spread_two_choice = {
        row["defense"]: row for row in payload["spread"]
    }["tree-two-choice"]
    assert spread_two_choice["within_bound"] is True, spread_two_choice


def _workload(payload: dict):
    return {"events": payload["events"]}


SPEC = register(
    "tree", run=_run, render=_render, check=_check, workload=_workload,
    seed=SEED,
)


def bench_tree(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: DDoS resilience while nodes are failing.

Replication serves two masters in the paper: load balancing (the
theorem) and fault tolerance (the motivation).  This bench runs the
full-sweep attack against clusters with a growing fraction of failed
nodes and reports (a) the availability loss and (b) the normalized max
load on the *survivors* — showing how the DDoS-prevention margin erodes
exactly when the cluster is already degraded.
"""

import numpy as np
from _util import active_profiler, register

from repro.ballsbins.allocation import sample_replica_groups
from repro.cluster.failures import (
    degrade_groups,
    expected_unavailable_fraction,
    sample_failures,
)
from repro.experiments.report import ExperimentResult
from repro.rng import RngFactory

N = 200
M = 20_000
C = 200
D = 3
RATE = 20_000.0
TRIALS = 8
SEED = 69
FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.5)


def _run():
    profiler = active_profiler()
    metrics = profiler.metrics if profiler is not None else None
    x = M
    rates = np.full(x - C, RATE / x)
    factory = RngFactory(SEED)
    columns = {
        "failed_fraction": [],
        "unavailable": [],
        "unavailable_theory": [],
        "survivor_gain": [],
    }
    for fraction in FRACTIONS:
        worst_gain = 0.0
        unavailable = []
        for trial in range(TRIALS):
            gen = factory.generator("failures", trial=trial)
            groups = sample_replica_groups(x - C, N, D, rng=gen, metrics=metrics)
            failed = sample_failures(N, fraction, rng=gen)
            degraded = degrade_groups(groups, failed, n=N)
            loads = degraded.least_loaded_loads(rates, n=N)
            unavailable.append(degraded.unavailable_fraction)
            worst_gain = max(worst_gain, float(loads.max()) / (RATE / N))
        columns["failed_fraction"].append(fraction)
        columns["unavailable"].append(round(float(np.mean(unavailable)), 4))
        columns["unavailable_theory"].append(
            round(expected_unavailable_fraction(N, D, int(round(fraction * N))), 4)
        )
        columns["survivor_gain"].append(round(worst_gain, 3))
    return ExperimentResult(
        name="ablation-failures",
        description=(
            "full-sweep attack against a degraded cluster: availability and "
            "survivor load vs failed-node fraction"
        ),
        columns=columns,
        config={"n": N, "m": M, "c": C, "d": D, "trials": TRIALS},
    )


def _check(result) -> None:
    fractions = result.column("failed_fraction")
    unavailable = result.column("unavailable")
    theory = result.column("unavailable_theory")
    gains = result.column("survivor_gain")

    # Availability: measurement tracks the C(f,d)/C(n,d) closed form.
    for measured, expected in zip(unavailable, theory):
        assert abs(measured - expected) < 0.02
    # d = 3 keeps unavailability negligible through 20% failures.
    idx20 = fractions.index(0.2)
    assert unavailable[idx20] < 0.02
    # Survivor load grows monotonically with the failed fraction...
    assert all(a <= b + 0.05 for a, b in zip(gains, gains[1:]))
    # ...and at 50% failures the prevention margin is visibly consumed.
    assert gains[-1] > gains[0] * 1.5


def _workload(result):
    return {"balls": len(FRACTIONS) * TRIALS * (M - C)}


SPEC = register(
    "ablation_failures", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_failures(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: cold-start warmup — the attack window after a restart.

The paper's perfect cache is always warm; a restarted real front end
serves nothing until its policy re-learns the head of the distribution,
and until then the cluster faces the raw workload.  This bench measures,
per policy, the steady-state hit rate and the queries (and seconds at
the paper's offered rate) needed to reach 90% of it under Zipf(1.01).
"""

from _util import register

from repro.analysis.warmup import queries_to_warm
from repro.cache import (
    ARCCache,
    FIFOCache,
    FrequencyAdmissionCache,
    LFUCache,
    LRUCache,
    PerfectCache,
    TwoQCache,
)
from repro.experiments.report import ExperimentResult
from repro.workload.zipf import ZipfDistribution

M = 20_000
C = 500
N_QUERIES = 80_000
RATE = 100_000.0  # the paper's offered rate: converts queries -> seconds
SEED = 68


def _run():
    zipf = ZipfDistribution(M, 1.01)
    keys = zipf.sample(N_QUERIES, rng=SEED).tolist()
    policies = {
        "perfect": PerfectCache.from_distribution(zipf.probabilities(), C),
        "lfu": LFUCache(C),
        "arc": ARCCache(C),
        "2q": TwoQCache(C),
        "tinylfu-lru": FrequencyAdmissionCache(LRUCache(C)),
        "lru": LRUCache(C),
        "fifo": FIFOCache(C),
    }
    columns = {"policy": [], "steady_hit_rate": [], "queries_to_90pct": [], "seconds_at_100k_qps": []}
    for name, cache in policies.items():
        report = queries_to_warm(cache, keys, target_fraction=0.9, window=1000)
        columns["policy"].append(name)
        columns["steady_hit_rate"].append(round(report.steady_hit_rate, 3))
        columns["queries_to_90pct"].append(
            report.queries_to_warm if report.warmed else -1
        )
        columns["seconds_at_100k_qps"].append(
            round(report.seconds_at(RATE), 3) if report.warmed else -1.0
        )
    return ExperimentResult(
        name="warmup",
        description="cold-start warmup per cache policy under Zipf(1.01)",
        columns=columns,
        config={"m": M, "c": C, "queries": N_QUERIES, "rate": RATE},
        notes=["queries_to_90pct = -1 means the policy never reached 90% of steady state"],
    )


def _check(result) -> None:
    warm_queries = dict(
        zip(result.column("policy"), result.column("queries_to_90pct"))
    )
    # The perfect oracle is born warm: first window within its steady rate.
    assert 0 <= warm_queries["perfect"] <= 1000
    # Every real policy eventually warms under benign Zipf
    # (queries_to_90pct = -1 would mean it never did).
    for name, queries in warm_queries.items():
        assert queries >= 0, name
    # Frequency-aware policies reach at least LRU-level steady hit rates.
    steady = dict(zip(result.column("policy"), result.column("steady_hit_rate")))
    assert steady["lfu"] >= steady["lru"] - 0.02
    assert steady["perfect"] >= max(steady.values()) - 0.02


def _workload(result):
    return {"events": N_QUERIES * len(result.column("policy"))}


SPEC = register("warmup", run=_run, check=_check, workload=_workload, seed=SEED)


def bench_warmup(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Ablation: cold-start warmup — the attack window after a restart.

The paper's perfect cache is always warm; a restarted real front end
serves nothing until its policy re-learns the head of the distribution,
and until then the cluster faces the raw workload.  This bench measures,
per policy, the steady-state hit rate and the queries (and seconds at
the paper's offered rate) needed to reach 90% of it under Zipf(1.01).
"""

from _util import emit

from repro.analysis.warmup import queries_to_warm
from repro.cache import (
    ARCCache,
    FIFOCache,
    FrequencyAdmissionCache,
    LFUCache,
    LRUCache,
    PerfectCache,
    TwoQCache,
)
from repro.experiments.report import ExperimentResult
from repro.workload.zipf import ZipfDistribution

M = 20_000
C = 500
N_QUERIES = 80_000
RATE = 100_000.0  # the paper's offered rate: converts queries -> seconds
SEED = 68


def _run():
    zipf = ZipfDistribution(M, 1.01)
    keys = zipf.sample(N_QUERIES, rng=SEED).tolist()
    policies = {
        "perfect": PerfectCache.from_distribution(zipf.probabilities(), C),
        "lfu": LFUCache(C),
        "arc": ARCCache(C),
        "2q": TwoQCache(C),
        "tinylfu-lru": FrequencyAdmissionCache(LRUCache(C)),
        "lru": LRUCache(C),
        "fifo": FIFOCache(C),
    }
    columns = {"policy": [], "steady_hit_rate": [], "queries_to_90pct": [], "seconds_at_100k_qps": []}
    reports = {}
    for name, cache in policies.items():
        report = queries_to_warm(cache, keys, target_fraction=0.9, window=1000)
        reports[name] = report
        columns["policy"].append(name)
        columns["steady_hit_rate"].append(round(report.steady_hit_rate, 3))
        columns["queries_to_90pct"].append(
            report.queries_to_warm if report.warmed else -1
        )
        columns["seconds_at_100k_qps"].append(
            round(report.seconds_at(RATE), 3) if report.warmed else -1.0
        )
    return reports, ExperimentResult(
        name="warmup",
        description="cold-start warmup per cache policy under Zipf(1.01)",
        columns=columns,
        config={"m": M, "c": C, "queries": N_QUERIES, "rate": RATE},
        notes=["queries_to_90pct = -1 means the policy never reached 90% of steady state"],
    )


def bench_warmup(benchmark):
    reports, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("warmup", result.render())

    # The perfect oracle is born warm: first window within its steady rate.
    assert reports["perfect"].warmed
    assert reports["perfect"].queries_to_warm <= 1000
    # Every real policy eventually warms under benign Zipf.
    for name, report in reports.items():
        assert report.warmed, name
    # Frequency-aware policies reach at least LRU-level steady hit rates.
    steady = dict(zip(result.column("policy"), result.column("steady_hit_rate")))
    assert steady["lfu"] >= steady["lru"] - 0.02
    assert steady["perfect"] >= max(steady.values()) - 0.02

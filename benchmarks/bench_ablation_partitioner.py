"""Ablation: partitioner realism — random table vs consistent hashing.

The theory assumes perfectly uniform random replica groups; deployed
systems use consistent-hash rings whose per-node key share fluctuates
with the virtual-node count.  This bench measures the extra imbalance a
ring introduces under benign uniform traffic and how more vnodes buy it
back.
"""

import numpy as np
from _util import register

from repro.cluster.cluster import Cluster
from repro.cluster.partitioner import ConsistentHashPartitioner, RandomTablePartitioner
from repro.experiments.report import ExperimentResult

N = 100
D = 3
M = 20_000
SEED = 66


def _gain(partitioner):
    cluster = Cluster(n=N, d=D, partitioner=partitioner)
    keys = np.arange(M)
    rates = np.full(M, 1.0 / M)
    loads = cluster.apply_rates((keys, rates), total_rate=1.0)
    return loads.normalized_max


def _run():
    columns = {"partitioner": [], "normalized_max": []}
    cases = [
        ("random-table", RandomTablePartitioner(N, D, M, seed=SEED)),
        ("ring-8-vnodes", ConsistentHashPartitioner(N, D, vnodes=8, secret=b"bench")),
        ("ring-64-vnodes", ConsistentHashPartitioner(N, D, vnodes=64, secret=b"bench")),
        ("ring-256-vnodes", ConsistentHashPartitioner(N, D, vnodes=256, secret=b"bench")),
    ]
    for name, part in cases:
        columns["partitioner"].append(name)
        columns["normalized_max"].append(_gain(part))
    return ExperimentResult(
        name="ablation-partitioner",
        description="load imbalance under uniform traffic: random table vs consistent-hash ring",
        columns=columns,
        config={"n": N, "d": D, "m": M},
    )


def _check(result) -> None:
    gain = dict(zip(result.column("partitioner"), result.column("normalized_max")))
    # More vnodes -> closer to the random-table ideal.
    assert gain["ring-256-vnodes"] <= gain["ring-8-vnodes"]
    # With enough vnodes the ring is within 30% of the ideal.
    assert gain["ring-256-vnodes"] <= gain["random-table"] * 1.3


def _workload(result):
    return {"balls": len(result.column("partitioner")) * M}


SPEC = register(
    "ablation_partitioner", run=_run, check=_check, workload=_workload, seed=SEED
)


def bench_ablation_partitioner(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

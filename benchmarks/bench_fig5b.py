"""Figure 5(b): number of keys queried by the best adversary vs cache.

Paper shape to reproduce: a step function — ``x = c + 1`` below the
critical point, jumping to the entire key space ``m`` above it.
"""

from _util import emit

from repro.experiments import PAPER, run_fig5b

TRIALS = 10
SEED = 52


def bench_fig5b(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5b(trials=TRIALS, seed=SEED), rounds=1, iterations=1
    )
    emit("fig5b", result.render())

    cs = result.column("c")
    xs = result.column("x_queried")
    # Every point is one of the two endpoints of the case analysis.
    assert all(x == c + 1 or x == PAPER.m for c, x in zip(cs, xs))
    # Both regimes are represented and the step is monotone (once the
    # adversary switches to the full sweep it never switches back).
    switched = [x == PAPER.m for x in xs]
    assert any(switched) and not all(switched)
    first_switch = switched.index(True)
    assert all(switched[first_switch:])

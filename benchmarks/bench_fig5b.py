"""Figure 5(b): number of keys queried by the best adversary vs cache.

Paper shape to reproduce: a step function — ``x = c + 1`` below the
critical point, jumping to the entire key space ``m`` above it.
"""

from _util import register

from repro.experiments import PAPER, run_fig5b

TRIALS = 10
SEED = 52


def _run():
    return run_fig5b(trials=TRIALS, seed=SEED)


def _check(result) -> None:
    cs = result.column("c")
    xs = result.column("x_queried")
    # Every point is one of the two endpoints of the case analysis.
    assert all(x == c + 1 or x == PAPER.m for c, x in zip(cs, xs))
    # Both regimes are represented and the step is monotone (once the
    # adversary switches to the full sweep it never switches back).
    switched = [x == PAPER.m for x in xs]
    assert any(switched) and not all(switched)
    first_switch = switched.index(True)
    assert all(switched[first_switch:])


SPEC = register("fig5b", run=_run, check=_check, seed=SEED)


def bench_fig5b(benchmark):
    benchmark.pedantic(
        lambda: SPEC.execute(raise_on_check=True), rounds=1, iterations=1
    )


if __name__ == "__main__":
    raise SystemExit(SPEC.main())

"""Exact simulators of the one-choice and d-choice allocation processes.

All functions return an integer *occupancy vector*: entry ``b`` is the
number of balls that ended up in bin ``b``.  Conservation (the vector
sums to the number of balls) is an invariant the property tests lean on.

Performance notes
-----------------
One-choice allocation is a single ``bincount`` — effectively free.  The
d-choice (least-loaded) process is inherently sequential: ball ``t``'s
placement depends on the loads left by balls ``0 .. t-1``.  The inner
loop is written against plain Python lists (faster than per-element
numpy indexing) and handles ~1e6 balls/second, which covers every
configuration in the paper comfortably.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator

__all__ = [
    "one_choice_allocate",
    "d_choice_allocate",
    "sample_replica_groups",
    "replica_group_allocate",
]

RngLike = Union[None, int, np.random.Generator]


def _check(balls: int, bins: int, d: int = 1) -> None:
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if not 1 <= d <= bins:
        raise ConfigurationError(f"need 1 <= d <= bins, got d={d}, bins={bins}")


def one_choice_allocate(balls: int, bins: int, rng: RngLike = None) -> np.ndarray:
    """Throw ``balls`` balls into ``bins`` bins uniformly at random.

    The classic one-choice process underlying the SoCC'11 baseline.
    """
    _check(balls, bins)
    gen = as_generator(rng, "one-choice")
    if balls == 0:
        return np.zeros(bins, dtype=np.int64)
    targets = gen.integers(0, bins, size=balls)
    return np.bincount(targets, minlength=bins).astype(np.int64)


def sample_replica_groups(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    distinct: bool = True,
) -> np.ndarray:
    """Sample a ``(balls, d)`` matrix of candidate bins per ball.

    ``distinct=True`` (the paper's replica-group semantics: ``d``
    *different* nodes hold each item) resamples rows containing
    duplicates; for ``d << bins`` this converges in a couple of rounds.
    ``distinct=False`` gives the textbook with-replacement d-choice
    process — the bounds are the same up to the folded constant.
    """
    _check(balls, bins, d)
    gen = as_generator(rng, "replica-groups")
    if balls == 0:
        return np.zeros((0, d), dtype=np.int64)
    choices = gen.integers(0, bins, size=(balls, d))
    if distinct and d > 1:
        for _ in range(64):
            sorted_rows = np.sort(choices, axis=1)
            dup_mask = (np.diff(sorted_rows, axis=1) == 0).any(axis=1)
            n_dup = int(dup_mask.sum())
            if n_dup == 0:
                break
            choices[dup_mask] = gen.integers(0, bins, size=(n_dup, d))
        else:  # pragma: no cover - 64 rounds suffice for any d <= bins/2
            for row in np.nonzero(dup_mask)[0]:
                choices[row] = gen.choice(bins, size=d, replace=False)
    return choices.astype(np.int64)


def d_choice_allocate(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    distinct: bool = True,
    choices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedy d-choice (least-loaded) allocation — the theory model.

    Each ball inspects ``d`` candidate bins and joins the least loaded
    (first of the candidates on ties, matching the usual analysis).  Pass
    ``choices`` to reuse a pre-sampled candidate matrix, e.g. to compare
    selection rules on identical randomness.
    """
    _check(balls, bins, d)
    if choices is None:
        choices = sample_replica_groups(balls, bins, d, rng=rng, distinct=distinct)
    else:
        choices = np.asarray(choices)
        if choices.shape != (balls, d):
            raise ConfigurationError(
                f"choices must have shape ({balls}, {d}), got {choices.shape}"
            )
    if balls == 0:
        return np.zeros(bins, dtype=np.int64)
    if d == 1:
        return np.bincount(choices[:, 0], minlength=bins).astype(np.int64)
    loads = [0] * bins
    rows = choices.tolist()
    for row in rows:
        best = row[0]
        best_load = loads[best]
        for cand in row[1:]:
            cand_load = loads[cand]
            if cand_load < best_load:
                best = cand
                best_load = cand_load
        loads[best] = best_load + 1
    return np.asarray(loads, dtype=np.int64)


def replica_group_allocate(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    selection: str = "least-loaded",
) -> np.ndarray:
    """Allocate balls whose candidate sets are replica groups, under a
    named selection rule.

    ``selection``:

    - ``"least-loaded"`` — the theory model (power of d choices);
    - ``"random"`` — each ball picks one of its ``d`` candidates
      uniformly (degrades to the one-choice process);
    - ``"first"`` — deterministic primary replica (also one-choice,
      since groups are random);
    - ``"split"`` — the ball is divided evenly across its ``d``
      candidates (models per-query round-robin in steady state); the
      returned vector is float-valued fractional occupancy.
    """
    _check(balls, bins, d)
    gen = as_generator(rng, "replica-allocate")
    groups = sample_replica_groups(balls, bins, d, rng=gen)
    if selection == "least-loaded":
        return d_choice_allocate(balls, bins, d, choices=groups)
    if selection == "random":
        if balls == 0:
            return np.zeros(bins, dtype=np.int64)
        picks = groups[np.arange(balls), gen.integers(0, d, size=balls)]
        return np.bincount(picks, minlength=bins).astype(np.int64)
    if selection == "first":
        if balls == 0:
            return np.zeros(bins, dtype=np.int64)
        return np.bincount(groups[:, 0], minlength=bins).astype(np.int64)
    if selection == "split":
        occupancy = np.zeros(bins, dtype=float)
        if balls:
            np.add.at(occupancy, groups.ravel(), 1.0 / d)
        return occupancy
    raise ConfigurationError(f"unknown selection rule {selection!r}")

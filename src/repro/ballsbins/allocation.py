"""Exact simulators of the one-choice and d-choice allocation processes.

All functions return an integer *occupancy vector*: entry ``b`` is the
number of balls that ended up in bin ``b``.  Conservation (the vector
sums to the number of balls) is an invariant the property tests lean on.

Performance notes
-----------------
One-choice allocation is a single ``bincount`` — effectively free.  The
d-choice (least-loaded) process is inherently sequential: ball ``t``'s
placement depends on the loads left by balls ``0 .. t-1``.  Two exact
implementations coexist:

- a plain-Python reference loop (~1e6 balls/second), and
- a batched numpy kernel that processes windows of balls in rounds of
  conflict-free argmin updates (several times faster at paper scale;
  see :func:`d_choice_allocate`'s ``method`` parameter).

Both produce byte-identical occupancy vectors for the same candidate
matrix — the batched kernel only applies a ball's placement once no
earlier unplaced ball shares any of its candidate bins, deferring the
rest to the next round, so the greedy order semantics (including
first-candidate tie-breaking) are preserved exactly.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator

__all__ = [
    "one_choice_allocate",
    "d_choice_allocate",
    "sample_replica_groups",
    "replica_group_allocate",
]

RngLike = Union[None, int, np.random.Generator]


def _check(balls: int, bins: int, d: int = 1) -> None:
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if not 1 <= d <= bins:
        raise ConfigurationError(f"need 1 <= d <= bins, got d={d}, bins={bins}")


def one_choice_allocate(
    balls: int, bins: int, rng: RngLike = None, metrics=None
) -> np.ndarray:
    """Throw ``balls`` balls into ``bins`` bins uniformly at random.

    The classic one-choice process underlying the SoCC'11 baseline.
    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) counts
    calls and balls; it never influences the allocation.
    """
    _check(balls, bins)
    gen = as_generator(rng, "one-choice")
    if metrics is not None:
        metrics.counter("alloc_calls_total", kernel="one-choice").inc()
        metrics.counter("alloc_balls_total", kernel="one-choice").inc(balls)
    if balls == 0:
        return np.zeros(bins, dtype=np.int64)
    targets = gen.integers(0, bins, size=balls)
    return np.bincount(targets, minlength=bins).astype(np.int64)


def sample_replica_groups(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    distinct: bool = True,
    metrics=None,
) -> np.ndarray:
    """Sample a ``(balls, d)`` matrix of candidate bins per ball.

    ``distinct=True`` (the paper's replica-group semantics: ``d``
    *different* nodes hold each item) resamples rows containing
    duplicates; for ``d << bins`` this converges in a couple of rounds.
    ``distinct=False`` gives the textbook with-replacement d-choice
    process — the bounds are the same up to the folded constant.
    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) counts
    sampled groups and candidate slots; it never influences sampling.
    """
    _check(balls, bins, d)
    gen = as_generator(rng, "replica-groups")
    if metrics is not None:
        metrics.counter("replica_groups_total").inc(balls)
        metrics.counter("replica_slots_total").inc(balls * d)
    if balls == 0:
        return np.zeros((0, d), dtype=np.int64)
    choices = gen.integers(0, bins, size=(balls, d))
    if distinct and d > 1:
        for _ in range(64):
            sorted_rows = np.sort(choices, axis=1)
            dup_mask = (np.diff(sorted_rows, axis=1) == 0).any(axis=1)
            n_dup = int(dup_mask.sum())
            if n_dup == 0:
                break
            choices[dup_mask] = gen.integers(0, bins, size=(n_dup, d))
        else:  # pragma: no cover - 64 rounds suffice for any d <= bins/2
            for row in np.nonzero(dup_mask)[0]:
                choices[row] = gen.choice(bins, size=d, replace=False)
    return choices.astype(np.int64)


#: Below this many balls the numpy round overhead dominates and the
#: plain loop wins; above it the batched kernel is strictly faster.
_BATCH_MIN_BALLS = 4096


def _d_choice_sequential(choices: np.ndarray, bins: int) -> np.ndarray:
    """Reference greedy loop: exact, simple, ~1e6 balls/second."""
    loads = [0] * bins
    for row in choices.tolist():
        best = row[0]
        best_load = loads[best]
        for cand in row[1:]:
            cand_load = loads[cand]
            if cand_load < best_load:
                best = cand
                best_load = cand_load
        loads[best] = best_load + 1
    return np.asarray(loads, dtype=np.int64)


#: Once a round shrinks below this many balls, numpy call overhead per
#: round exceeds the cost of just finishing the window with the plain
#: loop — the long tail of tiny rounds is where windows spend most of
#: their round budget.
_BATCH_TAIL = 48


def _d_choice_batched(
    choices: np.ndarray, bins: int, window: Optional[int] = None, metrics=None
) -> np.ndarray:
    """Vectorized greedy d-choice, byte-identical to the sequential loop.

    Balls are consumed in windows.  Within a window, each round places
    every ball none of whose candidate bins appear in an *earlier*
    still-unplaced ball of the window: those balls cannot influence each
    other (their candidate sets are pairwise disjoint — if two shared a
    bin the later one would be blocked), so a single gather + row-wise
    ``argmin`` + fancy-index increment applies all of them at once with
    the exact loads the sequential process would have seen.  Blocked
    balls carry over to the next round, after the conflicting earlier
    placements have landed.  The first remaining ball is never blocked,
    so every round makes progress; once a round shrinks below
    :data:`_BATCH_TAIL` balls the window is finished with the plain loop
    (same semantics, cheaper than more near-empty rounds).

    Conflict detection is a first-claim scatter: writing ball indices
    into ``first_claim[bin]`` in *reverse* ball order leaves, for every
    bin, the earliest remaining ball that lists it (last write wins, and
    the last reverse-order write is the first ball).  A ball is blocked
    iff any of its bins was claimed by a strictly earlier ball; a ball
    listing the same bin twice in its own row is *not* blocked by
    itself, because its own claim compares equal, not smaller.
    """
    balls, d = choices.shape
    loads = np.zeros(bins, dtype=np.int64)
    if window is None:
        # Collision frequency scales with window * d / bins; about one
        # bin's worth of candidates per window minimises total rounds
        # (fewer windows) without degrading per-round yield too far
        # (measured optimum for the paper-scale n, d).
        window = max(32, bins // d)
    ball_ids = np.repeat(np.arange(window), d)
    row_ids = np.arange(window)
    first_claim = np.empty(bins, dtype=np.int64)
    rounds = 0
    tail_balls = 0
    start = 0
    while start < balls:
        sub = choices[start : start + window]
        start += sub.shape[0]
        while sub.shape[0] > _BATCH_TAIL:
            rounds += 1
            r = sub.shape[0]
            flat = sub.ravel()
            ball_of = ball_ids[: r * d]
            first_claim[flat[::-1]] = ball_of[::-1]
            g = first_claim[flat]
            if d == 2:
                # Specialised reduction: min over the two slots of each
                # ball via strided views, no reshape round-trip.
                np.minimum(g[::2], g[1::2], out=g[::2])
                clean_mask = g[::2] >= row_ids[:r]
            else:
                clean_mask = (g >= ball_of).reshape(r, d).all(axis=1)
            clean = sub[clean_mask]
            pos = loads[clean].argmin(axis=1)
            chosen = clean[row_ids[: clean.shape[0]], pos]
            # Clean balls occupy pairwise-disjoint candidate sets, so
            # plain fancy indexing (no ``np.add.at``) is safe here.
            loads[chosen] += 1
            sub = sub[~clean_mask]
        tail_balls += sub.shape[0]
        for row in sub.tolist():
            best = row[0]
            best_load = loads[best]
            for cand in row[1:]:
                cand_load = loads[cand]
                if cand_load < best_load:
                    best = cand
                    best_load = cand_load
            loads[best] = best_load + 1
    if metrics is not None:
        metrics.counter("alloc_batched_rounds_total").inc(rounds)
        metrics.counter("alloc_batched_tail_balls_total").inc(tail_balls)
    return loads


def d_choice_allocate(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    distinct: bool = True,
    choices: Optional[np.ndarray] = None,
    method: str = "auto",
    metrics=None,
) -> np.ndarray:
    """Greedy d-choice (least-loaded) allocation — the theory model.

    Each ball inspects ``d`` candidate bins and joins the least loaded
    (first of the candidates on ties, matching the usual analysis).  Pass
    ``choices`` to reuse a pre-sampled candidate matrix, e.g. to compare
    selection rules on identical randomness.

    ``method`` selects the implementation — all produce byte-identical
    occupancy vectors:

    - ``"auto"`` (default): the batched kernel for large, low-collision
      configurations, the reference loop otherwise;
    - ``"sequential"``: the plain-Python reference loop;
    - ``"batched"``: the vectorized round-based kernel.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) counts
    calls, balls and — for the batched kernel — conflict-resolution
    rounds, per resolved kernel; it never influences the allocation.
    """
    _check(balls, bins, d)
    if method not in ("auto", "sequential", "batched"):
        raise ConfigurationError(
            f"method must be 'auto', 'sequential' or 'batched', got {method!r}"
        )
    if choices is None:
        choices = sample_replica_groups(balls, bins, d, rng=rng, distinct=distinct)
    else:
        choices = np.asarray(choices)
        if choices.shape != (balls, d):
            raise ConfigurationError(
                f"choices must have shape ({balls}, {d}), got {choices.shape}"
            )
    if balls == 0:
        return np.zeros(bins, dtype=np.int64)
    if d == 1:
        if metrics is not None:
            metrics.counter("alloc_calls_total", kernel="one-choice").inc()
            metrics.counter("alloc_balls_total", kernel="one-choice").inc(balls)
        return np.bincount(choices[:, 0], minlength=bins).astype(np.int64)
    if method == "auto":
        # Dense candidate sets (d within a small factor of bins) make
        # nearly every ball conflict with an earlier one, degenerating
        # the rounds to one ball each — the loop is faster there.
        if balls >= _BATCH_MIN_BALLS and bins >= 8 * d:
            method = "batched"
        else:
            method = "sequential"
    if metrics is not None:
        metrics.counter("alloc_calls_total", kernel=method).inc()
        metrics.counter("alloc_balls_total", kernel=method).inc(balls)
    if method == "batched":
        return _d_choice_batched(np.ascontiguousarray(choices), bins, metrics=metrics)
    return _d_choice_sequential(choices, bins)


def replica_group_allocate(
    balls: int,
    bins: int,
    d: int,
    rng: RngLike = None,
    selection: str = "least-loaded",
) -> np.ndarray:
    """Allocate balls whose candidate sets are replica groups, under a
    named selection rule.

    ``selection``:

    - ``"least-loaded"`` — the theory model (power of d choices);
    - ``"random"`` — each ball picks one of its ``d`` candidates
      uniformly (degrades to the one-choice process);
    - ``"first"`` — deterministic primary replica (also one-choice,
      since groups are random);
    - ``"split"`` — the ball is divided evenly across its ``d``
      candidates (models per-query round-robin in steady state); the
      returned vector is float-valued fractional occupancy.
    """
    _check(balls, bins, d)
    gen = as_generator(rng, "replica-allocate")
    groups = sample_replica_groups(balls, bins, d, rng=gen)
    if selection == "least-loaded":
        return d_choice_allocate(balls, bins, d, choices=groups)
    if selection == "random":
        if balls == 0:
            return np.zeros(bins, dtype=np.int64)
        picks = groups[np.arange(balls), gen.integers(0, d, size=balls)]
        return np.bincount(picks, minlength=bins).astype(np.int64)
    if selection == "first":
        if balls == 0:
            return np.zeros(bins, dtype=np.int64)
        return np.bincount(groups[:, 0], minlength=bins).astype(np.int64)
    if selection == "split":
        occupancy = np.zeros(bins, dtype=float)
        if balls:
            np.add.at(occupancy, groups.ravel(), 1.0 / d)
        return occupancy
    raise ConfigurationError(f"unknown selection rule {selection!r}")

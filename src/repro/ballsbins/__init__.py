"""Balls-into-bins allocation: the probabilistic substrate of the bound.

The paper models uncached keys landing on back-end nodes as ``M`` balls
thrown into ``N`` bins with the *power of d choices* (each ball goes to
the least loaded of ``d`` random bins).  This subpackage provides:

- :mod:`repro.ballsbins.allocation` — exact simulators of the one-choice
  and d-choice processes (vectorised where the process allows),
- :mod:`repro.ballsbins.bounds` — the published maximum-load bounds
  (Raab-Steger for one choice, Berenbrink et al. for d choices),
- :mod:`repro.ballsbins.occupancy` — occupancy statistics and the
  empirical calibration of the Theta(1) constant ``k'``.
"""

from .allocation import d_choice_allocate, one_choice_allocate, replica_group_allocate
from .bounds import d_choice_max_load_bound, max_load_bound, one_choice_max_load_bound
from .occupancy import (
    OccupancyStats,
    calibrate_k_prime,
    max_occupancy_trials,
    occupancy_stats,
)

__all__ = [
    "one_choice_allocate",
    "d_choice_allocate",
    "replica_group_allocate",
    "one_choice_max_load_bound",
    "d_choice_max_load_bound",
    "max_load_bound",
    "OccupancyStats",
    "occupancy_stats",
    "max_occupancy_trials",
    "calibrate_k_prime",
]

"""Published maximum-load bounds for balls-into-bins processes.

Two regimes matter for the paper:

- **one choice** (``d = 1``, the SoCC'11 baseline): for ``M >> N ln N``,
  Raab & Steger (RANDOM'98) give max load ``M/N + sqrt(2 M ln N / N)``
  w.h.p.;
- **d choices** (``d >= 2``, this paper): Berenbrink, Czumaj, Steger &
  Voecking (STOC'00) give max load ``M/N + log log N / log d + Theta(1)``
  w.h.p., *independent of M* beyond the average term — the key fact that
  makes the replicated cache bound O(n) instead of growing with the
  attack size.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError

__all__ = [
    "one_choice_max_load_bound",
    "d_choice_max_load_bound",
    "max_load_bound",
]


def one_choice_max_load_bound(balls: int, bins: int) -> float:
    """Raab-Steger heavily-loaded max-load estimate for one choice.

    ``balls/bins + sqrt(2 balls ln(bins) / bins)``.  Exact asymptotics
    need ``balls >= bins * ln(bins)``; below that the estimate is loose
    but directionally correct, which suffices for baseline comparisons.
    """
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if balls == 0:
        return 0.0
    if bins == 1:
        return float(balls)
    return balls / bins + math.sqrt(2.0 * balls * math.log(bins) / bins)


def d_choice_max_load_bound(
    balls: int, bins: int, d: int, k_prime: float = 0.0
) -> float:
    """Berenbrink et al. heavily-loaded max-load bound for d choices.

    ``balls/bins + log log bins / log d + k'`` with the Theta(1)
    remainder exposed as ``k_prime`` (calibrate it with
    :func:`repro.ballsbins.occupancy.calibrate_k_prime`).
    """
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if d < 2:
        raise ConfigurationError(
            f"the d-choice bound needs d >= 2, got {d}; use one_choice_max_load_bound"
        )
    if balls == 0:
        return 0.0
    excess = 0.0
    if bins > math.e:
        excess = math.log(math.log(bins)) / math.log(d)
    return balls / bins + excess + k_prime


def max_load_bound(balls: int, bins: int, d: int, k_prime: float = 0.0) -> float:
    """Dispatch to the right published bound for the given ``d``.

    ``k_prime`` only affects the ``d >= 2`` branch (the one-choice bound
    already carries its own lower-order structure).
    """
    if d == 1:
        return one_choice_max_load_bound(balls, bins)
    return d_choice_max_load_bound(balls, bins, d, k_prime=k_prime)

"""Occupancy statistics and empirical calibration of the constant ``k'``.

The paper folds the Theta(1) remainder of the Berenbrink et al. bound
into a single constant (``k = log log n / log d + k' = 1.2`` for its
figures).  :func:`calibrate_k_prime` reproduces that calibration step:
run the exact d-choice process many times and measure how far the
observed maximum occupancy sits above ``M/N + log log N / log d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngFactory
from .allocation import d_choice_allocate, one_choice_allocate

__all__ = [
    "OccupancyStats",
    "occupancy_stats",
    "max_occupancy_trials",
    "calibrate_k_prime",
]

RngLike = Union[None, int, np.random.Generator]


@dataclass(frozen=True)
class OccupancyStats:
    """Summary of one occupancy vector."""

    balls: int
    bins: int
    max_load: int
    min_load: int
    mean_load: float
    std_load: float
    gap: float
    empty_bins: int

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.balls} balls / {self.bins} bins: max {self.max_load}, "
            f"min {self.min_load}, gap above mean {self.gap:.2f}, "
            f"{self.empty_bins} empty"
        )


def occupancy_stats(occupancy: np.ndarray) -> OccupancyStats:
    """Compute :class:`OccupancyStats` for an occupancy vector.

    ``gap`` is ``max - mean``, the quantity the d-choice theory bounds by
    ``log log N / log d + Theta(1)`` independent of the ball count.
    """
    occ = np.asarray(occupancy)
    if occ.ndim != 1 or occ.size == 0:
        raise ConfigurationError("occupancy must be a non-empty 1-D vector")
    balls = int(round(float(occ.sum())))
    mean = float(occ.mean())
    return OccupancyStats(
        balls=balls,
        bins=int(occ.size),
        max_load=int(occ.max()),
        min_load=int(occ.min()),
        mean_load=mean,
        std_load=float(occ.std()),
        gap=float(occ.max()) - mean,
        empty_bins=int(np.count_nonzero(occ == 0)),
    )


def max_occupancy_trials(
    balls: int,
    bins: int,
    d: int,
    trials: int,
    seed: int = None,
) -> np.ndarray:
    """Maximum occupancy of ``trials`` independent allocations.

    Returns a length-``trials`` integer array; trial ``t`` uses an
    independent RNG stream derived from ``seed`` so runs are
    reproducible yet uncorrelated.
    """
    if trials < 1:
        raise ConfigurationError(f"need at least one trial, got {trials}")
    factory = RngFactory(seed)
    maxima = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        gen = factory.generator("ballsbins", trial=t)
        if d == 1:
            occ = one_choice_allocate(balls, bins, rng=gen)
        else:
            occ = d_choice_allocate(balls, bins, d, rng=gen)
        maxima[t] = occ.max() if occ.size else 0
    return maxima


def calibrate_k_prime(
    balls: int,
    bins: int,
    d: int,
    trials: int = 50,
    seed: int = None,
    quantile: float = 1.0,
) -> float:
    """Measure the Theta(1) remainder ``k'`` of the d-choice bound.

    Runs the exact process ``trials`` times and returns the chosen
    ``quantile`` (default: the maximum, matching the paper's worst-case
    reporting) of ``max_load - balls/bins - log log bins / log d``.

    The result plugged into ``k = log log n / log d + k'`` reproduces the
    paper's folded constant; for ``n = 1000, d = 3`` the calibrated ``k``
    lands near the paper's 1.2.
    """
    if d < 2:
        raise ConfigurationError(f"calibration targets the d >= 2 bound, got d={d}")
    if not 0.0 <= quantile <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {quantile}")
    maxima = max_occupancy_trials(balls, bins, d, trials, seed=seed).astype(float)
    excess = 0.0
    if bins > math.e:
        excess = math.log(math.log(bins)) / math.log(d)
    residuals = maxima - balls / bins - excess
    return float(np.quantile(residuals, quantile))

"""Front-end failover: timeout, capped exponential backoff, retries.

When a replica crashes, the front end in Figure 1 does not learn about
it instantly — it dispatches, waits out a detection timeout, and only
then fails over to another member of the key's replica group.  The
:class:`RetryPolicy` captures that loop as plain data:

- attempt 1 routes normally (whatever routing policy is configured);
- a dead attempt costs ``timeout`` seconds, then the request is
  redispatched to the first *untried, currently-up* member of the
  replica group after a backoff delay of
  ``min(backoff * multiplier**(attempt-1), max_backoff)``;
- after ``max_attempts`` total tries (or when no untried replica is
  up) the request is **unavailable** — counted, and optionally served
  stale by the front-end cache (see
  :class:`repro.chaos.config.ChaosConfig`).

The policy is a frozen dataclass, so it is hashable, picklable and
participates in configuration equality — chaos campaigns stay
bit-identical across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff across surviving replicas.

    Parameters
    ----------
    max_attempts:
        Total dispatch attempts per request, the first included.  With
        replication ``d`` there is no point exceeding ``d``; the engine
        also stops early when every replica has been tried.
    timeout:
        Simulated seconds a dead dispatch costs before the front end
        declares it failed (the failure-detection delay).
    backoff:
        Base backoff before the first retry (seconds).
    multiplier:
        Geometric growth factor applied per additional retry.
    max_backoff:
        Upper cap on any single backoff delay (seconds).
    """

    max_attempts: int = 3
    timeout: float = 0.05
    backoff: float = 0.01
    multiplier: float = 2.0
    max_backoff: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout < 0 or self.backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError(
                "timeout, backoff and max_backoff must be >= 0"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay(self, attempt: int) -> float:
        """Simulated delay between failed attempt ``attempt`` (1-based)
        and the next dispatch: detection timeout plus capped backoff."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return self.timeout + min(
            self.backoff * self.multiplier ** (attempt - 1), self.max_backoff
        )

    def total_budget(self) -> float:
        """Worst-case simulated seconds a request can spend retrying."""
        return sum(self.delay(a) for a in range(1, self.max_attempts))

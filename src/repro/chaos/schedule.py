"""Deterministic fault-injection schedules on the simulated clock.

The paper motivates replication with fault tolerance before using it for
DDoS prevention; this module supplies the *online* failure model the
static analysis in :mod:`repro.cluster.failures` lacks.  A
:class:`FailureSchedule` is a time-ordered list of
:class:`FailureEvent`\\ s — crash / recover / slow / restore, each
pinned to a node and a simulated timestamp — that the event-driven
engine replays alongside the request stream.  Schedules come from two
sources, both reproducible:

- :meth:`FailureSchedule.generate` draws per-node crash/repair (and
  optionally slowdown) processes from a seeded generator: crashes are
  Poisson with rate ``failure_rate`` per node, repairs exponential with
  mean ``mttr`` — the classic alternating-renewal availability model
  whose steady-state down fraction is
  ``failure_rate * mttr / (1 + failure_rate * mttr)``;
- :meth:`FailureSchedule.from_json` loads a hand-written (or captured)
  schedule, so specific incident shapes can be replayed exactly.

Schedules are frozen plain data (picklable), so they cross process
boundaries unchanged — a requirement for worker-count-invariant chaos
campaigns (see :mod:`repro.sim.parallel`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator

__all__ = ["EVENT_KINDS", "FailureEvent", "FailureSchedule", "NodeStateTracker"]

RngLike = Union[None, int, np.random.Generator]

#: The event vocabulary: hard crashes lose the node's queue, slowdowns
#: stretch its service times by ``factor`` until restored.
EVENT_KINDS = ("crash", "recover", "slow", "restore")


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One node-state transition at a simulated time.

    Ordering is ``(time, node, kind)`` so sorted schedules replay
    deterministically even when several events share a timestamp.
    """

    time: float
    node: int
    kind: str
    #: Service-rate multiplier for ``slow`` events (ignored otherwise).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ConfigurationError(f"node must be >= 0, got {self.node}")
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.kind == "slow" and not 0.0 < self.factor <= 1.0:
            raise ConfigurationError(
                f"slow factor must be in (0, 1], got {self.factor}"
            )

    def to_dict(self) -> dict:
        """JSON-able form (stable key order handled by the writer)."""
        record = {"time": self.time, "node": self.node, "kind": self.kind}
        if self.kind == "slow":
            record["factor"] = self.factor
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FailureEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float(record["time"]),
            node=int(record["node"]),
            kind=str(record["kind"]),
            factor=float(record.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FailureSchedule:
    """An immutable, time-sorted sequence of failure events.

    Build with :meth:`generate` (seeded synthesis) or :meth:`from_json`
    (replay); the constructor accepts any iterable of events and sorts
    it, so hand-assembled schedules need not be pre-ordered.
    """

    events: Tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self.events)

    @property
    def crash_count(self) -> int:
        """Number of hard-crash events in the schedule."""
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def max_time(self) -> float:
        """Timestamp of the last event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def nodes_touched(self) -> FrozenSet[int]:
        """Every node id referenced by any event."""
        return frozenset(e.node for e in self.events)

    def state_at(self, t: float) -> Tuple[FrozenSet[int], Dict[int, float]]:
        """(down node ids, slow-node -> factor) after all events <= ``t``."""
        down = set()
        slow: Dict[int, float] = {}
        for event in self.events:
            if event.time > t:
                break
            if event.kind == "crash":
                down.add(event.node)
            elif event.kind == "recover":
                down.discard(event.node)
            elif event.kind == "slow":
                slow[event.node] = event.factor
            else:
                slow.pop(event.node, None)
        return frozenset(down), slow

    @classmethod
    def generate(
        cls,
        n: int,
        duration: float,
        failure_rate: float,
        mttr: float,
        rng: RngLike = None,
        slow_rate: float = 0.0,
        slow_factor: float = 0.25,
    ) -> "FailureSchedule":
        """Draw a crash/repair (and optional slowdown) process per node.

        Parameters
        ----------
        n, duration:
            Cluster size and the simulated horizon to cover; crashes
            beyond ``duration`` are not generated (their repairs may
            land past it, which is harmless).
        failure_rate:
            Per-node crash intensity (crashes / simulated second while
            up).  ``0`` disables crashes.
        mttr:
            Mean time to repair (seconds); each down period is an
            independent exponential draw.
        rng:
            Seed or generator; the same value reproduces the schedule
            bit-for-bit.
        slow_rate, slow_factor:
            Optional brown-out process: each node independently enters
            a slow state (service rate multiplied by ``slow_factor``)
            at intensity ``slow_rate``, restoring after an
            ``Exp(mttr)`` period.  Default off.
        """
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if failure_rate < 0 or slow_rate < 0:
            raise ConfigurationError("failure_rate and slow_rate must be >= 0")
        if mttr <= 0:
            raise ConfigurationError(f"mttr must be positive, got {mttr}")
        gen = as_generator(rng, "chaos-schedule")
        events = []
        for node in range(n):
            for kind, end_kind, rate in (
                ("crash", "recover", failure_rate),
                ("slow", "restore", slow_rate),
            ):
                if rate <= 0:
                    continue
                t = 0.0
                while True:
                    t += float(gen.exponential(1.0 / rate))
                    if t >= duration:
                        break
                    repair = float(gen.exponential(mttr))
                    events.append(
                        FailureEvent(
                            time=t, node=node, kind=kind,
                            factor=slow_factor if kind == "slow" else 1.0,
                        )
                    )
                    events.append(FailureEvent(time=t + repair, node=node, kind=end_kind))
                    t += repair
        return cls(tuple(events))

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form: a schema tag plus the event list."""
        return {"schema": 1, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureSchedule":
        """Inverse of :meth:`to_dict`."""
        events = payload.get("events")
        if not isinstance(events, list):
            raise ConfigurationError("schedule payload needs an 'events' list")
        return cls(tuple(FailureEvent.from_dict(e) for e in events))

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the schedule as a JSON document."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "FailureSchedule":
        """Load a schedule written by :meth:`to_json` (or by hand)."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class NodeStateTracker:
    """Live node up/down + slowdown state as a schedule replays.

    The event engine owns one per run; it applies each
    :class:`FailureEvent` as the simulated clock reaches it and answers
    the routing layer's "is this replica up?" queries in O(1).
    """

    __slots__ = ("n", "_up", "_factor", "_down_count")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        self.n = n
        self._up = np.ones(n, dtype=bool)
        self._factor = np.ones(n, dtype=float)
        self._down_count = 0

    def is_up(self, node: int) -> bool:
        """Whether ``node`` is currently serving."""
        return bool(self._up[node])

    def rate_factor(self, node: int) -> float:
        """Current service-rate multiplier for ``node`` (1.0 = healthy)."""
        return float(self._factor[node])

    @property
    def down_count(self) -> int:
        """Nodes currently down."""
        return self._down_count

    @property
    def down_fraction(self) -> float:
        """Fraction of the cluster currently down."""
        return self._down_count / self.n

    def down_nodes(self) -> Tuple[int, ...]:
        """Sorted ids of the nodes currently down."""
        return tuple(int(i) for i in np.nonzero(~self._up)[0])

    def apply(self, event: FailureEvent) -> bool:
        """Apply one event; returns True when the state actually changed
        (a second crash of an already-down node is a no-op)."""
        node = event.node
        if not 0 <= node < self.n:
            raise ConfigurationError(
                f"event for node {node} outside cluster of {self.n}"
            )
        if event.kind == "crash":
            if not self._up[node]:
                return False
            self._up[node] = False
            self._down_count += 1
            return True
        if event.kind == "recover":
            if self._up[node]:
                return False
            self._up[node] = True
            self._down_count -= 1
            return True
        if event.kind == "slow":
            changed = self._factor[node] != event.factor
            self._factor[node] = event.factor
            return bool(changed)
        changed = self._factor[node] != 1.0
        self._factor[node] = 1.0
        return bool(changed)

    def surviving(self, group: Iterable[int]) -> Tuple[int, ...]:
        """The subset of a replica group that is currently up."""
        return tuple(int(g) for g in group if self._up[int(g)])

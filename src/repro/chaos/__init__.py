"""Fault injection for the live request path (chaos engineering).

The paper's bound ``1 + (1 - c + n k)/(x - 1)`` carries
``k = log log n / log d`` — it degrades exactly when replicas fail,
because surviving keys lose choice (effective ``d`` shrinks) while the
survivors absorb more load.  This package makes that failure mode a
first-class, *deterministic* part of every simulation:

- :mod:`~repro.chaos.schedule` — seeded or JSON-loaded crash / recover
  / slow-node event schedules on the simulated clock, plus the live
  :class:`~repro.chaos.schedule.NodeStateTracker`;
- :mod:`~repro.chaos.retry` — the front end's failover loop (detection
  timeout + capped exponential backoff across surviving replicas);
- :mod:`~repro.chaos.config` — the :class:`~repro.chaos.config.ChaosConfig`
  both engines accept (``chaos=None`` keeps them byte-identical to the
  pre-chaos behaviour).

The online monitor (:mod:`repro.obs.monitor`) closes the loop: chaos
runs report per-window ``effective_d`` and a refreshed (degraded)
Theorem-2 bound, and the ``degraded-bound`` alert fires whenever
failures have shrunk the replication choice.  See docs/ROBUSTNESS.md.
"""

from .config import ChaosConfig
from .retry import RetryPolicy
from .schedule import EVENT_KINDS, FailureEvent, FailureSchedule, NodeStateTracker

__all__ = [
    "ChaosConfig",
    "RetryPolicy",
    "EVENT_KINDS",
    "FailureEvent",
    "FailureSchedule",
    "NodeStateTracker",
]

"""The chaos knob: one frozen config shared by both simulation engines.

A :class:`ChaosConfig` bundles the failure model (an explicit
:class:`~repro.chaos.schedule.FailureSchedule` or the ``failure_rate`` /
``mttr`` process parameters to synthesise one per trial), the front-end
:class:`~repro.chaos.retry.RetryPolicy`, and the graceful-degradation
switch (``serve_stale``).  Passing ``chaos=None`` anywhere keeps every
code path byte-identical to the pre-chaos behaviour — the same contract
the observability layer keeps with ``metrics=None`` / ``monitor=None``.

Both engines consume it:

- the **event engine** (:class:`repro.sim.eventsim.EventDrivenSimulator`)
  replays the schedule live: crashes lose a node's queue, routing pays
  the retry policy's timeout/backoff, keys with no surviving replica
  are counted unavailable (and optionally served stale);
- the **Monte-Carlo engine** (:class:`repro.sim.analytic.MonteCarloSimulator`)
  has no clock, so it uses the process's *steady-state* down fraction:
  each trial samples a failure set of that size, degrades the replica
  groups (:func:`repro.cluster.failures.degrade_groups`) and re-runs
  the placement on the survivors — effective ``d`` shrinks exactly as
  Theorem 2's constant ``k = log log n / log d`` predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..scenario.registry import register_component
from .retry import RetryPolicy
from .schedule import FailureSchedule

__all__ = ["ChaosConfig"]

RngLike = Union[None, int, np.random.Generator]


def _build_chaos(ctx, retry=None, **params):
    """Spec builder: ``{kind: renewal, failure_rate: ..., retry: {...}}``.

    Spec-side chaos carries the renewal-process parameters (an explicit
    :class:`~repro.chaos.schedule.FailureSchedule` is not plain data, so
    file specs cannot express it — synthesise per trial instead).
    """
    kwargs = dict(params)
    if retry is not None:
        kwargs["retry"] = RetryPolicy(**retry)
    return ChaosConfig(**kwargs)


@register_component("chaos", "renewal", builder=_build_chaos)
@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection parameters for a simulation campaign.

    Parameters
    ----------
    schedule:
        Explicit event schedule (replayed identically in every trial).
        ``None`` synthesises a fresh per-trial schedule from
        ``failure_rate`` / ``mttr`` on the trial's own RNG stream.
    failure_rate:
        Per-node crash intensity (crashes / simulated second) used when
        synthesising schedules, and to derive the Monte-Carlo engine's
        steady-state failed fraction.
    mttr:
        Mean time to repair (simulated seconds).
    slow_rate, slow_factor:
        Optional brown-out process (see
        :meth:`~repro.chaos.schedule.FailureSchedule.generate`).
    retry:
        The front-end failover policy.
    serve_stale:
        When True, requests whose every replica is down are answered
        stale by the front end if the key was ever fetched before
        (counted separately from fresh hits); when False they simply
        fail.
    """

    schedule: Optional[FailureSchedule] = None
    failure_rate: float = 0.02
    mttr: float = 0.25
    slow_rate: float = 0.0
    slow_factor: float = 0.25
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    serve_stale: bool = True

    def __post_init__(self) -> None:
        if self.failure_rate < 0 or self.slow_rate < 0:
            raise ConfigurationError("failure_rate and slow_rate must be >= 0")
        if self.mttr <= 0:
            raise ConfigurationError(f"mttr must be positive, got {self.mttr}")
        if not 0.0 < self.slow_factor <= 1.0:
            raise ConfigurationError(
                f"slow_factor must be in (0, 1], got {self.slow_factor}"
            )

    @property
    def steady_state_failed_fraction(self) -> float:
        """Long-run fraction of nodes down under the renewal model.

        Each node alternates Up ~ Exp(1/failure_rate) and Down ~
        Exp(mttr) periods, so the stationary down probability is
        ``mttr / (1/failure_rate + mttr)``.
        """
        if self.failure_rate == 0:
            return 0.0
        up_mean = 1.0 / self.failure_rate
        return self.mttr / (up_mean + self.mttr)

    def schedule_for(
        self, n: int, duration: float, rng: RngLike = None
    ) -> FailureSchedule:
        """The explicit schedule, or a synthesised one for this run."""
        if self.schedule is not None:
            return self.schedule
        return FailureSchedule.generate(
            n=n,
            duration=duration,
            failure_rate=self.failure_rate,
            mttr=self.mttr,
            rng=rng,
            slow_rate=self.slow_rate,
            slow_factor=self.slow_factor,
        )

    def describe(self) -> str:
        """One-line human summary for reports and CLIs."""
        if self.schedule is not None:
            source = f"explicit schedule ({len(self.schedule)} events)"
        else:
            source = (
                f"failure_rate={self.failure_rate}/s, mttr={self.mttr}s "
                f"(steady-state down fraction "
                f"{self.steady_state_failed_fraction:.3f})"
            )
        return (
            f"chaos: {source}; retry max_attempts={self.retry.max_attempts}, "
            f"timeout={self.retry.timeout}s; serve_stale={self.serve_stale}"
        )

"""Adversary substrate: attack strategies built on public knowledge only.

The threat model (Section III-A): the adversary knows the public system
parameters ``(n, m, c, d)`` and controls an aggregate query rate ``R``,
but cannot observe the key -> replica-group mapping.  Every strategy
here therefore consumes only a
:class:`~repro.core.notation.SystemParameters` — never a partitioner or
cluster object — making the information asymmetry structural.
"""

from .strategies import (
    AdaptiveProbingAdversary,
    Adversary,
    FixedSubsetFlood,
    OptimalAdversary,
    ShardTargetingAdversary,
    UniformFlood,
    ZipfClient,
)
from .planner import compare_with_baseline, plan_attack
from .multiclient import MirroredBotnet, PartitionedBotnet, aggregate_rates

__all__ = [
    "MirroredBotnet",
    "PartitionedBotnet",
    "aggregate_rates",
    "Adversary",
    "OptimalAdversary",
    "FixedSubsetFlood",
    "UniformFlood",
    "ZipfClient",
    "AdaptiveProbingAdversary",
    "ShardTargetingAdversary",
    "plan_attack",
    "compare_with_baseline",
]

"""Multi-client (botnet) attack coordination.

A DDoS is rarely one client: a botnet of ``k`` sources each contributes
rate ``R/k``.  Against the *perfect* cache the paper's analysis already
covers this — the system only sees the aggregate distribution, and
aggregating ``k`` copies of the optimal pattern is again the optimal
pattern (linearity, verified in the tests).  Two coordination schemes
matter once real caches and orderings enter:

- :class:`MirroredBotnet` — every bot sends the same pattern; aggregate
  = single adversary at rate ``R`` (the paper's model, shown
  explicitly);
- :class:`PartitionedBotnet` — bots split the ``x`` keys into disjoint
  slices.  The aggregate marginals are identical, but each bot's
  per-connection rate concentrates on fewer keys, which defeats
  *per-source* rate limiting (each source looks modest) while still
  mounting the full attack — the reason the paper's front-end-cache
  defense is more robust than per-client throttling.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError
from ..scenario.registry import register_component
from ..workload.adversarial import AdversarialDistribution
from ..workload.distributions import CustomDistribution, KeyDistribution

__all__ = ["MirroredBotnet", "PartitionedBotnet", "aggregate_rates"]


def _botnet_example(ctx) -> dict:
    """Smallest valid botnet against the context's system: flood past
    the cache with enough keys that every bot gets a slice."""
    x = min(ctx.params.m, max(2, ctx.params.c + 1))
    return {"x": x, "clients": 2}


def aggregate_rates(
    distributions: Sequence[KeyDistribution], rates: Sequence[float]
) -> np.ndarray:
    """Combine per-client patterns into aggregate per-key rates.

    The system is blind to which client sent what; all analysis applies
    to this aggregate.
    """
    if len(distributions) != len(rates) or not distributions:
        raise ConfigurationError("need equal, non-zero numbers of clients and rates")
    m = distributions[0].m
    total = np.zeros(m)
    for dist, rate in zip(distributions, rates):
        if dist.m != m:
            raise ConfigurationError("all clients must share one key space")
        if rate < 0:
            raise ConfigurationError("rates must be non-negative")
        total += dist.probabilities() * rate
    return total


@register_component("adversary", "mirrored-botnet", example=_botnet_example)
class MirroredBotnet:
    """``k`` bots, each sending the same x-key uniform pattern at R/k."""

    def __init__(self, public: SystemParameters, x: int, clients: int) -> None:
        if clients < 1:
            raise ConfigurationError(f"need at least one client, got {clients}")
        if not 1 <= x <= public.m:
            raise ConfigurationError(f"need 1 <= x <= m={public.m}, got x={x}")
        self._public = public
        self._x = x
        self._clients = clients

    @property
    def clients(self) -> int:
        """Botnet size."""
        return self._clients

    def per_client_rate(self) -> float:
        """Rate each bot contributes."""
        return self._public.rate / self._clients

    def client_distributions(self) -> List[AdversarialDistribution]:
        """One identical pattern per bot."""
        return [
            AdversarialDistribution(self._public.m, self._x)
            for _ in range(self._clients)
        ]

    def aggregate(self) -> KeyDistribution:
        """The pattern the system actually experiences."""
        rates = aggregate_rates(
            self.client_distributions(), [self.per_client_rate()] * self._clients
        )
        return CustomDistribution(rates)


@register_component("adversary", "partitioned-botnet", example=_botnet_example)
class PartitionedBotnet:
    """``k`` bots splitting the ``x`` attacked keys into disjoint slices.

    Bot ``j`` floods keys ``[j * x/k, (j+1) * x/k)`` uniformly at rate
    ``R/k``.  The aggregate equals the single adversary's pattern, but
    each bot touches only ``x/k`` keys — per-source anomaly detectors
    keyed on "number of distinct keys per client" or "per-key rate per
    client" see nothing unusual.
    """

    def __init__(self, public: SystemParameters, x: int, clients: int) -> None:
        if clients < 1:
            raise ConfigurationError(f"need at least one client, got {clients}")
        if not clients <= x <= public.m:
            raise ConfigurationError(
                f"need clients <= x <= m (every bot needs a slice); "
                f"got clients={clients}, x={x}, m={public.m}"
            )
        self._public = public
        self._x = x
        self._clients = clients

    @property
    def clients(self) -> int:
        """Botnet size."""
        return self._clients

    def per_client_rate(self) -> float:
        """Rate each bot contributes."""
        return self._public.rate / self._clients

    def slices(self) -> List[Tuple[int, int]]:
        """Key ranges ``[start, stop)`` per bot (balanced split of x)."""
        bounds = np.linspace(0, self._x, self._clients + 1).round().astype(int)
        return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    def client_distributions(self) -> List[KeyDistribution]:
        """One disjoint-slice uniform pattern per bot."""
        out: List[KeyDistribution] = []
        for start, stop in self.slices():
            probs = np.zeros(self._public.m)
            probs[start:stop] = 1.0 / (stop - start)
            out.append(CustomDistribution(probs))
        return out

    def aggregate(self) -> KeyDistribution:
        """The system-side pattern — equals the single adversary's
        uniform prefix when the slices are balanced."""
        rates = aggregate_rates(
            self.client_distributions(), [self.per_client_rate()] * self._clients
        )
        return CustomDistribution(rates)

    def max_keys_per_client(self) -> int:
        """Largest slice size — the 'distinct keys per source' signal a
        per-client detector would have to alarm on."""
        return max(stop - start for start, stop in self.slices())

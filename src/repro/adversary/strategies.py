"""Attack strategies.

Each strategy maps public knowledge to a
:class:`~repro.workload.distributions.KeyDistribution` describing the
traffic it would send.  The simulators then execute that traffic against
a system whose internal randomness the strategy never saw.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.cases import optimal_query_count
from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError
from ..scenario.registry import register_component
from ..workload.adversarial import AdversarialDistribution
from ..workload.distributions import KeyDistribution, UniformDistribution
from ..workload.keyset import KeySetDistribution
from ..workload.zipf import ZipfDistribution

__all__ = [
    "Adversary",
    "OptimalAdversary",
    "FixedSubsetFlood",
    "UniformFlood",
    "ZipfClient",
    "AdaptiveProbingAdversary",
    "ShardTargetingAdversary",
]


class Adversary(ABC):
    """A traffic source with public knowledge of the target system."""

    #: Short name used in reports and figure legends.
    name: str = "abstract"

    def __init__(self, public: SystemParameters) -> None:
        self._public = public

    @property
    def public(self) -> SystemParameters:
        """The public parameters the strategy was planned against."""
        return self._public

    @abstractmethod
    def distribution(self) -> KeyDistribution:
        """The access pattern this adversary sends."""


@register_component("adversary", "adversarial")
class OptimalAdversary(Adversary):
    """The paper's bound-optimal strategy (Theorem 1 + case analysis).

    Queries ``x`` keys uniformly, with ``x = c + 1`` when the cache is
    under-provisioned (Case 1) and ``x = m`` otherwise (Case 2).  The
    case split needs the folded constant ``k``; an adversary who cannot
    compute it can recover the same behaviour empirically with
    :class:`AdaptiveProbingAdversary`.
    """

    name = "adversarial"

    def __init__(
        self,
        public: SystemParameters,
        k: Optional[float] = None,
        k_prime: float = 0.0,
    ) -> None:
        super().__init__(public)
        self._x = optimal_query_count(public, k=k, k_prime=k_prime)

    @property
    def x(self) -> int:
        """The planned number of queried keys."""
        return self._x

    def distribution(self) -> AdversarialDistribution:
        return AdversarialDistribution(self._public.m, self._x)


@register_component(
    "adversary", "subset-flood", example=lambda ctx: {"x": ctx.params.c + 1}
)
class FixedSubsetFlood(Adversary):
    """Query a fixed prefix of ``x`` keys uniformly (no optimisation).

    The raw ingredient of Figures 3 and 5: the experiments sweep ``x``
    explicitly rather than letting the adversary plan.
    """

    name = "subset-flood"

    def __init__(self, public: SystemParameters, x: int) -> None:
        super().__init__(public)
        if not 1 <= x <= public.m:
            raise ConfigurationError(f"need 1 <= x <= m={public.m}, got x={x}")
        self._x = x

    @property
    def x(self) -> int:
        """Number of keys flooded."""
        return self._x

    def distribution(self) -> AdversarialDistribution:
        return AdversarialDistribution(self._public.m, self._x)


@register_component("adversary", "uniform")
class UniformFlood(Adversary):
    """Query the entire key space uniformly.

    Figure 4's "uniform" pattern — a good-citizen baseline that is also
    the adversary's Case-2 optimum, which is exactly the paper's point:
    with a provisioned cache the best attack is indistinguishable from
    ordinary balanced traffic.
    """

    name = "uniform"

    def distribution(self) -> UniformDistribution:
        return UniformDistribution(self._public.m)


@register_component("adversary", "zipf")
class ZipfClient(Adversary):
    """Benign skewed traffic, Zipf(1.01) in Figure 4.

    Not an attack: included so experiments can show the same pipeline
    handling the workloads the front-end cache was actually deployed
    for (where it shines — the head of the Zipf fits in the cache).
    """

    name = "zipf"

    def __init__(self, public: SystemParameters, s: float = 1.01) -> None:
        super().__init__(public)
        self._s = s

    @property
    def s(self) -> float:
        """Zipf exponent."""
        return self._s

    def distribution(self) -> ZipfDistribution:
        return ZipfDistribution(self._public.m, self._s)


def _build_shard_flood(
    ctx, x: Optional[int] = None, shards: int = 2, target: int = 0,
    seed: Optional[int] = None,
):
    """Spec builder: default the layer hash seed to the scenario's own.

    In-scenario this models the worst case for a cache tree: an insider
    who learned the edge layer's hash seed and floods the keys of one
    shard.  ``x`` defaults to ``c + 1`` (one key past the cache, the
    Theorem-1 sweet spot scaled down to one shard)."""
    if x is None:
        x = ctx.params.c + 1
    return ShardTargetingAdversary(
        ctx.params, x=x, shards=shards, target=target,
        seed=ctx.seed if seed is None else seed,
    )


@register_component(
    "adversary",
    "shard-flood",
    example=lambda ctx: {"x": ctx.params.c + 1, "shards": 2},
    builder=_build_shard_flood,
)
class ShardTargetingAdversary(Adversary):
    """Flood keys that all hash to *one* edge cache shard.

    The DistCache threat model: a flat cache absorbs any ``x <= c``
    flood, but a partitioned cache layer only absorbs what each shard
    can hold — an adversary who knows (or guesses) the edge layer's
    hash concentrates its ``x`` keys on a single shard, overloading it
    while the other shards idle.  Independent per-layer hashes plus
    two-choice routing are exactly the defense: the same keys land on
    *different* shards of the next layer, so the hierarchy re-spreads
    the attack (``benchmarks/bench_tree.py`` measures the gain both
    ways).

    Key discovery scans ``0 .. m-1`` through the same
    :class:`~repro.cluster.hierarchy.LayeredPartitioner` edge layer a
    tree built from ``(seed, shards)`` uses — layer secrets depend only
    on the seed and layer index, so the reconstruction is exact.

    Parameters
    ----------
    public:
        Public system parameters (``m`` bounds the scan).
    x:
        Number of distinct keys to flood (the attack width).
    shards:
        Edge layer width of the targeted tree.
    target:
        Which edge shard to concentrate on.
    seed:
        The tree's layered-partitioner seed (the leaked secret).
    """

    name = "shard-flood"

    def __init__(
        self,
        public: SystemParameters,
        x: int,
        shards: int = 2,
        target: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(public)
        if not 1 <= x <= public.m:
            raise ConfigurationError(f"need 1 <= x <= m={public.m}, got x={x}")
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if not 0 <= target < shards:
            raise ConfigurationError(
                f"target shard must be in [0, {shards}), got {target}"
            )
        from ..cluster.hierarchy import LayeredPartitioner

        partitioner = LayeredPartitioner((shards,), seed=seed)
        assignments = partitioner.assign_many(0, np.arange(public.m))
        candidates = np.flatnonzero(assignments == target)
        if candidates.size == 0:
            raise ConfigurationError(
                f"no key in [0, {public.m}) hashes to shard {target}"
            )
        self._x = int(min(x, candidates.size))
        self._target = target
        self._shards = shards
        self._keys = candidates[: self._x]

    @property
    def x(self) -> int:
        """Number of keys flooded (clamped to the shard's key count)."""
        return self._x

    @property
    def target(self) -> int:
        """The edge shard under attack."""
        return self._target

    @property
    def keys(self) -> np.ndarray:
        """The flooded keys (all hashing to the target shard)."""
        return self._keys.copy()

    def distribution(self) -> KeySetDistribution:
        # client_id=1 tags every flooded key with the attacker's
        # ground-truth identity for the attribution engine — purely
        # key-derived, so traced and untraced runs stay bit-identical.
        return KeySetDistribution(self._public.m, self._keys, client_id=1)


def _build_adaptive(ctx, probes: int = 12, probe_trials: int = 3):
    """Spec builder: close the probing loop with a small Monte-Carlo
    simulator over the scenario's own system and seed, the same feedback
    the integration tests use.  ``probe_trials`` sizes each probe's
    campaign — probing cost is ``probes x probe_trials`` trials."""
    from ..sim.analytic import MonteCarloSimulator
    from ..sim.config import SimulationConfig

    sim = MonteCarloSimulator(
        SimulationConfig(params=ctx.params, trials=probe_trials, seed=ctx.seed)
    )

    def feedback(distribution: KeyDistribution) -> float:
        return sim.distribution_attack(distribution).worst_case

    return AdaptiveProbingAdversary(ctx.params, feedback, probes=probes)


@register_component(
    "adversary", "adaptive", example={"probes": 3}, builder=_build_adaptive
)
class AdaptiveProbingAdversary(Adversary):
    """Extension: find the best ``x`` empirically, without knowing ``k``.

    The paper's optimal strategy needs the folded constant ``k`` to pick
    between ``x = c + 1`` and ``x = m``.  A real attacker can instead
    *measure*: send probe floods with different ``x``, observe the
    damage (e.g. tail latency of responses), and keep the best.  Since
    the gain bound is monotone on either side of the case boundary, a
    coarse geometric sweep refined around the best probe converges to
    the planner's choice — which the integration tests verify.

    Parameters
    ----------
    public:
        Public system parameters.
    feedback:
        Callable mapping a candidate distribution to the observed attack
        gain (higher = better for the adversary).  In experiments this
        is a simulator; in the wild it would be latency probing.
    probes:
        Number of geometric sweep points (>= 2).
    """

    name = "adaptive"

    def __init__(
        self,
        public: SystemParameters,
        feedback: Callable[[KeyDistribution], float],
        probes: int = 12,
    ) -> None:
        super().__init__(public)
        if probes < 2:
            raise ConfigurationError(f"need at least 2 probes, got {probes}")
        self._feedback = feedback
        self._probes = probes
        self._history: List[Tuple[int, float]] = []
        self._best_x: Optional[int] = None

    @property
    def history(self) -> List[Tuple[int, float]]:
        """``(x, observed_gain)`` pairs from the probing phase."""
        return list(self._history)

    def probe(self) -> int:
        """Run the probing phase; returns and caches the best ``x``."""
        lo = min(self._public.c + 1, self._public.m)
        hi = self._public.m
        grid = np.unique(
            np.clip(np.round(np.geomspace(lo, hi, num=self._probes)).astype(int), lo, hi)
        )
        best_x, best_gain = lo, -np.inf
        for x in grid:
            gain = self._measure(int(x))
            if gain > best_gain:
                best_x, best_gain = int(x), gain
        # Local refinement: one more pass halfway to each neighbour.
        refinements = {max(lo, best_x // 2), min(hi, best_x * 2), min(hi, best_x + 1)}
        for x in refinements:
            if all(x != seen for seen, _ in self._history):
                gain = self._measure(int(x))
                if gain > best_gain:
                    best_x, best_gain = int(x), gain
        self._best_x = best_x
        return best_x

    def _measure(self, x: int) -> float:
        gain = float(self._feedback(AdversarialDistribution(self._public.m, x)))
        self._history.append((x, gain))
        return gain

    def distribution(self) -> AdversarialDistribution:
        if self._best_x is None:
            self.probe()
        return AdversarialDistribution(self._public.m, self._best_x)

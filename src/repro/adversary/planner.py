"""Attack planning: the adversary's (and defender's) decision procedure.

Thin strategy-layer wrappers over :mod:`repro.core.cases` and
:mod:`repro.core.baseline_socc11`, packaged so examples and the CLI can
answer "what would the best attack look like, replicated vs not?" in one
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import baseline_socc11
from ..core.cases import AttackPlan, plan_best_attack
from ..core.notation import SystemParameters

__all__ = ["plan_attack", "BaselineComparison", "compare_with_baseline"]


def plan_attack(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = 0.0
) -> AttackPlan:
    """The bound-optimal plan against a replicated system.

    Alias of :func:`repro.core.cases.plan_best_attack`, re-exported at
    the strategy layer for discoverability.
    """
    return plan_best_attack(params, k=k, k_prime=k_prime)


@dataclass(frozen=True)
class BaselineComparison:
    """Side-by-side of the replicated and unreplicated best attacks.

    The paper's Section III-B discussion in one object: with replication
    a big-enough cache forces ``gain <= 1`` (prevention); without it the
    adversary always has an effective interior optimum.
    """

    replicated: AttackPlan
    unreplicated: baseline_socc11.BaselinePlan

    @property
    def replication_prevents(self) -> bool:
        """True when replication + cache flips an effective attack to
        ineffective."""
        return self.unreplicated.effective and not self.replicated.effective

    def describe(self) -> str:
        """Human-readable comparison."""
        return "\n".join(
            [
                f"replicated   : {self.replicated.describe()}",
                f"unreplicated : {self.unreplicated.describe()}",
                (
                    "=> replication turns the attack ineffective"
                    if self.replication_prevents
                    else "=> both settings share the same verdict"
                ),
            ]
        )


def compare_with_baseline(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = 0.0
) -> BaselineComparison:
    """Plan the best attack under both analyses for the same system."""
    return BaselineComparison(
        replicated=plan_best_attack(params, k=k, k_prime=k_prime),
        unreplicated=baseline_socc11.plan_best_attack(params),
    )

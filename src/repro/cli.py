"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``fig3a`` / ``fig3b`` / ``fig4`` / ``fig5a`` / ``fig5b``
    Regenerate the corresponding figure's data as an ASCII table.
    ``--full`` uses the paper's 200-trial configuration; the default is
    a fast reduced-trial run with the same qualitative shape.
``provision``
    Cache-provisioning report for an ``(n, m, d, R)`` system.
``plan``
    The adversary's optimal plan against given public parameters, with
    the unreplicated SoCC'11 baseline for contrast.
``calibrate``
    Empirically measure the folded constant ``k`` for given ``(n, d)``.
``scenario``
    Declarative scenario specs (``run`` / ``list`` / ``validate`` /
    ``sweep``): typed YAML/JSON specs resolved through the component
    registry, campaign grids with manifest-tracked provenance and a
    comparative HTML report.  See docs/SCENARIOS.md.
``replay``
    Event-driven replay of an attack (or benign) stream with the online
    monitor attached: sliding-window telemetry, the streaming gain
    estimate against the Theorem-2 bound, alerts, and optional JSONL
    event-log / HTML dashboard outputs.  ``--attribution TRACE`` skips
    the simulation and recomputes suspect rankings offline from an
    exported trace file (plus ``--events-log`` for the run summaries).
``forensics``
    Offline attack forensics over an exported trace JSONL: the ranked
    suspects tables, the per-layer causal path breakdown and the
    alert-aligned traced-request timeline (``--html`` writes the
    standalone dashboard).  See docs/OBSERVABILITY.md.

Monitoring flags (figures, ``all`` and ``replay``): ``--monitor``
attaches the online :class:`~repro.obs.LoadMonitor`, ``--window`` sets
the simulated-time window width, ``--events-out`` writes the structured
JSONL event log, and ``--alerts`` prints alert records live as rules
fire.

Tracing flags (``replay`` and ``tree``): ``--trace RATE`` attaches the
:class:`~repro.obs.FlightRecorder` at that sampling rate (hash-based,
RNG-free — results stay byte-identical to untraced runs),
``--trace-out`` exports the trace JSONL, ``--forensics-out`` writes the
forensic HTML dashboard.

Chaos flags (same commands): ``--chaos`` enables fault injection
(``--failure-rate`` crashes/s per node, ``--mttr`` mean repair time,
``--retry`` front-end failover attempts); ``--chaos-schedule PATH``
replays an explicit JSON failure schedule instead of synthesising one
per trial.  See docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .adversary.planner import compare_with_baseline
from .ballsbins.occupancy import calibrate_k_prime
from .core.bounds import fold_constant_k, loglog_over_logd
from .core.notation import SystemParameters
from .core.provisioning import recommend
from .experiments import (
    PAPER,
    run_fig3a,
    run_fig3b,
    run_fig4,
    run_fig5a,
    run_fig5b,
)

__all__ = ["main", "build_parser"]

_QUICK_TRIALS = 25

_FIGURES = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
}


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a JSON metrics + phase-span snapshot to PATH "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--metrics-prom",
        type=str,
        default=None,
        metavar="PATH",
        help="write a Prometheus text-format metrics snapshot to PATH",
    )


def _add_monitor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="attach the online attack monitor (windows, streaming gain "
        "vs the Theorem-2 bound, alerts; see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="monitor window width on the simulated clock (default 0.1s; "
        "event-driven replay only — trial campaigns use one window per trial)",
    )
    parser.add_argument(
        "--events-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the monitor's structured JSONL event log to PATH "
        "(implies --monitor)",
    )
    parser.add_argument(
        "--alerts",
        action="store_true",
        help="print alert records live as monitor rules fire (implies --monitor)",
    )


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=float,
        default=None,
        metavar="RATE",
        help="attach the flight recorder, tracing RATE of requests "
        "(hash-sampled without consuming RNG: results are byte-identical "
        "to an untraced run; see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the causal trace JSONL to PATH (implies --trace 1.0 "
        "unless a rate is given)",
    )
    parser.add_argument(
        "--forensics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the forensic HTML dashboard (suspects, causal paths, "
        "alert-aligned timeline) to PATH (implies --trace)",
    )


def _trace_sink(args: argparse.Namespace, seed=None):
    """Build the FlightRecorder if any trace flag was given."""
    wanted = (
        getattr(args, "trace", None) is not None
        or getattr(args, "trace_out", None)
        or getattr(args, "forensics_out", None)
    )
    if not wanted:
        return None
    from .obs import FlightRecorder, TraceConfig

    sample = 1.0 if args.trace is None else args.trace
    window = getattr(args, "window", None)
    config = (
        TraceConfig(sample=sample)
        if window is None
        else TraceConfig(sample=sample, window=window)
    )
    return FlightRecorder(config, seed=seed)


def _write_trace(args: argparse.Namespace, recorder, monitor=None) -> None:
    if recorder is None:
        return
    from .obs import render_forensics_text, write_forensics_html

    print()
    print(render_forensics_text(recorder))
    if args.trace_out:
        recorder.write(args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.forensics_out:
        write_forensics_html(recorder, args.forensics_out, monitor=monitor)
        print(f"forensics dashboard written to {args.forensics_out}")


def _add_chaos_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="inject node failures: crash/repair processes per node, "
        "front-end retry/failover, degraded-bound tracking "
        "(see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--failure-rate",
        type=float,
        default=0.02,
        metavar="RATE",
        help="per-node crash intensity in crashes per simulated second "
        "(default 0.02; implies --chaos semantics only when --chaos or "
        "--chaos-schedule is given)",
    )
    parser.add_argument(
        "--mttr",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="mean time to repair a crashed node (default 0.25s)",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=3,
        metavar="N",
        help="front-end dispatch attempts per request before a key is "
        "declared unavailable (default 3; event-driven replay only)",
    )
    parser.add_argument(
        "--chaos-schedule",
        type=str,
        default=None,
        metavar="PATH",
        help="replay an explicit JSON failure schedule (implies --chaos; "
        "overrides --failure-rate/--mttr)",
    )


def _chaos_config(args: argparse.Namespace):
    """Build the ChaosConfig if any chaos flag was given."""
    if not (getattr(args, "chaos", False) or getattr(args, "chaos_schedule", None)):
        return None
    from .chaos import ChaosConfig, FailureSchedule, RetryPolicy

    schedule = None
    if args.chaos_schedule:
        schedule = FailureSchedule.from_json(args.chaos_schedule)
    return ChaosConfig(
        schedule=schedule,
        failure_rate=args.failure_rate,
        mttr=args.mttr,
        retry=RetryPolicy(max_attempts=args.retry),
    )


def _monitor_sink(args: argparse.Namespace, **config_kwargs):
    """Build the LoadMonitor if any monitor flag was given."""
    wanted = (
        getattr(args, "monitor", False)
        or getattr(args, "events_out", None)
        or getattr(args, "alerts", False)
    )
    if not wanted:
        return None
    from .obs import LoadMonitor, MonitorConfig

    config = MonitorConfig(window=args.window, **config_kwargs)
    on_alert = None
    if args.alerts:
        def on_alert(alert):
            print(
                f"ALERT [{alert['rule']}] trial={alert.get('trial')} "
                f"window={alert.get('window')} value={alert.get('value'):.4g} "
                f"threshold={alert.get('threshold'):.4g}"
            )
    return LoadMonitor(config, on_alert=on_alert)


def _write_monitor(args: argparse.Namespace, monitor) -> None:
    if monitor is None:
        return
    from .obs import render_text

    print()
    print(render_text(monitor))
    if args.events_out:
        monitor.events.write(args.events_out)
        print(f"event log written to {args.events_out}")


def _metrics_sinks(args: argparse.Namespace):
    """Build (metrics, tracer) sinks if any metrics flag was given."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "metrics_prom", None)):
        return None, None
    from .obs import MetricsRegistry, Tracer

    return MetricsRegistry(), Tracer()


def _write_metrics(args: argparse.Namespace, metrics, tracer) -> None:
    if metrics is None:
        return
    from .obs import to_prometheus, write_json

    if args.metrics_out:
        write_json(args.metrics_out, metrics, tracer=tracer)
        print(f"metrics written to {args.metrics_out}")
    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus(metrics, tracer=tracer))
        print(f"prometheus metrics written to {args.metrics_prom}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Secure Cache Provision: Provable DDoS Prevention for "
            "Randomly Partitioned Services with Replication' (ICDCS-W 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in _FIGURES:
        p = sub.add_parser(fig, help=f"regenerate {fig} of the paper")
        p.add_argument(
            "--full",
            action="store_true",
            help=f"paper-scale run ({PAPER.trials} trials); default {_QUICK_TRIALS}",
        )
        p.add_argument("--trials", type=int, default=None, help="override trial count")
        p.add_argument("--seed", type=int, default=None, help="root RNG seed")
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="trial-execution processes (0 = all CPUs); results are "
            "identical for any value (see docs/PERFORMANCE.md)",
        )
        p.add_argument(
            "--plot", action="store_true", help="append an ASCII plot of the series"
        )
        _add_metrics_flags(p)
        _add_monitor_flags(p)
        _add_chaos_flags(p)

    prov = sub.add_parser("provision", help="cache-provisioning report")
    prov.add_argument("--nodes", "-n", type=int, required=True, help="back-end nodes n")
    prov.add_argument("--items", "-m", type=int, required=True, help="stored items m")
    prov.add_argument("--replication", "-d", type=int, default=3, help="replication factor d")
    prov.add_argument("--cache", "-c", type=int, default=0, help="current cache size c")
    prov.add_argument("--rate", "-R", type=float, default=1e5, help="offered rate R (qps)")
    prov.add_argument("--k", type=float, default=None, help="folded constant k (default: theory + k')")
    prov.add_argument("--k-prime", type=float, default=1.0, help="Theta(1) remainder k'")

    plan = sub.add_parser("plan", help="adversary's optimal plan vs baseline")
    plan.add_argument("--nodes", "-n", type=int, required=True)
    plan.add_argument("--items", "-m", type=int, required=True)
    plan.add_argument("--replication", "-d", type=int, default=3)
    plan.add_argument("--cache", "-c", type=int, required=True)
    plan.add_argument("--rate", "-R", type=float, default=1e5)
    plan.add_argument("--k", type=float, default=PAPER.k)

    campaign = sub.add_parser("all", help="run every figure and emit one report")
    campaign.add_argument("--full", action="store_true", help="paper-scale (200 trials)")
    campaign.add_argument("--trials", type=int, default=None)
    campaign.add_argument("--seed", type=int, default=None)
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="trial-execution processes (0 = all CPUs)",
    )
    campaign.add_argument(
        "--output", type=str, default=None, help="also write the report to this file"
    )
    _add_metrics_flags(campaign)
    _add_monitor_flags(campaign)
    _add_chaos_flags(campaign)

    replay = sub.add_parser(
        "replay",
        help="event-driven replay of an attack with the online monitor",
    )
    replay.add_argument("--nodes", "-n", type=int, default=200, help="back-end nodes n")
    replay.add_argument("--items", "-m", type=int, default=50_000, help="stored items m")
    replay.add_argument("--cache", "-c", type=int, default=60, help="cache size c")
    replay.add_argument("--replication", "-d", type=int, default=3, help="replication d")
    replay.add_argument("--rate", "-R", type=float, default=50_000.0, help="offered rate R (qps)")
    replay.add_argument(
        "--pattern",
        choices=("adversarial", "uniform", "zipf"),
        default="adversarial",
        help="access pattern to replay (default: the paper's optimal adversary)",
    )
    replay.add_argument("--queries", type=int, default=50_000, help="queries per trial")
    replay.add_argument("--trials", type=int, default=1, help="independent replays")
    replay.add_argument("--seed", type=int, default=None, help="root RNG seed")
    replay.add_argument(
        "--workers", type=int, default=1,
        help="trial-execution processes (0 = all CPUs); monitor output is "
        "identical for any value",
    )
    replay.add_argument(
        "--k-prime", type=float, default=None,
        help="Theta(1) remainder k' for the Theorem-2 bound (default: "
        "substrate-calibrated)",
    )
    replay.add_argument(
        "--dashboard", type=str, default=None, metavar="PATH",
        help="write a standalone HTML dashboard (gain vs bound chart) to PATH",
    )
    replay.add_argument(
        "--attribution", type=str, default=None, metavar="TRACE",
        help="offline mode: skip the simulation, recompute suspect "
        "rankings from this exported trace JSONL (pair with "
        "--events-log to align windows and check against the live "
        "run summaries)",
    )
    replay.add_argument(
        "--events-log", type=str, default=None, metavar="PATH",
        help="with --attribution: the JSONL event log from the same run "
        "(its run-summary records carry durations and live suspects)",
    )
    _add_metrics_flags(replay)
    _add_monitor_flags(replay)
    _add_chaos_flags(replay)
    _add_trace_flags(replay)

    tree = sub.add_parser(
        "tree",
        help="cache-hierarchy (DistCache) comparison: shard-targeting "
        "attack vs flat and tree defenses",
    )
    tree.add_argument("--nodes", "-n", type=int, default=50, help="back-end nodes n")
    tree.add_argument("--items", "-m", type=int, default=5_000, help="stored items m")
    tree.add_argument("--cache", "-c", type=int, default=40, help="per-cache capacity c")
    tree.add_argument("--replication", "-d", type=int, default=3, help="replication d")
    tree.add_argument("--rate", "-R", type=float, default=20_000.0, help="offered rate R (qps)")
    tree.add_argument("--edges", type=int, default=2, help="edge-layer cache shards")
    tree.add_argument(
        "--aggregates", type=int, default=1, help="aggregate-layer cache shards"
    )
    tree.add_argument(
        "--policy", type=str, default="lru",
        help="replacement policy for every cache shard (registry name)",
    )
    tree.add_argument(
        "--layer-selection",
        choices=("cascade", "two-choice"),
        default="two-choice",
        help="inter-layer routing (default: DistCache's two-choice)",
    )
    tree.add_argument(
        "--x", type=int, default=None,
        help="attack width: keys flooded onto one edge shard (default c + 1)",
    )
    tree.add_argument(
        "--target", type=int, default=0, help="edge shard the adversary floods"
    )
    tree.add_argument("--queries", type=int, default=20_000, help="queries per trial")
    tree.add_argument("--trials", type=int, default=2, help="independent replays")
    tree.add_argument("--seed", type=int, default=None, help="root RNG seed")
    tree.add_argument(
        "--workers", type=int, default=1,
        help="trial-execution processes (0 = all CPUs); results are "
        "identical for any value",
    )
    tree.add_argument(
        "--k-prime", type=float, default=None,
        help="Theta(1) remainder k' for both bounds (default: "
        "substrate-calibrated)",
    )
    _add_metrics_flags(tree)
    _add_monitor_flags(tree)
    _add_trace_flags(tree)

    forensics = sub.add_parser(
        "forensics",
        help="offline attack forensics from an exported trace JSONL "
        "(suspects, causal paths, alert-aligned timeline)",
    )
    forensics.add_argument(
        "trace", type=str, help="trace JSONL written by --trace-out"
    )
    forensics.add_argument(
        "--events-log", type=str, default=None, metavar="PATH",
        help="JSONL event log from the same run: aligns final attribution "
        "windows on the run durations and checks the recomputed suspects "
        "against the live run-summary blocks",
    )
    forensics.add_argument(
        "--html", type=str, default=None, metavar="PATH",
        help="write the standalone forensic dashboard HTML to PATH",
    )
    forensics.add_argument(
        "--last", type=int, default=8, metavar="N",
        help="rows per suspects table / alerts shown (default 8)",
    )

    cal = sub.add_parser("calibrate", help="measure the folded constant k empirically")
    cal.add_argument("--nodes", "-n", type=int, default=PAPER.n)
    cal.add_argument("--replication", "-d", type=int, default=PAPER.d)
    cal.add_argument("--balls", type=int, default=50_000, help="balls per trial")
    cal.add_argument("--trials", type=int, default=30)
    cal.add_argument("--seed", type=int, default=None)

    perf = sub.add_parser(
        "perf",
        help="performance observability: bench harness, history, regression gate",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_run = perf_sub.add_parser(
        "run", help="run registered benchmarks and append manifests to history"
    )
    perf_run.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (same as REPRO_BENCH_SMOKE=1); artifacts "
        "land under *_smoke names",
    )
    perf_run.add_argument(
        "--only", nargs="+", default=None, metavar="BENCH",
        help="run only these benches (default: every registered bench)",
    )
    perf_run.add_argument(
        "--list", action="store_true", help="list registered benches and exit"
    )
    perf_run.add_argument(
        "--history", type=str, default=None, metavar="PATH",
        help="history JSONL file (default: benchmarks/results/history.jsonl)",
    )
    perf_run.add_argument(
        "--trajectory-dir", type=str, default=None, metavar="DIR",
        help="where BENCH_<name>.json trajectories go (default: repo root)",
    )
    perf_run.add_argument(
        "--no-history", action="store_true",
        help="run and emit artifacts without touching history/trajectories",
    )

    perf_compare = perf_sub.add_parser(
        "compare", help="regression verdicts over the perf history"
    )
    perf_compare.add_argument(
        "--history", type=str, default=None, metavar="PATH",
        help="history JSONL file (default: benchmarks/results/history.jsonl)",
    )
    perf_compare.add_argument(
        "--baseline", type=str, default=None, metavar="PATH",
        help="baseline history file (e.g. the committed one); without it "
        "the baseline is the preceding runs in --history",
    )
    perf_compare.add_argument(
        "--k", type=int, default=None,
        help="baseline window: median of up to k runs (default 5)",
    )
    perf_compare.add_argument(
        "--tolerance", type=float, default=None,
        help="relative slowdown threshold (default 0.15 = 15%%)",
    )
    perf_compare.add_argument(
        "--noise-floor", type=float, default=None,
        help="absolute slowdown threshold in seconds (default 0.05)",
    )
    perf_compare.add_argument(
        "--metric", type=str, default="engine_seconds",
        choices=("engine_seconds", "export_seconds", "wall_seconds"),
        help="timing field to compare (default: engine_seconds)",
    )
    perf_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero on regressions (default: warn only; schema "
        "errors always fail)",
    )

    perf_report = perf_sub.add_parser(
        "report", help="render the perf history as a standalone HTML page"
    )
    perf_report.add_argument(
        "--history", type=str, default=None, metavar="PATH",
        help="history JSONL file (default: benchmarks/results/history.jsonl)",
    )
    perf_report.add_argument(
        "--out", type=str, default="perf_report.html", metavar="PATH",
        help="output HTML path (default: perf_report.html)",
    )

    scen = sub.add_parser(
        "scenario",
        help="declarative scenario specs: run, validate, sweep campaigns "
        "(see docs/SCENARIOS.md)",
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    scen_run = scen_sub.add_parser(
        "run", help="run one scenario spec (YAML or JSON) and print its stats"
    )
    scen_run.add_argument("spec", type=str, help="scenario spec file")
    scen_run.add_argument(
        "--workers", type=int, default=None,
        help="trial-execution processes (0 = all CPUs); overrides the "
        "spec's 'workers' field; results are identical for any value",
    )
    scen_run.add_argument(
        "--json", action="store_true",
        help="print the stats as a JSON object instead of key: value lines",
    )
    scen_run.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write the flight recorder's trace JSONL to PATH (needs a "
        "'trace:' section in the spec)",
    )
    scen_run.add_argument(
        "--forensics-out", type=str, default=None, metavar="PATH",
        help="write the forensic HTML dashboard to PATH (needs a "
        "'trace:' section in the spec)",
    )

    scen_list = scen_sub.add_parser(
        "list", help="list every registered component by namespace"
    )
    scen_list.add_argument(
        "--namespace", type=str, default=None,
        help="restrict to one registry namespace",
    )
    scen_list.add_argument(
        "--examples", action="store_true",
        help="one line per component with its minimal example params "
        "(materialised against a small reference system)",
    )

    scen_validate = scen_sub.add_parser(
        "validate", help="validate spec files without running anything"
    )
    scen_validate.add_argument(
        "specs", nargs="+", type=str, metavar="SPEC", help="spec files to check"
    )

    scen_sweep = scen_sub.add_parser(
        "sweep", help="expand a campaign spec's grid and run every scenario"
    )
    scen_sweep.add_argument("spec", type=str, help="campaign spec file")
    scen_sweep.add_argument(
        "--workers", type=int, default=None,
        help="trial-execution processes per scenario (0 = all CPUs)",
    )
    scen_sweep.add_argument(
        "--out", type=str, default=None, metavar="DIR",
        help="write the schema-versioned manifest and the comparative "
        "HTML report into DIR",
    )

    return parser


def _run_figure(args: argparse.Namespace) -> int:
    trials = args.trials
    if trials is None:
        trials = PAPER.trials if args.full else _QUICK_TRIALS
    metrics, tracer = _metrics_sinks(args)
    monitor = _monitor_sink(args)
    chaos = _chaos_config(args)
    if chaos is not None:
        print(chaos.describe())
    result = _FIGURES[args.command](
        trials=trials, seed=args.seed, workers=args.workers,
        metrics=metrics, tracer=tracer, monitor=monitor, chaos=chaos,
    )
    print(result.render())
    _write_metrics(args, metrics, tracer)
    _write_monitor(args, monitor)
    if args.plot:
        from .experiments.plot import ascii_plot

        columns = dict(result.columns)
        x_name, x_values = next(iter(columns.items()))
        numeric = {
            name: values
            for name, values in columns.items()
            if name != x_name and values and isinstance(values[0], (int, float))
            and not isinstance(values[0], bool)
        }
        print()
        print(
            ascii_plot(
                x_values,
                numeric,
                logx=min(x_values) > 0 and max(x_values) / max(min(x_values), 1) > 50,
                title=f"{result.name}: {x_name} vs {', '.join(numeric)}",
                hline=1.0 if any("gain" in s or "sim" in s for s in numeric) else None,
            )
        )
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    from .experiments.campaign import run_campaign

    trials = args.trials
    if trials is None:
        trials = PAPER.trials if args.full else _QUICK_TRIALS
    metrics, tracer = _metrics_sinks(args)
    monitor = _monitor_sink(args)
    chaos = _chaos_config(args)
    if chaos is not None:
        print(chaos.describe())
    campaign = run_campaign(
        trials=trials, seed=args.seed, progress=print, workers=args.workers,
        metrics=metrics, tracer=tracer, monitor=monitor, chaos=chaos,
    )
    report = campaign.render()
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.output}")
    _write_metrics(args, metrics, tracer)
    _write_monitor(args, monitor)
    return 0


def _read_run_summaries(events_path: str):
    """Per-trial ``(durations, live_suspects)`` from an event log."""
    import json

    durations, live = {}, {}
    for line in Path(events_path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") != "run-summary":
            continue
        trial = record.get("trial")
        durations[trial] = record.get("duration")
        if "suspects" in record:
            live[trial] = record["suspects"]
    return durations, live


def _offline_attribution(
    trace_path: str,
    events_path: Optional[str],
    html_path: Optional[str],
    last: int = 8,
) -> int:
    """Shared ``forensics`` / ``replay --attribution`` implementation."""
    from .obs import FlightRecorder
    from .obs.forensics import render_forensics_text, write_forensics_html

    durations, live = ({}, {})
    if events_path:
        durations, live = _read_run_summaries(events_path)
    recorder = FlightRecorder.from_export(
        trace_path, durations=durations or None
    )
    print(render_forensics_text(recorder, last=last))
    if live:
        print()
        if recorder.evicted:
            print(
                f"note: {recorder.evicted} record(s) were evicted from the "
                "ring; recomputed rankings cover the retained tail only"
            )
        for summary in recorder.summaries:
            trial = summary["trial"]
            if trial not in live:
                continue
            verdict = (
                "MATCH" if summary["suspects"] == live[trial] else "DIFFER"
            )
            print(
                f"trial {trial}: recomputed suspects {verdict} the live "
                "run-summary block"
            )
    if html_path:
        write_forensics_html(recorder, html_path)
        print(f"forensics dashboard written to {html_path}")
    return 0


def _run_forensics(args: argparse.Namespace) -> int:
    return _offline_attribution(
        args.trace, args.events_log, args.html, last=args.last
    )


def _run_replay(args: argparse.Namespace) -> int:
    from .adversary.strategies import OptimalAdversary, UniformFlood, ZipfClient
    from .core.bounds import DEFAULT_CALIBRATED_K_PRIME
    from .obs import LoadMonitor, MonitorConfig
    from .sim.batch import run_event_campaign

    if args.attribution:
        return _offline_attribution(
            args.attribution, args.events_log, args.forensics_out
        )
    params = SystemParameters(
        n=args.nodes, m=args.items, c=args.cache, d=args.replication,
        rate=args.rate,
    )
    k_prime = DEFAULT_CALIBRATED_K_PRIME if args.k_prime is None else args.k_prime
    x = None
    if args.pattern == "adversarial":
        adversary = OptimalAdversary(params, k_prime=k_prime)
        distribution = adversary.distribution()
        x = adversary.x
    elif args.pattern == "uniform":
        distribution = UniformFlood(params).distribution()
        x = params.m
    else:
        distribution = ZipfClient(params, s=PAPER.zipf_s).distribution()
    metrics, tracer = _metrics_sinks(args)
    # The replay always monitors (that is its point); flags only add
    # outputs on top.
    config = MonitorConfig.from_params(params, x=x, window=args.window,
                                       k_prime=k_prime)
    base = _monitor_sink(args, **{
        k: getattr(config, k)
        for k in ("n", "rate", "c", "d", "x", "k_prime")
    })
    monitor = base if base is not None else LoadMonitor(config)
    chaos = _chaos_config(args)
    if chaos is not None:
        print(chaos.describe())
    recorder = _trace_sink(args, seed=args.seed)
    campaign = run_event_campaign(
        params,
        distribution,
        trials=args.trials,
        n_queries=args.queries,
        seed=args.seed,
        workers=args.workers,
        metrics=metrics,
        tracer=tracer,
        monitor=monitor,
        chaos=chaos,
        trace=recorder,
    )
    print(campaign.describe())
    _write_metrics(args, metrics, tracer)
    _write_monitor(args, monitor)
    _write_trace(args, recorder, monitor=monitor)
    if args.dashboard:
        from .obs import write_html

        write_html(monitor, args.dashboard,
                   title=f"replay: {args.pattern} attack on n={params.n}")
        print(f"dashboard written to {args.dashboard}")
    return 0


def _flat_cache_factory(policy: str, capacity: int):
    """Top-level (picklable) flat-cache factory for parallel campaigns."""
    from .cache import make_cache

    return make_cache(policy, capacity)


def _tree_cache_factory(ctx, layers, selection: str):
    """Top-level (picklable) cache-tree factory for parallel campaigns."""
    from .cache.tree import _build_tree

    return _build_tree(ctx, layers=layers, selection=selection)


def _run_tree(args: argparse.Namespace) -> int:
    import functools

    from .adversary.strategies import ShardTargetingAdversary
    from .core.bounds import (
        DEFAULT_CALIBRATED_K_PRIME,
        normalized_max_load_bound,
    )
    from .obs import LoadMonitor, MonitorConfig
    from .scenario.build import BuildContext
    from .sim.batch import run_event_campaign

    params = SystemParameters(
        n=args.nodes, m=args.items, c=args.cache, d=args.replication,
        rate=args.rate,
    )
    k_prime = DEFAULT_CALIBRATED_K_PRIME if args.k_prime is None else args.k_prime
    seed = 0 if args.seed is None else args.seed
    x = args.cache + 1 if args.x is None else args.x
    adversary = ShardTargetingAdversary(
        params, x=x, shards=args.edges, target=args.target, seed=seed,
    )
    x = adversary.x  # clamped to the target shard's key count
    ctx = BuildContext(params=params, seed=seed)
    layers = [
        {"shards": args.edges, "cache": args.policy},
        {"shards": args.aggregates, "cache": args.policy},
    ]
    defenses = [
        ("flat", functools.partial(_flat_cache_factory, args.policy, args.cache)),
        (
            f"tree[{args.edges}x{args.aggregates} {args.layer_selection}]",
            functools.partial(_tree_cache_factory, ctx, layers,
                              args.layer_selection),
        ),
    ]
    metrics, tracer = _metrics_sinks(args)
    theorem2 = normalized_max_load_bound(params, x, k_prime=k_prime)
    print(
        f"shard-flood: x={x} keys on edge shard {args.target}/{args.edges} "
        f"(n={params.n}, m={params.m}, c={params.c}, d={params.d})"
    )
    print(f"Theorem-2 bound at x={x}: {theorem2:.3f}")
    last_monitor = None
    last_recorder = None
    for name, cache_factory in defenses:
        config = MonitorConfig.from_params(
            params, x=x, window=args.window, k_prime=k_prime,
        )
        base = _monitor_sink(args, **{
            k: getattr(config, k)
            for k in ("n", "rate", "c", "d", "x", "k_prime")
        })
        monitor = base if base is not None else LoadMonitor(config)
        # Fresh recorder per defense: the tree run's trace (the last
        # one) is the export — it carries the (layer, shard) hit paths.
        recorder = _trace_sink(args, seed=seed)
        campaign = run_event_campaign(
            params,
            adversary.distribution(),
            trials=args.trials,
            n_queries=args.queries,
            seed=args.seed,
            cache_factory=cache_factory,
            workers=args.workers,
            metrics=metrics,
            tracer=tracer,
            monitor=monitor,
            trace=recorder,
        )
        print(f"\n== defense: {name} ==")
        print(campaign.describe())
        layer_rows = [
            row
            for summary in monitor.summaries
            for row in summary.get("layers", ())
        ]
        if layer_rows:
            print("per-layer shard load vs the DistCache two-choice bound:")
            for row in layer_rows:
                status = "ok" if row["within_bound"] else "VIOLATED"
                print(
                    f"  trial layer {row['layer']} ({row['shards']} shard(s), "
                    f"{row['keys']} keys): busiest shard served "
                    f"{row['shard_max']}/{row['hits']} hits, "
                    f"bound {row['distcache_bound']:.1f} [{status}]"
                )
        last_monitor = monitor
        last_recorder = recorder
    _write_metrics(args, metrics, tracer)
    _write_monitor(args, last_monitor)
    _write_trace(args, last_recorder, monitor=last_monitor)
    return 0


def _run_provision(args: argparse.Namespace) -> int:
    params = SystemParameters(
        n=args.nodes, m=args.items, c=args.cache, d=args.replication, rate=args.rate
    )
    report = recommend(params, k=args.k, k_prime=args.k_prime)
    print(report.describe())
    return 0


def _run_plan(args: argparse.Namespace) -> int:
    params = SystemParameters(
        n=args.nodes, m=args.items, c=args.cache, d=args.replication, rate=args.rate
    )
    comparison = compare_with_baseline(params, k=args.k)
    print(comparison.describe())
    return 0


def _run_calibrate(args: argparse.Namespace) -> int:
    k_prime = calibrate_k_prime(
        balls=args.balls,
        bins=args.nodes,
        d=args.replication,
        trials=args.trials,
        seed=args.seed,
    )
    theory = loglog_over_logd(args.nodes, args.replication)
    folded = fold_constant_k(args.nodes, args.replication, k_prime)
    print(
        f"n={args.nodes} d={args.replication} balls={args.balls} trials={args.trials}\n"
        f"log log n / log d = {theory:.4f}\n"
        f"measured k' (worst case over trials) = {k_prime:.4f}\n"
        f"folded k = {folded:.4f}  (paper's figures use k = {PAPER.k})"
    )
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf package pulls in the bench harness and
    # is only needed for this subcommand.
    from .exceptions import ReproError
    from .perf import compare as perf_compare
    from .perf import harness, history
    from .perf.report import write_report
    from .perf.schema import PerfSchemaError

    history_path = Path(args.history) if getattr(args, "history", None) else None

    if args.perf_command == "run":
        harness.discover()
        if args.list:
            for name in harness.registered():
                print(name)
            return 0
        trajectory_dir = (
            Path(args.trajectory_dir) if args.trajectory_dir else None
        )
        try:
            results = harness.run_suite(
                names=args.only,
                smoke=args.smoke,
                history_path=history_path,
                trajectory_dir=trajectory_dir,
                update_history=not args.no_history,
            )
        except ReproError as exc:
            print(f"perf run: {exc}", file=sys.stderr)
            return 1
        failed = [r.spec.name for r in results if not r.ok]
        mode = "smoke" if args.smoke else "full"
        print(
            f"perf run: {len(results)} bench(es) [{mode}]"
            + (f", {len(failed)} check failure(s): {', '.join(failed)}" if failed else "")
        )
        # Check failures are recorded in the manifests (ok=false) and
        # surfaced by `perf compare`/the report; the run itself succeeded.
        return 0

    if args.perf_command == "compare":
        try:
            manifests = history.load_history(history_path)
            baseline = (
                history.load_history(Path(args.baseline))
                if args.baseline
                else None
            )
            verdicts = perf_compare.compare_history(
                manifests,
                baseline_manifests=baseline,
                k=args.k if args.k is not None else perf_compare.DEFAULT_K,
                tolerance=(
                    args.tolerance
                    if args.tolerance is not None
                    else perf_compare.DEFAULT_TOLERANCE
                ),
                noise_floor=(
                    args.noise_floor
                    if args.noise_floor is not None
                    else perf_compare.DEFAULT_NOISE_FLOOR
                ),
                metric=args.metric,
            )
        except PerfSchemaError as exc:
            print(f"perf compare: schema error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"perf compare: {exc}", file=sys.stderr)
            return 2
        print(perf_compare.render_verdicts(verdicts))
        regressions = [v for v in verdicts if v.is_regression]
        if regressions and args.fail_on_regression:
            return 1
        return 0

    if args.perf_command == "report":
        try:
            manifests = history.load_history(history_path)
        except PerfSchemaError as exc:
            print(f"perf report: schema error: {exc}", file=sys.stderr)
            return 2
        out = Path(args.out)
        write_report(manifests, out)
        print(f"perf report: wrote {out} ({len(manifests)} run(s))")
        return 0

    raise AssertionError(
        f"unhandled perf command {args.perf_command!r}"
    )  # pragma: no cover


def _run_scenario(args: argparse.Namespace) -> int:
    # Imported lazily: the scenario package only loads for this
    # subcommand (mirrors the perf subcommand's pattern).
    from .exceptions import ReproError, ScenarioValidationError
    from .scenario.build import check_spec
    from .scenario.campaign import run_campaign as run_scenario_campaign
    from .scenario.campaign import run_scenario
    from .scenario.registry import REGISTRY, discover
    from .scenario.spec import CampaignSpec, ScenarioSpec, load_spec

    if args.scenario_command == "list":
        discover()
        namespaces = (
            (args.namespace,) if args.namespace else REGISTRY.namespaces()
        )
        ctx = None
        if args.examples:
            from .scenario.build import BuildContext

            ctx = BuildContext(
                params=SystemParameters(n=20, m=500, c=10, d=3, rate=2000.0)
            )
        for namespace in namespaces:
            try:
                entries = REGISTRY.entries(namespace)
            except ScenarioValidationError as exc:
                print(f"scenario list: {exc}", file=sys.stderr)
                return 2
            if ctx is not None:
                print(f"{namespace}:")
                for entry in entries:
                    params = (
                        {} if namespace == "engine" else entry.example_params(ctx)
                    )
                    suffix = f"  {params}" if params else ""
                    print(f"  {entry.name}{suffix}")
            else:
                print(
                    f"{namespace}: "
                    + ", ".join(entry.name for entry in entries)
                )
        return 0

    if args.scenario_command == "validate":
        status = 0
        for path in args.specs:
            try:
                spec = load_spec(path)
                check_spec(spec)
            except ScenarioValidationError as exc:
                print(f"scenario validate: {path}: {exc}", file=sys.stderr)
                status = 2
                continue
            kind = "campaign" if isinstance(spec, CampaignSpec) else "scenario"
            extra = (
                f" ({len(spec.expand())} scenarios)"
                if isinstance(spec, CampaignSpec)
                else ""
            )
            print(f"{path}: OK — {kind} {spec.name!r}{extra}")
        return status

    if args.scenario_command == "run":
        try:
            spec = load_spec(args.spec)
            if not isinstance(spec, ScenarioSpec):
                raise ScenarioValidationError(
                    f"{args.spec} is a campaign spec; use 'scenario sweep'",
                    path="campaign",
                )
            outcome = run_scenario(spec, workers=args.workers)
        except ScenarioValidationError as exc:
            print(f"scenario run: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"scenario run: {exc}", file=sys.stderr)
            return 1
        if args.json:
            import json

            print(json.dumps(outcome.stats, indent=2, sort_keys=True))
        else:
            print(f"scenario {spec.name!r} [{spec.engine.kind}]")
            for key, value in outcome.stats.items():
                print(f"  {key}: {value}")
        if outcome.trace is not None:
            if args.trace_out:
                outcome.trace.write(args.trace_out)
                print(f"trace written to {args.trace_out}")
            if args.forensics_out:
                from .obs.forensics import write_forensics_html

                write_forensics_html(outcome.trace, args.forensics_out)
                print(f"forensics dashboard written to {args.forensics_out}")
        elif args.trace_out or args.forensics_out:
            print(
                "scenario run: spec has no 'trace:' section; "
                "--trace-out/--forensics-out ignored",
                file=sys.stderr,
            )
        return 0

    if args.scenario_command == "sweep":
        try:
            campaign = load_spec(args.spec)
            if not isinstance(campaign, CampaignSpec):
                raise ScenarioValidationError(
                    f"{args.spec} is a scenario spec; use 'scenario run'",
                    path="scenario",
                )
            result = run_scenario_campaign(
                campaign,
                workers=args.workers,
                out_dir=Path(args.out) if args.out else None,
                progress=lambda i, total, spec: print(
                    f"[{i + 1}/{total}] {spec.name} [{spec.engine.kind}]"
                ),
            )
        except ScenarioValidationError as exc:
            print(f"scenario sweep: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"scenario sweep: {exc}", file=sys.stderr)
            return 1
        print(result.describe())
        if result.manifest_path is not None:
            print(f"manifest written to {result.manifest_path}")
        if result.report_path is not None:
            print(f"report written to {result.report_path}")
        return 0

    raise AssertionError(
        f"unhandled scenario command {args.scenario_command!r}"
    )  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command in _FIGURES:
        return _run_figure(args)
    if args.command == "all":
        return _run_campaign(args)
    if args.command == "provision":
        return _run_provision(args)
    if args.command == "plan":
        return _run_plan(args)
    if args.command == "calibrate":
        return _run_calibrate(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "tree":
        return _run_tree(args)
    if args.command == "forensics":
        return _run_forensics(args)
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "scenario":
        return _run_scenario(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro — full reproduction of *Secure Cache Provision: Provable DDoS
Prevention for Randomly Partitioned Services with Replication*
(Chu, Guan, Lui, Cai, Shi; IEEE ICDCS Workshops 2013).

The package is organised bottom-up:

- substrates: :mod:`repro.ballsbins` (allocation theory),
  :mod:`repro.cluster` (nodes, partitioning, replica selection),
  :mod:`repro.cache` (front-end policies), :mod:`repro.workload`
  (popularity laws and query streams), :mod:`repro.adversary`
  (attack strategies);
- the paper's contribution: :mod:`repro.core` (Theorem 1, the Eq. (10)
  bound, the case analysis and the O(n log log n / log d) cache-size
  result);
- engines and measurement: :mod:`repro.sim`, :mod:`repro.analysis`,
  :mod:`repro.obs` (deterministic metrics + phase tracing),
  :mod:`repro.chaos` (deterministic fault injection with failover and
  degraded-bound tracking);
- the evaluation: :mod:`repro.experiments` (one driver per figure) and
  the ``python -m repro`` CLI.

Quickstart
----------
>>> from repro import SystemParameters, recommend, plan_best_attack
>>> system = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
>>> plan_best_attack(system, k=1.2).effective   # c=200 is too small
True
>>> recommend(system, k=1.2).required_cache     # provision this instead
1201
"""

from .core import (
    AttackAssessment,
    AttackPlan,
    SystemParameters,
    attack_gain,
    classify_attack,
    critical_cache_size,
    expected_max_load_bound,
    is_provably_protected,
    normalized_max_load_bound,
    plan_best_attack,
    recommend,
    required_cache_size,
)
from .sim import (
    EventDrivenSimulator,
    MonteCarloSimulator,
    SimulationConfig,
    best_achievable_gain,
    simulate_distribution,
    simulate_uniform_attack,
)
from .obs import MetricsRegistry, Tracer
from .chaos import ChaosConfig, FailureSchedule, RetryPolicy
from .types import LoadReport, LoadVector
from .exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "SystemParameters",
    "AttackPlan",
    "AttackAssessment",
    "attack_gain",
    "classify_attack",
    "critical_cache_size",
    "required_cache_size",
    "is_provably_protected",
    "recommend",
    "plan_best_attack",
    "expected_max_load_bound",
    "normalized_max_load_bound",
    "SimulationConfig",
    "MonteCarloSimulator",
    "EventDrivenSimulator",
    "simulate_uniform_attack",
    "simulate_distribution",
    "best_achievable_gain",
    "MetricsRegistry",
    "Tracer",
    "ChaosConfig",
    "FailureSchedule",
    "RetryPolicy",
    "LoadVector",
    "LoadReport",
    "ReproError",
    "__version__",
]

"""Shared value types used across the ``repro`` package.

These are deliberately small, immutable, numpy-friendly containers: the
heavy lifting lives in the subsystem modules, while these types define
the vocabulary the subsystems use to talk to each other.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from .exceptions import ConfigurationError

__all__ = [
    "KeyId",
    "NodeId",
    "LoadVector",
    "LoadReport",
    "CacheDecision",
]

#: Keys are dense integer ids ``0 .. m-1``; the most popular key is 0 by
#: convention (the paper lists keys in decreasing popularity order).
KeyId = int

#: Back-end nodes are dense integer ids ``0 .. n-1``.
NodeId = int


@dataclass(frozen=True)
class LoadVector:
    """Per-node load (queries/second) observed in one trial.

    Wraps the raw numpy vector with the derived quantities every analysis
    in the paper needs: the maximum load, the even-split baseline ``R/n``
    and the normalized maximum (the *attack gain* numerator of
    Definition 1).
    """

    loads: np.ndarray
    total_rate: float

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=float)
        if loads.ndim != 1 or loads.size == 0:
            raise ConfigurationError("loads must be a non-empty 1-D vector")
        if np.any(loads < 0):
            raise ConfigurationError("loads must be non-negative")
        object.__setattr__(self, "loads", loads)
        if self.total_rate < 0:
            raise ConfigurationError("total_rate must be non-negative")

    @property
    def n_nodes(self) -> int:
        """Number of back-end nodes."""
        return int(self.loads.size)

    @property
    def max_load(self) -> float:
        """Load on the most loaded node, ``L_max``."""
        return float(self.loads.max())

    @property
    def backend_rate(self) -> float:
        """Aggregate rate that actually reached the back end."""
        return float(self.loads.sum())

    @property
    def even_split(self) -> float:
        """The best-case per-node load ``R/n`` used to normalize gains.

        Note the paper normalizes by the *offered* rate ``R`` spread over
        ``n`` nodes, not by the post-cache back-end rate: the cache
        absorbing traffic is part of the defense being measured.
        """
        return self.total_rate / self.n_nodes

    @property
    def normalized_max(self) -> float:
        """``L_max / (R/n)`` — the attack gain achieved in this trial."""
        if self.total_rate == 0:
            return 0.0
        return self.max_load / self.even_split

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile of per-node load (0 <= q <= 100)."""
        return float(np.percentile(self.loads, q))


@dataclass(frozen=True)
class LoadReport:
    """Aggregate of many trials of the same configuration.

    The paper reports, for each parameter point, the max over 200 trials of
    the per-trial maximum load; we retain the whole per-trial series so
    analyses can also look at means and confidence intervals.
    """

    normalized_max_per_trial: np.ndarray
    total_rate: float
    n_nodes: int
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.normalized_max_per_trial, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("need at least one trial")
        object.__setattr__(self, "normalized_max_per_trial", arr)

    @property
    def trials(self) -> int:
        """Number of independent trials aggregated."""
        return int(self.normalized_max_per_trial.size)

    @property
    def worst_case(self) -> float:
        """Max over trials of the normalized max load (paper's headline)."""
        return float(self.normalized_max_per_trial.max())

    @property
    def mean(self) -> float:
        """Mean over trials of the normalized max load."""
        return float(self.normalized_max_per_trial.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation over trials (0 for a single trial)."""
        if self.trials < 2:
            return 0.0
        return float(self.normalized_max_per_trial.std(ddof=1))

    @property
    def p99(self) -> float:
        """99th percentile over trials of the normalized max load."""
        return float(np.percentile(self.normalized_max_per_trial, 99))

    def describe(self) -> str:
        """Self-describing one-liner for campaign logs.

        Includes the root seed when the producing campaign recorded one
        in the metadata (``run_trials`` always does), so any logged
        report can be rerun exactly.
        """
        seed = self.metadata.get("seed")
        seed_part = f", seed={seed}" if seed is not None else ""
        return (
            f"LoadReport({self.trials} trials, n={self.n_nodes}, "
            f"normalized max: mean {self.mean:.3f}, p99 {self.p99:.3f}, "
            f"worst {self.worst_case:.3f}{seed_part})"
        )

    def __repr__(self) -> str:
        """The :meth:`describe` summary (dataclass field dump is noise)."""
        return self.describe()


@dataclass(frozen=True)
class CacheDecision:
    """Outcome of offering one request to the front-end cache."""

    key: KeyId
    hit: bool
    evicted: Optional[KeyId] = None


def frozen_copy(obj):
    """Return ``dataclasses.replace(obj)`` — a defensive shallow copy."""
    return dataclasses.replace(obj)

"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while still letting programming errors
(``TypeError`` and friends raised by misuse of the standard library)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A system or simulation parameter is out of its valid domain.

    Raised eagerly at construction time (e.g. a replication factor larger
    than the number of nodes, a cache larger than the key space) so that
    long simulations never fail halfway through on bad inputs.
    """


class DistributionError(ReproError):
    """A query distribution is malformed (negative mass, does not sum to 1,
    or violates a documented ordering requirement)."""


class SimulationError(ReproError):
    """A simulation could not be carried out with the given inputs."""


class CacheError(ReproError):
    """A front-end cache was misused (e.g. zero capacity insert)."""


class PartitionError(ReproError):
    """The partitioner could not produce a valid replica group."""


class AnalysisError(ReproError):
    """A post-hoc analysis step received data it cannot interpret."""


class ScenarioValidationError(ConfigurationError):
    """A scenario/campaign spec (or manifest) violates its declared schema.

    Carries the dotted ``path`` of the offending field (``"cache.kind"``,
    ``"system.d"``, ``"sweep.engine.kind[2]"``) so spec authors get a
    pinpointed error instead of a stack trace — the message always
    starts with that path.
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(message)
        self.path = path

"""Seeded random-number plumbing shared by every stochastic subsystem.

The paper's security argument rests on an information asymmetry: the
*system* draws the key -> replica-group mapping from randomness the
*adversary* cannot observe.  To keep experiments reproducible while
preserving that asymmetry in code, each subsystem derives its own
independent :class:`numpy.random.Generator` stream from a single root
seed via ``numpy``'s :class:`~numpy.random.SeedSequence` spawning
mechanism.  Two streams derived with different ``child`` labels are
statistically independent, and re-running with the same root seed
reproduces every trial bit-for-bit.

Example
-------
>>> root = RngFactory(seed=7)
>>> partition_rng = root.generator("partition", trial=0)
>>> arrival_rng = root.generator("arrivals", trial=0)
>>> int(partition_rng.integers(1000)) != int(arrival_rng.integers(1000))
True
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

__all__ = ["RngFactory", "as_generator", "DEFAULT_SEED"]

#: Seed used when the caller does not supply one.  Fixed (rather than
#: entropy-derived) so that examples and benchmark tables are stable
#: between runs unless the user explicitly asks for fresh randomness.
DEFAULT_SEED = 20130708  # ICDCS 2013 workshop dates, July 8 2013.


def _label_to_int(label: str) -> int:
    """Map a human-readable stream label to a stable 32-bit integer.

    ``zlib.crc32`` is used (not ``hash``) because Python's string hashing
    is salted per process and would destroy reproducibility.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


class RngFactory:
    """Derives independent, reproducible RNG streams from one root seed.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.  ``None`` draws fresh OS
        entropy (non-reproducible run).
    """

    def __init__(self, seed: Optional[int] = DEFAULT_SEED) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> Optional[int]:
        """The root seed this factory was built with (``None`` = entropy)."""
        return self._seed

    def generator(self, label: str, trial: int = 0) -> np.random.Generator:
        """Return a generator for stream ``label`` within trial ``trial``.

        The same ``(seed, label, trial)`` triple always yields the same
        stream; distinct triples yield independent streams.
        """
        if trial < 0:
            raise ValueError(f"trial must be non-negative, got {trial}")
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            # Extend (not replace) the root's spawn key so factories
            # namespaced via spawn() stay independent of their parent.
            spawn_key=tuple(self._root.spawn_key) + (_label_to_int(label), trial),
        )
        return np.random.default_rng(child)

    def spawn(self, label: str) -> "RngFactory":
        """Return a child factory namespaced under ``label``.

        Useful when a subsystem itself needs several internal streams.
        """
        child = RngFactory.__new__(RngFactory)
        child._seed = self._seed
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(_label_to_int(label),),
        )
        return child


def as_generator(
    rng: Union[None, int, np.random.Generator, RngFactory],
    label: str = "default",
) -> np.random.Generator:
    """Coerce the many ways callers express randomness into a Generator.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, an
    existing :class:`numpy.random.Generator` (returned unchanged), or an
    :class:`RngFactory` (a stream named ``label`` is derived).
    """
    if rng is None:
        return RngFactory(DEFAULT_SEED).generator(label)
    if isinstance(rng, (int, np.integer)):
        return RngFactory(int(rng)).generator(label)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, RngFactory):
        return rng.generator(label)
    raise TypeError(f"cannot interpret {rng!r} as a random generator")

"""Extension experiment: stealth attacks blended into benign traffic.

The paper's adversary owns the entire offered rate ``R``.  A stealthier
(and more common) attacker controls only a *fraction* of it, the rest
being the benign Zipf workload the cache serves well.  Two questions the
sweep answers, at a fixed under-provisioned cache:

1. **damage**: how much attack share does it take to push the most
   loaded node past the even split?
2. **visibility**: at that share, does the traffic fingerprint
   (:mod:`repro.analysis.detection`) already look anomalous?

The measured story (see ``bench_stealth``) cuts both ways.  Damage is
~linear in the attack share — the flood needs a *majority* of the
offered rate before any node exceeds the even split, because the benign
Zipf it displaces was cache-absorbed anyway.  But visibility is worse
than one might hope: the blended aggregate's entropy stays firmly in
the benign band (the flood's extra mass on ~c keys reads as ordinary
skew), and only the ~pure flood trips the uniform-flood fingerprint.
Entropy monitoring does not buy early warning against a blended
Theorem-1 attack — which sharpens the paper's case that *provisioning*
(which removes the damage at every share) beats *detection*.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.detection import profile_keys
from ..sim.analytic import MonteCarloSimulator
from ..sim.config import SimulationConfig
from ..workload.adversarial import AdversarialDistribution
from ..workload.mixture import MixtureDistribution
from ..workload.zipf import ZipfDistribution
from .params import PAPER, PaperParams
from .report import ExperimentResult

__all__ = ["run_stealth_sweep", "DEFAULT_FRACTIONS"]

#: Attack shares swept by default.
DEFAULT_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)


def run_stealth_sweep(
    paper: PaperParams = PAPER,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    cache_size: Optional[int] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    n: int = 200,
    m: int = 20_000,
    detect_queries: int = 40_000,
) -> ExperimentResult:
    """Sweep the adversary's share of the offered rate.

    Returns columns: ``attack_fraction``, ``gain`` (max over trials),
    ``entropy`` (normalized, of a sampled stream) and ``verdict`` (the
    detector's label for the aggregate traffic).
    """
    c = paper.c_fig4 if cache_size is None else cache_size
    trials = (paper.trials if trials is None else trials)
    params = paper.system(c=c, n=n)
    params = type(params)(n=n, m=m, c=c, d=paper.d, rate=paper.rate)
    benign = ZipfDistribution(m, paper.zipf_s)
    # client_id=1: the flood declares ground truth for attribution, so
    # traced replays of the blended mixture can score suspect rankings
    # against the true attacker keys.  Sampling is unaffected.
    flood = AdversarialDistribution(m, min(c + 1, m), client_id=1)
    sim = MonteCarloSimulator(
        SimulationConfig(params=params, trials=trials, seed=seed)
    )
    columns = {"attack_fraction": [], "gain": [], "entropy": [], "verdict": []}
    for fraction in fractions:
        if fraction <= 0.0:
            mixture = benign
        elif fraction >= 1.0:
            mixture = flood
        else:
            mixture = MixtureDistribution(
                [(1.0 - fraction, benign), (fraction, flood)]
            )
        report = sim.distribution_attack(mixture)
        profile = profile_keys(
            mixture.sample(detect_queries, rng=0 if seed is None else seed), m=m
        )
        columns["attack_fraction"].append(float(fraction))
        columns["gain"].append(report.worst_case)
        columns["entropy"].append(round(profile.normalized_entropy, 4))
        columns["verdict"].append(profile.verdict)
    notes = []
    crossing = next(
        (f for f, g in zip(columns["attack_fraction"], columns["gain"]) if g > 1.0),
        None,
    )
    if crossing is None:
        notes.append("no attack share pushes the cluster past the even split")
    else:
        notes.append(f"smallest damaging attack share: {crossing:g}")
    return ExperimentResult(
        name="stealth",
        description=(
            "attack share of the offered rate vs damage (gain) and "
            "visibility (traffic fingerprint), Zipf base + x=c+1 flood"
        ),
        columns=columns,
        config={"n": n, "m": m, "c": c, "d": paper.d, "trials": trials,
                "flood_x": min(c + 1, m)},
        notes=notes,
    )

"""Figure 3: normalized max workload vs number of queried keys.

Two panels on the paper's 1000-node, d=3 system:

- (a) small cache, ``c = 200``: the measured normalized max load
  *decreases* with ``x``, exceeds 1.0 near ``x = c + 1`` (effective
  attacks exist), and stays below the Eq. (10) bound curve (k = 1.2);
- (b) large cache, ``c = 2000`` (above the critical point 1201): the
  curve *increases* with ``x`` but never reaches 1.0 — the adversary's
  best move is to query everything and still lose.

Each sweep point reports the paper's statistic: the max over ``trials``
runs of the per-run maximum node load, normalized by ``R/n``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.tightness import bound_tightness
from ..core.bounds import DEFAULT_CALIBRATED_K_PRIME, normalized_max_load_bound
from ..obs.tracer import as_tracer
from ..sim.analytic import MonteCarloSimulator
from ..sim.config import SimulationConfig
from .params import PAPER, PaperParams
from .report import ExperimentResult

__all__ = ["run_fig3", "run_fig3a", "run_fig3b", "default_x_grid"]


def default_x_grid(c: int, m: int, points: int = 18) -> np.ndarray:
    """Log-spaced sweep of queried-key counts from just past the cache
    to the full key space (always includes ``c + 1`` and ``m``)."""
    lo, hi = c + 1, m
    grid = np.unique(
        np.clip(np.round(np.geomspace(lo, hi, num=points)).astype(int), lo, hi)
    )
    return grid


def run_fig3(
    cache_size: int,
    paper: PaperParams = PAPER,
    x_values: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    selection: str = "least-loaded",
    name: str = "fig3",
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> ExperimentResult:
    """Run one Figure-3 panel at the given cache size.

    Returns columns: ``x``, ``sim_max`` (max over trials), ``sim_mean``,
    ``bound_paper`` (Eq. (10) with the paper's folded k = 1.2) and
    ``bound_calib`` (same equation with the substrate-calibrated
    ``k = log log n / log d + k'``, which validly upper-bounds the
    simulation — see EXPERIMENTS.md on the constant discrepancy).
    ``chaos`` (a :class:`repro.chaos.ChaosConfig`) degrades every trial
    at the failure process's steady state; the bound columns stay the
    healthy-system curves, so the gap shows what failures cost.
    """
    params = paper.system(c=cache_size)
    trials = paper.trials if trials is None else trials
    if x_values is None:
        x_values = default_x_grid(cache_size, paper.m)
    sim = MonteCarloSimulator(
        SimulationConfig(
            params=params, trials=trials, seed=seed, selection=selection,
            workers=workers, metrics=metrics, tracer=tracer, monitor=monitor,
            chaos=chaos,
        )
    )
    span_tracer = as_tracer(tracer)
    xs, sim_max, sim_mean, bounds_paper, bounds_calib = [], [], [], [], []
    with span_tracer.span(name):
        for x in x_values:
            report = sim.uniform_attack(int(x))
            xs.append(int(x))
            sim_max.append(report.worst_case)
            sim_mean.append(report.mean)
            bounds_paper.append(normalized_max_load_bound(params, int(x), k=paper.k))
            bounds_calib.append(
                normalized_max_load_bound(
                    params, int(x), k_prime=DEFAULT_CALIBRATED_K_PRIME
                )
            )
    tightness = bound_tightness(sim_max, bounds_calib)
    trend = "decreasing" if sim_max[0] >= sim_max[-1] else "increasing"
    peak = max(sim_max)
    result = ExperimentResult(
        name=name,
        description=(
            f"normalized max workload vs x (cache size {cache_size}); "
            f"star curve = Eq. (10) bound with k={paper.k}"
        ),
        columns={
            "x": xs,
            "sim_max": sim_max,
            "sim_mean": sim_mean,
            "bound_paper": bounds_paper,
            "bound_calib": bounds_calib,
        },
        config={
            "n": params.n,
            "m": params.m,
            "c": cache_size,
            "d": params.d,
            "trials": trials,
            "k": paper.k,
            "selection": selection,
            **({"chaos": chaos.describe()} if chaos is not None else {}),
        },
        notes=[
            f"curve is {trend} in x",
            f"peak normalized max load {peak:.3f} "
            + ("(effective attack exists)" if peak > 1.0 else "(no effective attack)"),
            "calibrated bound: " + tightness.describe(),
        ],
    )
    return result


def run_fig3a(
    paper: PaperParams = PAPER,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    x_values: Optional[Sequence[int]] = None,
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> ExperimentResult:
    """Figure 3(a): the small-cache panel (c = 200)."""
    return run_fig3(
        paper.c_small, paper=paper, trials=trials, seed=seed,
        x_values=x_values, name="fig3a", workers=workers,
        metrics=metrics, tracer=tracer, monitor=monitor, chaos=chaos,
    )


def run_fig3b(
    paper: PaperParams = PAPER,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    x_values: Optional[Sequence[int]] = None,
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> ExperimentResult:
    """Figure 3(b): the large-cache panel (c = 2000)."""
    return run_fig3(
        paper.c_large, paper=paper, trials=trials, seed=seed,
        x_values=x_values, name="fig3b", workers=workers,
        metrics=metrics, tracer=tracer, monitor=monitor, chaos=chaos,
    )

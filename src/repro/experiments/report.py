"""Experiment results and plain-text rendering.

No plotting dependencies: results are column tables rendered as aligned
ASCII, which is what the benchmarks print and what EXPERIMENTS.md
records.  (The columns are trivially exportable to any plotting tool.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import AnalysisError

__all__ = ["ExperimentResult", "render_table", "format_number"]


def format_number(value, precision: int = 4) -> str:
    """Compact numeric formatting: ints verbatim, floats to ``precision``
    significant-ish digits, strings passed through."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    columns: Mapping[str, Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a column mapping as an aligned ASCII table."""
    if not columns:
        raise AnalysisError("no columns to render")
    names = list(columns.keys())
    lengths = {len(col) for col in columns.values()}
    if len(lengths) != 1:
        raise AnalysisError(f"ragged columns: lengths {sorted(lengths)}")
    (n_rows,) = lengths
    cells: List[List[str]] = [[format_number(v, precision) for v in columns[name]] for name in names]
    widths = [
        max(len(name), *(len(c) for c in col)) if n_rows else len(name)
        for name, col in zip(names, cells)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(name.rjust(w) for name, w in zip(names, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in range(n_rows):
        lines.append("  ".join(col[r].rjust(w) for col, w in zip(cells, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform container for one experiment run.

    Attributes
    ----------
    name:
        Experiment id, e.g. ``"fig3a"``.
    description:
        What the series show (one line).
    columns:
        Column-oriented data, first column being the sweep variable.
    config:
        The parameters the run used (for EXPERIMENTS.md provenance).
    notes:
        Free-form qualitative findings (crossing points, verdicts...).
    """

    name: str
    description: str
    columns: Dict[str, List]
    config: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, precision: int = 4) -> str:
        """Full plain-text report: header, table, notes."""
        parts = [f"== {self.name}: {self.description}"]
        if self.config:
            cfg = ", ".join(f"{k}={format_number(v)}" for k, v in self.config.items())
            parts.append(f"config: {cfg}")
        parts.append(render_table(self.columns, precision=precision))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, name: str) -> List:
        """Fetch one column, with a helpful error when missing."""
        try:
            return self.columns[name]
        except KeyError:
            raise AnalysisError(
                f"{self.name} has no column {name!r}; available: {sorted(self.columns)}"
            ) from None

    def to_json(self) -> str:
        """Serialise to JSON (archival / plotting pipelines)."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "columns": self.columns,
                "config": self.config,
                "notes": self.notes,
            },
            default=float,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Reconstruct a result written by :meth:`to_json`."""
        import json

        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"invalid experiment-result JSON: {exc}") from exc
        missing = {"name", "description", "columns"} - set(data)
        if missing:
            raise AnalysisError(f"experiment-result JSON missing fields: {sorted(missing)}")
        return cls(
            name=data["name"],
            description=data["description"],
            columns=data["columns"],
            config=data.get("config", {}),
            notes=data.get("notes", []),
        )

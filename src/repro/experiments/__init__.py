"""Experiment drivers: one callable per figure of the paper.

Every driver returns an :class:`~repro.experiments.report.ExperimentResult`
whose ``columns`` hold the same series the paper plots, so the
benchmarks, the CLI and the tests all consume one representation.

Scale knobs: each driver takes ``trials`` (paper: 200) and, where it
matters, the key-space size, so benches can run a faithful-shape
reduced version quickly while ``python -m repro <fig> --full`` runs the
paper-scale configuration.
"""

from .params import PaperParams, PAPER
from .report import ExperimentResult, render_table
from .fig3 import run_fig3a, run_fig3b, run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5a, run_fig5b, run_fig5
from .campaign import CampaignResult, run_campaign
from .stealth import run_stealth_sweep
from .plot import ascii_plot

__all__ = [
    "CampaignResult",
    "run_campaign",
    "run_stealth_sweep",
    "ascii_plot",
    "PaperParams",
    "PAPER",
    "ExperimentResult",
    "render_table",
    "run_fig3",
    "run_fig3a",
    "run_fig3b",
    "run_fig4",
    "run_fig5",
    "run_fig5a",
    "run_fig5b",
]

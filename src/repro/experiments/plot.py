"""Dependency-free ASCII plotting for terminal figure output.

The repository deliberately has no plotting dependency; the experiment
tables are the ground truth.  For eyeballing shapes in a terminal,
``ascii_plot`` renders one or more series on a shared character grid —
enough to see Fig. 3's monotonicity flip or Fig. 5's crossing without
leaving the shell (``python -m repro fig3a --plot``).
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

from ..exceptions import AnalysisError

__all__ = ["ascii_plot"]

#: Glyphs assigned to series in declaration order.
_MARKERS = "*o+x#@%&"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    out = []
    for value in values:
        if log:
            if value <= 0:
                raise AnalysisError("log scale requires positive values")
            out.append(math.log10(value))
        else:
            out.append(float(value))
    return out


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    title: Optional[str] = None,
    hline: Optional[float] = None,
) -> str:
    """Render series against ``x`` as an ASCII scatter grid.

    Parameters
    ----------
    x:
        Shared x coordinates.
    series:
        ``{label: y-values}``; each must match ``len(x)``.
    width, height:
        Plot area size in characters (excluding axes).
    logx:
        Log-scale the x axis (Figs. 3 and 5(b) read better that way).
    title:
        Optional first line.
    hline:
        Draw a horizontal reference line at this y (e.g. the gain = 1.0
        effectiveness threshold).
    """
    if width < 8 or height < 4:
        raise AnalysisError("plot area too small (need width >= 8, height >= 4)")
    if not series:
        raise AnalysisError("need at least one series")
    xs = _transform(x, logx)
    if len(xs) == 0:
        raise AnalysisError("need at least one point")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise AnalysisError(f"series {label!r} length != len(x)")

    all_y = [float(v) for ys in series.values() for v in ys]
    if hline is not None:
        all_y.append(float(hline))
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    def col(value: float) -> int:
        return min(width - 1, int(round((value - x_min) / x_span * (width - 1))))

    def row(value: float) -> int:
        # Row 0 is the top of the grid.
        return min(
            height - 1,
            int(round((y_max - float(value)) / y_span * (height - 1))),
        )

    grid = [[" "] * width for _ in range(height)]
    if hline is not None:
        r = row(hline)
        for cc in range(width):
            grid[r][cc] = "-"
    for marker, (label, ys) in zip(_MARKERS, series.items()):
        for xv, yv in zip(xs, ys):
            grid[row(yv)][col(xv)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = 9
    for r, cells in enumerate(grid):
        if r == 0:
            axis_label = f"{y_max:>{label_width}.3g}"
        elif r == height - 1:
            axis_label = f"{y_min:>{label_width}.3g}"
        else:
            axis_label = " " * label_width
        lines.append(f"{axis_label} |{''.join(cells)}")
    lines.append(" " * label_width + "+" + "-" * width)
    left = f"{x[0]:.3g}"
    right = f"{x[-1]:.3g}" + (" (log x)" if logx else "")
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 1) + left + " " * pad + right)
    legend = "  ".join(
        f"{marker}={label}" for marker, label in zip(_MARKERS, series.keys())
    )
    lines.append(" " * (label_width + 1) + legend)
    return "\n".join(lines)

"""Full-evaluation campaign: every figure in one run, one report.

``python -m repro all [--full] [--output report.md]`` regenerates the
paper's entire evaluation section and emits a single document with every
table and the qualitative verdicts — the artifact to diff against
EXPERIMENTS.md after changing anything load-bearing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .fig3 import run_fig3a, run_fig3b
from .fig4 import run_fig4
from .fig5 import run_fig5
from .report import ExperimentResult

__all__ = [
    "CampaignResult",
    "run_campaign",
    "run_campaign_spec",
    "FIGURE_DRIVERS",
]

#: Figure id -> driver.  fig5 runs once and serves both panels.
FIGURE_DRIVERS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig4": run_fig4,
    "fig5": run_fig5,
}


@dataclass(frozen=True)
class CampaignResult:
    """All figure results plus timing, renderable as one document."""

    results: Tuple[ExperimentResult, ...]
    elapsed_seconds: float
    trials: int

    def render(self) -> str:
        """Markdown-ish full report."""
        parts = [
            "# Secure Cache Provision — full evaluation run",
            f"(trials per sweep point: {self.trials}; "
            f"wall clock: {self.elapsed_seconds:.1f}s)",
            "",
        ]
        for result in self.results:
            parts.append(result.render())
            parts.append("")
        return "\n".join(parts)

    def by_name(self, name: str) -> ExperimentResult:
        """Fetch one figure's result."""
        for result in self.results:
            if result.name == name:
                return result
        raise ConfigurationError(
            f"campaign has no result {name!r}; ran {[r.name for r in self.results]}"
        )


def run_campaign(
    trials: int = 25,
    seed: Optional[int] = None,
    figures: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> CampaignResult:
    """Run the selected figures (default: all) and bundle the results.

    Parameters
    ----------
    trials:
        Trials per sweep point (paper scale: 200).
    seed:
        Root seed shared by every figure.
    figures:
        Subset of :data:`FIGURE_DRIVERS` keys, in the order to run.
    progress:
        Optional callback invoked with a status line per figure (the
        CLI passes ``print``).
    workers:
        Trial-execution processes per sweep point (``0`` = one per CPU,
        default ``1`` = serial); results are identical for every value.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` shared by every
        figure (``None`` = observability off).
    tracer:
        Optional :class:`repro.obs.Tracer` for wall-clock phase spans.
    monitor:
        Optional :class:`repro.obs.LoadMonitor` shared by every figure;
        each sweep point's trials become trial-clock window records with
        the Theorem-2 bound attached where the sweep knows its ``x``.
    chaos:
        Optional :class:`repro.chaos.ChaosConfig` shared by every
        figure: each trial is degraded at the failure process's
        steady state (``None`` = healthy cluster, the paper's setting).
    """
    if figures is None:
        figures = list(FIGURE_DRIVERS)
    unknown = [f for f in figures if f not in FIGURE_DRIVERS]
    if unknown:
        raise ConfigurationError(
            f"unknown figures {unknown}; available: {sorted(FIGURE_DRIVERS)}"
        )
    results: List[ExperimentResult] = []
    started = time.monotonic()
    for figure in figures:
        if progress is not None:
            progress(f"running {figure} ({trials} trials per point)...")
        results.append(
            FIGURE_DRIVERS[figure](
                trials=trials, seed=seed, workers=workers,
                metrics=metrics, tracer=tracer, monitor=monitor, chaos=chaos,
            )
        )
    return CampaignResult(
        results=tuple(results),
        elapsed_seconds=time.monotonic() - started,
        trials=trials,
    )


def run_campaign_spec(
    spec,
    figures: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    metrics=None,
    tracer=None,
    monitor=None,
) -> CampaignResult:
    """Spec-first figure campaign: execution knobs from a scenario spec.

    Takes ``trials`` / ``seed`` / ``workers`` / ``chaos`` from a
    :class:`~repro.scenario.spec.ScenarioSpec` (the chaos section is
    materialised through the component registry) instead of threaded
    kwargs; each figure keeps its own paper-mandated system parameters,
    so the spec's ``system`` only scopes the chaos builder.  The kwargs
    form above remains the compatible entry point — this shim routes
    into it, keeping golden fixtures byte-identical.
    """
    from ..scenario.build import BuildContext, build_component

    chaos = None
    if spec.chaos is not None:
        chaos = build_component(
            "chaos", spec.chaos, BuildContext(spec.system, spec.seed),
            path="chaos",
        )
    return run_campaign(
        trials=spec.trials,
        seed=spec.seed,
        figures=figures,
        progress=progress,
        workers=spec.workers,
        metrics=metrics,
        tracer=tracer,
        monitor=monitor,
        chaos=chaos,
    )

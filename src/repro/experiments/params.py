"""The paper's evaluation parameters (Section IV).

"We simulate a system with 1000 back-end nodes.  The replication factor
for each item is 3 ... The client launches [R] queries per second ...
We repeat this simulation for 200 runs, and show the max of the maximum
load ... we set k = 1.2."  Small-cache figure: c = 200; large-cache
figure: c = 2000; Figure 4 uses c = 100 and varies n; Figure 5 sweeps c.

The OCR of the paper drops the exact digits of the key-space size and
query rate; both only rescale axes (all reported quantities are
*normalized*), so we fix m = 1e5 (consistent with the x-axis of Fig. 3
reaching the full key space) and R = 1e5 qps.  EXPERIMENTS.md records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.notation import SystemParameters

__all__ = ["PaperParams", "PAPER"]


@dataclass(frozen=True)
class PaperParams:
    """Bundle of the paper's simulation constants."""

    n: int = 1000
    m: int = 100_000
    d: int = 3
    rate: float = 100_000.0
    c_small: int = 200
    c_large: int = 2000
    c_fig4: int = 100
    trials: int = 200
    k: float = 1.2
    zipf_s: float = 1.01

    def system(self, c: int, n: int = None) -> SystemParameters:
        """A :class:`SystemParameters` with the paper's constants.

        ``c`` is mandatory because each figure picks its own; ``n``
        overrides the cluster size for the Figure-4 sweep.
        """
        return SystemParameters(
            n=self.n if n is None else n,
            m=self.m,
            c=c,
            d=self.d,
            rate=self.rate,
        )

    @property
    def critical_cache(self) -> int:
        """The analytic critical point ``n k + 1`` at paper constants."""
        return int(self.n * self.k + 1)


#: The canonical instance every experiment driver defaults to.
PAPER = PaperParams()

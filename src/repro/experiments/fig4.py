"""Figure 4: normalized max workload vs cluster size, three patterns.

Fixed cache ``c = 100``, replication ``d = 3``; the cluster size ``n``
sweeps while the access pattern is one of:

- **uniform** over all ``m`` keys — the good-citizen baseline; its
  normalized max stays flat near 1 as ``n`` grows;
- **Zipf(1.01)** — realistic skew; the cache absorbs the head, so the
  back end sees the *least* load of the three;
- **adversarial** — the paper's optimal strategy; with ``c = 100`` far
  below every critical point in the sweep, the adversary queries
  ``x = c + 1`` keys and the normalized max grows roughly like
  ``n / (c + 1)``.

The orderings (zipf < uniform < adversarial) and the adversarial growth
with ``n`` are the figure's qualitative content.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..adversary.strategies import OptimalAdversary, UniformFlood, ZipfClient
from ..sim.analytic import MonteCarloSimulator
from ..sim.config import SimulationConfig
from .params import PAPER, PaperParams
from .report import ExperimentResult

__all__ = ["run_fig4", "DEFAULT_N_VALUES"]

#: Cluster sizes swept by default.  The paper's axis spans hundreds of
#: nodes up to ~1000; beyond that (with c = 100 and m = 1e5) the Zipf
#: tail's hottest uncached key alone exceeds the even split and the
#: zipf < uniform ordering inverts — a regime the paper does not plot.
DEFAULT_N_VALUES = (100, 200, 400, 600, 800, 1000)


def run_fig4(
    paper: PaperParams = PAPER,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    cache_size: Optional[int] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    m: Optional[int] = None,
    selection: str = "least-loaded",
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> ExperimentResult:
    """Run the Figure-4 sweep.

    Returns columns: ``n``, ``uniform``, ``zipf``, ``adversarial`` —
    each the max-over-trials normalized maximum load.  ``m`` can shrink
    the key space for quick runs (the uniform/Zipf points scale with m).
    ``chaos`` degrades every trial at the failure process's steady state
    (see :class:`repro.chaos.ChaosConfig`).
    """
    c = paper.c_fig4 if cache_size is None else cache_size
    trials = paper.trials if trials is None else trials
    key_space = paper.m if m is None else m
    columns = {"n": [], "uniform": [], "zipf": [], "adversarial": []}
    for n in n_values:
        params = paper.system(c=c, n=n)
        if key_space != paper.m:
            params = params.__class__(
                n=n, m=key_space, c=c, d=paper.d, rate=paper.rate
            )
        sim = MonteCarloSimulator(
            SimulationConfig(
                params=params, trials=trials, seed=seed, selection=selection,
                workers=workers, metrics=metrics, tracer=tracer, monitor=monitor,
                chaos=chaos,
            )
        )
        patterns = {
            "uniform": UniformFlood(params).distribution(),
            "zipf": ZipfClient(params, s=paper.zipf_s).distribution(),
            "adversarial": OptimalAdversary(params, k=paper.k).distribution(),
        }
        columns["n"].append(int(n))
        for label, dist in patterns.items():
            report = sim.distribution_attack(dist)
            columns[label].append(report.worst_case)
    notes = []
    zipf_below = sum(
        z <= u + 1e-9 for z, u in zip(columns["zipf"], columns["uniform"])
    )
    notes.append(
        f"zipf <= uniform at {zipf_below}/{len(n_values)} points "
        "(the cache absorbs the Zipf head)"
    )
    # At n ~ c the Case-1 plan (x = c + 1) spreads over too few nodes to
    # beat uniform; the adversarial advantage appears once n >> c.
    adv_above = sum(
        a >= u - 1e-9 for a, u in zip(columns["adversarial"], columns["uniform"])
    )
    notes.append(f"adversarial >= uniform at {adv_above}/{len(n_values)} points")
    grows = columns["adversarial"][-1] > columns["adversarial"][0]
    notes.append(
        "adversarial load grows with n" if grows else "adversarial load does NOT grow with n"
    )
    return ExperimentResult(
        name="fig4",
        description=(
            "normalized max workload vs number of back-end nodes under "
            "uniform / Zipf(1.01) / adversarial access patterns"
        ),
        columns=columns,
        config={
            "c": c,
            "m": key_space,
            "d": paper.d,
            "trials": trials,
            "k": paper.k,
            "zipf_s": paper.zipf_s,
            "selection": selection,
            **({"chaos": chaos.describe()} if chaos is not None else {}),
        },
        notes=notes,
    )

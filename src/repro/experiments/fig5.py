"""Figure 5: the adversary's best outcome as the cache grows.

Panel (a): best achievable normalized max workload vs cache size.  The
curve decreases in ``c``; where it crosses 1.0 is the empirical
*critical point*, which the paper shows sits close to the analytic
bound ``c* = n k + 1`` (= 1201 at paper constants).

Panel (b): the number of keys the best adversary queries vs cache size
(log scale): ``x = c + 1`` below the critical point, jumping to the full
key space ``m`` above it.

Both panels come from the same sweep: at each cache size the simulator
evaluates the two candidate attacks (``x = c + 1`` and ``x = m``) and
keeps the better — exactly the search the paper describes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.bounds import DEFAULT_CALIBRATED_K_PRIME
from ..core.cases import critical_cache_size
from ..sim.analytic import MonteCarloSimulator
from ..sim.config import SimulationConfig
from .params import PAPER, PaperParams
from .report import ExperimentResult

__all__ = ["run_fig5", "run_fig5a", "run_fig5b", "default_cache_grid"]


def default_cache_grid(paper: PaperParams = PAPER, points: int = 13) -> np.ndarray:
    """Cache sizes bracketing the critical point (log-spaced)."""
    critical = paper.critical_cache
    lo = max(25, critical // 8)
    hi = min(paper.m, critical * 3)
    return np.unique(
        np.round(np.geomspace(lo, hi, num=points)).astype(int)
    )


def run_fig5(
    paper: PaperParams = PAPER,
    cache_values: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    selection: str = "least-loaded",
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    chaos=None,
) -> ExperimentResult:
    """The joint Figure-5 sweep.

    Returns columns: ``c``, ``best_gain`` (panel a), ``x_queried``
    (panel b), ``effective``.  The analytic critical point and the
    empirical crossing are recorded in the notes.  ``chaos`` degrades
    every trial at the failure process's steady state (see
    :class:`repro.chaos.ChaosConfig`), shifting the empirical critical
    point upward relative to the healthy analytic one.
    """
    trials = paper.trials if trials is None else trials
    if cache_values is None:
        cache_values = default_cache_grid(paper)
    columns = {"c": [], "best_gain": [], "x_queried": [], "effective": []}
    for c in cache_values:
        params = paper.system(c=int(c))
        sim = MonteCarloSimulator(
            SimulationConfig(
                params=params, trials=trials, seed=seed, selection=selection,
                workers=workers, metrics=metrics, tracer=tracer, monitor=monitor,
                chaos=chaos,
            )
        )
        gain, x, _ = sim.best_achievable()
        columns["c"].append(int(c))
        columns["best_gain"].append(gain)
        columns["x_queried"].append(int(x))
        columns["effective"].append(gain > 1.0)
    analytic = critical_cache_size(paper.n, paper.d, k=paper.k)
    calibrated = critical_cache_size(
        paper.n, paper.d, k_prime=DEFAULT_CALIBRATED_K_PRIME
    )
    crossing = None
    for c, gain in zip(columns["c"], columns["best_gain"]):
        if gain <= 1.0:
            crossing = c
            break
    notes = [
        f"analytic critical point with the paper's k={paper.k}: c* = {analytic}",
        f"analytic critical point with substrate-calibrated k: c* = {calibrated}",
    ]
    if crossing is None:
        notes.append("no empirical crossing inside the sweep range")
    else:
        notes.append(f"first swept cache size with gain <= 1.0: c = {crossing}")
    monotone = all(
        a >= b - 0.25  # tolerate Monte-Carlo wiggle
        for a, b in zip(columns["best_gain"], columns["best_gain"][1:])
    )
    notes.append(
        "best gain decreases with cache size" if monotone else "best gain NOT monotone (noise?)"
    )
    return ExperimentResult(
        name="fig5",
        description=(
            "best achievable normalized max workload (a) and number of "
            "keys queried by the best adversary (b) vs cache size"
        ),
        columns=columns,
        config={
            "n": paper.n,
            "m": paper.m,
            "d": paper.d,
            "trials": trials,
            "k": paper.k,
            "selection": selection,
            **({"chaos": chaos.describe()} if chaos is not None else {}),
        },
        notes=notes,
    )


def run_fig5a(**kwargs) -> ExperimentResult:
    """Panel (a) view of the joint sweep (gain vs cache size)."""
    result = run_fig5(**kwargs)
    result.name = "fig5a"
    result.description = "best achievable normalized max workload vs cache size"
    result.columns = {
        "c": result.columns["c"],
        "best_gain": result.columns["best_gain"],
        "effective": result.columns["effective"],
    }
    return result


def run_fig5b(**kwargs) -> ExperimentResult:
    """Panel (b) view of the joint sweep (queried keys vs cache size)."""
    result = run_fig5(**kwargs)
    result.name = "fig5b"
    result.description = "number of keys queried by the best adversary vs cache size"
    result.columns = {
        "c": result.columns["c"],
        "x_queried": result.columns["x_queried"],
    }
    return result

"""Observability: deterministic metrics, phase tracing, exporters.

The instrumentation surface every layer of the reproduction reports
through (see ``docs/OBSERVABILITY.md``):

- :class:`MetricsRegistry` — counters, gauges and fixed-bucket log-scale
  histograms; values are deterministic (identical across worker counts)
  and registries merge exactly;
- :class:`Tracer` — nestable wall-clock spans for the simulation phases
  (workload gen -> cache -> partition -> allocation -> report);
- :func:`export_json` / :func:`write_json` / :func:`to_prometheus` —
  one source of truth, two export formats.

Everything defaults off: code paths accept ``metrics=None`` /
``tracer=None`` and normalise onto the shared no-op singletons, which
record nothing and allocate nothing.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    as_registry,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, as_tracer
from .export import export_json, to_prometheus, write_json

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "as_registry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "export_json",
    "write_json",
    "to_prometheus",
]

"""Observability: deterministic metrics, phase tracing, exporters.

The instrumentation surface every layer of the reproduction reports
through (see ``docs/OBSERVABILITY.md``):

- :class:`MetricsRegistry` — counters, gauges and fixed-bucket log-scale
  histograms; values are deterministic (identical across worker counts)
  and registries merge exactly;
- :class:`Tracer` — nestable wall-clock spans for the simulation phases
  (workload gen -> cache -> partition -> allocation -> report);
- :func:`export_json` / :func:`write_json` / :func:`to_prometheus` —
  one source of truth, two export formats;
- :class:`LoadMonitor` — **online** attack monitoring: simulated-clock
  sliding windows (:mod:`repro.obs.windows`), a streaming attack-gain
  estimator with P² quantile sketches (:mod:`repro.obs.sketch`), a
  structured JSONL event log (:mod:`repro.obs.events`), rule-based
  alerting (:mod:`repro.obs.alerts`) and terminal/HTML dashboards
  (:mod:`repro.obs.dashboard`);
- :class:`FlightRecorder` — **causal request tracing**: a hash-sampled
  (RNG-free) bounded ring of per-request records
  (:mod:`repro.obs.trace`) feeding a streaming per-prefix/per-client
  attack-attribution engine (:mod:`repro.obs.attribution`) with ranked
  suspects, the ``attribution-concentration`` alert and the forensic
  timeline dashboards (:mod:`repro.obs.forensics`).

Everything defaults off: code paths accept ``metrics=None`` /
``tracer=None`` / ``monitor=None`` and normalise onto the shared no-op
singletons, which record nothing and allocate nothing.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    as_registry,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, as_tracer
from .export import export_json, to_prometheus, write_json
from .windows import StreamingEntropy, WindowAccumulator
from .sketch import P2Quantile, QuantileBank, SpaceSaving
from .events import SCHEMA_VERSION, EventLog
from .alerts import BUILTIN_RULES, AlertEngine, AlertRule
from .monitor import (
    NULL_MONITOR,
    LoadMonitor,
    MonitorConfig,
    NullMonitor,
    as_monitor,
)
from .attribution import AttributionEngine, recompute
from .trace import (
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    HashSampler,
    NullRecorder,
    StrideSampler,
    TraceConfig,
    as_trace,
)
from .dashboard import render_html, render_text, write_html
from .forensics import (
    path_breakdown,
    render_forensics_html,
    render_forensics_text,
    timeline_bins,
    write_forensics_html,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "as_registry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "export_json",
    "write_json",
    "to_prometheus",
    "StreamingEntropy",
    "WindowAccumulator",
    "P2Quantile",
    "QuantileBank",
    "SpaceSaving",
    "SCHEMA_VERSION",
    "EventLog",
    "AlertRule",
    "AlertEngine",
    "BUILTIN_RULES",
    "MonitorConfig",
    "LoadMonitor",
    "NullMonitor",
    "NULL_MONITOR",
    "as_monitor",
    "TRACE_SCHEMA_VERSION",
    "TraceConfig",
    "HashSampler",
    "StrideSampler",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_trace",
    "AttributionEngine",
    "recompute",
    "render_text",
    "render_html",
    "write_html",
    "path_breakdown",
    "timeline_bins",
    "render_forensics_text",
    "render_forensics_html",
    "write_forensics_html",
]

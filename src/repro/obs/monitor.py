"""Online attack monitoring: the live counterpart of the paper's report.

End-of-run observability (PR 2) answers "what happened"; the
:class:`LoadMonitor` answers "what is happening" while a run executes:

- **simulated-clock sliding windows** (:mod:`repro.obs.windows`) of
  per-node load, cache hit ratio and key-frequency entropy — a
  streaming port of :mod:`repro.analysis.detection`'s flatness score;
- a **live attack-gain estimator**: the running
  ``L_max / (R/n)`` against the Theorem-2 bound
  ``1 + (1 - c + n k)/(x - 1)`` for the configured ``(n, d, c, x)``,
  with P² quantile sketches (:mod:`repro.obs.sketch`) over the
  normalised per-window node loads;
- a **structured JSONL event log** (:mod:`repro.obs.events`): one
  manifest, one record per non-empty window, one record per alert, one
  run summary;
- a **rule-based alert engine** (:mod:`repro.obs.alerts`) whose
  firings land in the event log *and* the metrics registry;
- **degraded-bound tracking** (chaos runs): node up/down transitions
  from the fault injector (:mod:`repro.chaos`) feed per-window
  ``effective_d`` — the mean surviving replication choice — and a
  refreshed Theorem-2 bound computed with
  ``k_eff = log log n / log d_eff + k'``, which *grows* as failures
  shrink ``d_eff``; the ``degraded-bound`` alert fires whenever
  ``effective_d < d``.

Everything the monitor derives is keyed by simulated time (or trial
index), never wall clock, so monitor output is bit-identical across
worker counts — per-trial monitors run inside workers, snapshot, and
merge in trial order (:meth:`LoadMonitor.merge_trial`), the same
discipline the metrics registry follows.

Two ingestion paths share one monitor type:

- **event path** (:class:`repro.sim.eventsim.EventDrivenSimulator`):
  :meth:`begin_run` / :meth:`record_request` / :meth:`finalize`; the
  window clock is simulated seconds.
- **trial path** (:func:`repro.sim.runner.run_trials`):
  :meth:`record_trial` turns each trial's
  :class:`~repro.types.LoadVector` into one trial-clock window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

import numpy as np

from ..core.bounds import distcache_max_load_bound, fold_constant_k
from ..exceptions import ConfigurationError
from .alerts import AlertEngine, BUILTIN_RULES
from .events import SCHEMA_VERSION, EventLog
from .metrics import as_registry
from .sketch import QuantileBank
from .windows import WindowAccumulator

__all__ = [
    "MonitorConfig",
    "LoadMonitor",
    "NullMonitor",
    "NULL_MONITOR",
    "as_monitor",
]

#: Entropy-flatness threshold; kept numerically equal to
#: ``repro.analysis.detection.FLATNESS_THRESHOLD`` (contract-tested)
#: without importing the analysis package into the hot path.
FLATNESS_THRESHOLD = 0.95


@dataclass(frozen=True)
class MonitorConfig:
    """Plain-data monitor configuration (picklable, spawn-safe).

    Parameters
    ----------
    window:
        Window width in simulated seconds (event path).  The trial path
        uses one window per trial and ignores this.
    n, rate, c, d:
        System shape.  The event engine supplies ``n`` and ``rate`` at
        :meth:`LoadMonitor.begin_run`, and the trial path derives them
        from each :class:`~repro.types.LoadVector`, so both may stay
        ``None``; ``c`` and ``d`` (plus ``x``) are only needed for the
        Theorem-2 bound.
    x:
        The attack width the bound is evaluated at (``None`` disables
        the ``gain-over-bound`` rule unless a caller supplies ``x`` per
        trial or ``bound`` explicitly).
    k, k_prime:
        The folded constant of Eq. (10), or the Theta(1) remainder to
        fold via ``log log n / log d + k'`` when ``k`` is ``None``.
    bound:
        Explicit bound override; wins over the ``(x, k)`` computation.
    entropy_threshold, entropy_min_keys:
        The ``entropy-flat`` rule: fire when a window's normalised
        entropy reaches the threshold over more than ``entropy_min_keys``
        distinct keys (the Theorem-1 fingerprint).
    overload_factor:
        The ``node-overload`` rule fires when a node's offered window
        rate exceeds ``overload_factor * R/n``; 4.0 matches the event
        engine's default per-node capacity headroom.
    rules:
        Built-in rule names to enable, in evaluation order.
    """

    window: float = 0.1
    n: Optional[int] = None
    rate: Optional[float] = None
    c: int = 0
    d: int = 2
    x: Optional[int] = None
    k: Optional[float] = None
    k_prime: float = 0.75
    bound: Optional[float] = None
    entropy_threshold: float = FLATNESS_THRESHOLD
    entropy_min_keys: int = 10
    overload_factor: float = 4.0
    rules: Tuple[str, ...] = (
        "gain-over-bound", "entropy-flat", "node-overload", "degraded-bound"
    )

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.overload_factor <= 0:
            raise ConfigurationError(
                f"overload_factor must be positive, got {self.overload_factor}"
            )
        unknown = [r for r in self.rules if r not in BUILTIN_RULES]
        if unknown:
            raise ConfigurationError(
                f"unknown alert rules {unknown}; available: {sorted(BUILTIN_RULES)}"
            )

    @classmethod
    def from_params(cls, params, x: Optional[int] = None, **overrides) -> "MonitorConfig":
        """Build from a :class:`~repro.core.notation.SystemParameters`."""
        fields = dict(
            n=params.n, rate=params.rate, c=params.c, d=params.d, x=x
        )
        fields.update(overrides)
        return cls(**fields)

    def bound_for(
        self,
        x: Optional[int],
        n: Optional[int] = None,
        c: Optional[int] = None,
        d: Optional[int] = None,
    ) -> Optional[float]:
        """Theorem-2 bound ``1 + (1 - c + n k)/(x - 1)``, or ``None``.

        ``n``/``c``/``d`` fall back to the config; campaigns that sweep
        the system shape (the figure drivers) pass each point's own
        values so the bound tracks the sweep.  Returns ``None`` when no
        ``x`` is available, ``x`` does not exceed the cache (the bound
        is trivially 0 there and the gain rule is meaningless), or the
        system shape is insufficient (``n`` unknown, or ``d < 2`` with
        no explicit ``k``).
        """
        if self.bound is not None:
            return self.bound
        n = self.n if n is None else n
        c = self.c if c is None else c
        d = self.d if d is None else d
        if x is None or x < 2 or x <= c:
            return None
        if n is None:
            return None
        k = self.k
        if k is None:
            if d < 2:
                return None
            k = fold_constant_k(n, d, self.k_prime)
        return 1.0 + (1.0 - c + n * k) / (x - 1)

    def degraded_bound_for(
        self,
        x: Optional[int],
        effective_d: Optional[float],
        n: Optional[int] = None,
        c: Optional[int] = None,
    ) -> Optional[float]:
        """Theorem-2 bound refreshed for a degraded replication choice.

        Failures shrink the mean surviving choice to ``effective_d < d``;
        the bound's constant becomes
        ``k_eff = log log n / log d_eff + k'``, which grows as ``d_eff``
        shrinks — the degraded bound is always at least the healthy one.
        Returns ``None`` when no bound is computable: missing ``x``/``n``,
        ``x`` inside the cache, or ``effective_d <= 1`` (with one or
        fewer surviving replicas per key the d-choice theory gives no
        bound at all — total failure, not degradation).

        Always computed from ``k_prime`` (never the explicit ``k`` or
        ``bound`` overrides, which cannot be re-folded for a different
        ``d``), matching :func:`repro.core.bounds.fold_constant_k` with
        its small-``n`` clamp.
        """
        if effective_d is None or effective_d <= 1.0:
            return None
        n = self.n if n is None else n
        c = self.c if c is None else c
        if x is None or x < 2 or x <= c or n is None:
            return None
        excess = 0.0 if n <= math.e else math.log(math.log(n)) / math.log(effective_d)
        k_eff = excess + self.k_prime
        return 1.0 + (1.0 - c + n * k_eff) / (x - 1)

    def to_dict(self) -> dict:
        """JSON-able form for the manifest record."""
        return {
            "window": self.window,
            "n": self.n,
            "rate": self.rate,
            "c": self.c,
            "d": self.d,
            "x": self.x,
            "k": self.k,
            "k_prime": self.k_prime,
            "bound": self.bound,
            "entropy_threshold": self.entropy_threshold,
            "entropy_min_keys": self.entropy_min_keys,
            "overload_factor": self.overload_factor,
            "rules": list(self.rules),
        }


class _RuleContext:
    """The slice of monitor state the alert rules read."""

    __slots__ = ("entropy_threshold", "entropy_min_keys", "overload_factor",
                 "d", "_even")

    def __init__(
        self,
        config: MonitorConfig,
        even_split: Optional[float],
        d: Optional[int] = None,
    ) -> None:
        self.entropy_threshold = config.entropy_threshold
        self.entropy_min_keys = config.entropy_min_keys
        self.overload_factor = config.overload_factor
        self.d = config.d if d is None else d
        self._even = even_split

    def even_split(self) -> Optional[float]:
        return self._even


class LoadMonitor:
    """Maintains windows, the gain estimate, the event log and alerts.

    Parameters
    ----------
    config:
        :class:`MonitorConfig`; the default monitors without a bound.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; window and
        alert counters (all simulated-state, hence deterministic) land
        here alongside the rest of the run's metrics.
    events:
        Optional shared :class:`~repro.obs.events.EventLog`; the monitor
        creates a private one when omitted.
    on_window, on_alert:
        Live callbacks fired with each window snapshot / alert record as
        it lands in this monitor (the attack-lab example and the CLI's
        ``--alerts`` use these).  Records produced by worker-side
        per-trial monitors fire the campaign monitor's callbacks at
        merge time, in trial order.
    """

    enabled = True

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        metrics=None,
        events: Optional[EventLog] = None,
        on_window: Optional[Callable[[dict], None]] = None,
        on_alert: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self._config = config if config is not None else MonitorConfig()
        self._metrics = as_registry(metrics)
        self._events = events if events is not None else EventLog()
        self._engine = AlertEngine.from_names(self._config.rules)
        self._on_window = on_window
        self._on_alert = on_alert
        self._manifest_emitted = False
        # Campaign-level aggregates (fed directly or via merge_trial).
        self._windows = []
        self._alerts = []
        self._summaries = []
        self._gain_bank = QuantileBank()
        self._node_bank = QuantileBank()
        self._max_gain: Optional[float] = None
        self._final_gain: Optional[float] = None
        self._trials_merged = 0
        # Per-run (event-path) state.
        self._run_open = False
        self._trial = 0
        self._n: Optional[int] = self._config.n
        self._rate: Optional[float] = self._config.rate
        self._bound: Optional[float] = self._config.bound_for(self._config.x)
        self._acc: Optional[WindowAccumulator] = None
        self._cum_nodes: Optional[np.ndarray] = None
        self._cum_requests = 0
        self._cum_hits = 0
        self._cum_backend = 0
        self._run_windows = 0
        self._run_alerts = 0
        # Chaos (fault-injection) state; inert unless begin_run(chaos=True).
        self._chaos_run = False
        self._down_nodes: Set[int] = set()
        self._win_max_down = 0
        self._cum_unavailable = 0
        self._min_effective_d: Optional[float] = None
        # Hierarchy state; inert unless begin_run(layers=...) declares a
        # cache tree's layer widths.
        self._layers: Optional[Tuple[int, ...]] = None
        self._cum_layer_hits: list = []
        self._cum_shard_hits: list = []
        self._layer_keys: list = []

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> MonitorConfig:
        """The (picklable) configuration; workers rebuild from this."""
        return self._config

    @property
    def events(self) -> EventLog:
        """The structured event log."""
        return self._events

    @property
    def windows(self) -> list:
        """Window snapshot records, in emission/merge order."""
        return self._windows

    @property
    def alerts(self) -> list:
        """Alert records, in emission/merge order."""
        return self._alerts

    @property
    def summaries(self) -> list:
        """Run-summary records, in emission/merge order."""
        return self._summaries

    @property
    def bound(self) -> Optional[float]:
        """The Theorem-2 bound in force (``None`` when unconfigured)."""
        return self._bound

    @property
    def final_gain(self) -> Optional[float]:
        """Final streaming gain of the last finalized/merged run."""
        return self._final_gain

    @property
    def max_gain(self) -> Optional[float]:
        """Largest final gain seen across runs/trials."""
        return self._max_gain

    def gain_estimates(self) -> dict:
        """P² quantiles over per-run/per-trial final gains."""
        return self._gain_bank.estimates()

    def node_load_estimates(self) -> dict:
        """P² quantiles over normalised per-window node loads."""
        return self._node_bank.estimates()

    # -- manifest ----------------------------------------------------------

    def emit_manifest(self, **extra) -> Optional[dict]:
        """Emit the manifest record once (no-op on repeat calls)."""
        if self._manifest_emitted:
            return None
        self._manifest_emitted = True
        return self._events.emit(
            {
                "type": "manifest",
                "schema": SCHEMA_VERSION,
                "config": self._config.to_dict(),
                **extra,
            }
        )

    # -- event path --------------------------------------------------------

    def begin_run(
        self,
        trial: int = 0,
        n: Optional[int] = None,
        rate: Optional[float] = None,
        chaos: bool = False,
        layers: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Start (or restart) ingesting one event-driven run.

        ``n`` and ``rate`` fall back to the config; the event engine
        always passes its own, so a bare ``MonitorConfig()`` works.
        ``chaos=True`` (set by the engine when fault injection is
        active) enables degraded-bound tracking: window snapshots and
        the run summary gain ``unavailable`` / ``nodes_down`` /
        ``effective_d`` / ``degraded_bound`` fields.  The default keeps
        every record byte-identical to a chaos-free monitor.

        ``layers`` (set by the engine when the front end is a
        :class:`~repro.cache.tree.CacheTree`) declares the hierarchy's
        shard count per layer and enables per-layer tracking: window
        snapshots gain a ``layer_hits`` map and the run summary a
        ``layers`` block reporting each layer's shard max-load against
        the DistCache two-choice bound, side by side with the Theorem-2
        gain estimate.  ``None`` (the default, and what degenerate
        single-shard trees produce) keeps every record byte-identical
        to a flat-cache monitor.
        """
        if self._run_open:
            raise ConfigurationError(
                "begin_run called while a run is open; finalize() it first"
            )
        n = self._config.n if n is None else n
        rate = self._config.rate if rate is None else rate
        if n is None or rate is None or rate <= 0:
            raise ConfigurationError(
                "event-path monitoring needs n and a positive rate "
                "(set them on MonitorConfig or pass them to begin_run)"
            )
        self._run_open = True
        self._trial = int(trial)
        self._n = int(n)
        self._rate = float(rate)
        self._bound = self._config.bound_for(self._config.x, n=self._n)
        self._acc = None
        self._cum_nodes = np.zeros(self._n, dtype=np.int64)
        self._cum_requests = 0
        self._cum_hits = 0
        self._cum_backend = 0
        self._run_windows = 0
        self._run_alerts = 0
        self._chaos_run = bool(chaos)
        self._down_nodes = set()
        self._win_max_down = 0
        self._cum_unavailable = 0
        self._min_effective_d = None
        self._layers = tuple(int(w) for w in layers) if layers else None
        if self._layers is not None:
            self._cum_layer_hits = [0] * len(self._layers)
            self._cum_shard_hits = [[0] * w for w in self._layers]
            self._layer_keys = [set() for _ in self._layers]
        else:
            self._cum_layer_hits = []
            self._cum_shard_hits = []
            self._layer_keys = []

    def _window_at(self, t: float) -> WindowAccumulator:
        """The accumulator covering ``t``, closing the previous window."""
        acc = self._acc
        index = int(t // self._config.window)
        if acc is None:
            acc = self._acc = WindowAccumulator(index, self._config.window, self._n)
        elif index != acc.index:
            self._close_window()
            acc = self._acc = WindowAccumulator(index, self._config.window, self._n)
        return acc

    def record_request(
        self,
        t: float,
        key: int,
        node: Optional[int] = None,
        layer: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        """Ingest one request at simulated time ``t``.

        ``node is None`` means the front-end cache absorbed it; an
        integer means it was forwarded to that back-end node.  Calls
        must arrive in non-decreasing ``t`` (the event scheduler's
        order).

        On hierarchy runs (``begin_run(layers=...)``), cache hits carry
        the ``(layer, shard)`` that served them so the per-layer
        max-load estimators can track the DistCache bound.  Flat runs
        never pass them and stay byte-identical.
        """
        acc = self._window_at(t)
        acc.record(key, node)
        self._cum_requests += 1
        if node is None:
            self._cum_hits += 1
            if layer is not None and self._layers is not None:
                acc.record_layer(layer)
                self._cum_layer_hits[layer] += 1
                self._layer_keys[layer].add(key)
                if shard is not None:
                    self._cum_shard_hits[layer][shard] += 1
        else:
            self._cum_backend += 1
            self._cum_nodes[node] += 1

    def record_node_event(self, t: float, node: int, up: bool) -> None:
        """Ingest one fault-injector transition (chaos runs only).

        Keeps the live down-set (and the window's worst case) that
        per-window ``effective_d`` derives from, and emits a
        ``node-event`` record so incident timelines survive into the
        event log.
        """
        node = int(node)
        if up:
            self._down_nodes.discard(node)
        else:
            self._down_nodes.add(node)
            self._win_max_down = max(self._win_max_down, len(self._down_nodes))
        self._events.emit(
            {
                "type": "node-event",
                "trial": self._trial,
                "t": t,
                "node": node,
                "up": bool(up),
                "nodes_down": len(self._down_nodes),
            }
        )
        self._metrics.counter("monitor_node_events_total").inc()

    def record_unavailable(self, t: float, key: int) -> None:
        """Ingest one request whose every replica was down at ``t``."""
        del key  # counted, not profiled — entropy tracks served traffic
        acc = self._window_at(t)
        acc.unavailable += 1
        self._cum_unavailable += 1

    def finalize(
        self,
        duration: float,
        suspects: Optional[dict] = None,
        attribution_alerts: Optional[list] = None,
    ) -> Optional[dict]:
        """Close the open window and emit the run summary.

        Returns the summary record (``None`` when no run was open).
        The summary's ``final_gain`` uses the full run duration, so it
        equals the end-of-run ``EventSimResult.normalized_max``.

        ``suspects`` / ``attribution_alerts`` (supplied by the engines
        when a :class:`~repro.obs.trace.FlightRecorder` was attached)
        land the trace layer's ranked attribution block in the summary
        and its ``attribution-concentration`` firings in the event log;
        untraced runs pass neither and stay byte-identical to the
        pre-trace schema.
        """
        if not self._run_open:
            return None
        self._close_window(final_t=duration)
        if attribution_alerts:
            for alert in attribution_alerts:
                self._emit_alert(alert)
                self._run_alerts += 1
        gain = self._running_gain(duration)
        summary = {
            "type": "run-summary",
            "trial": self._trial,
            "duration": duration,
            "requests": self._cum_requests,
            "hits": self._cum_hits,
            "backend": self._cum_backend,
            "final_gain": gain,
            "bound": self._bound,
            "windows": self._run_windows,
            "alerts": self._run_alerts,
        }
        if self._chaos_run:
            summary["unavailable"] = self._cum_unavailable
            summary["effective_d_min"] = self._min_effective_d
            summary["degraded_bound"] = self._config.degraded_bound_for(
                self._config.x, self._min_effective_d, n=self._n
            )
        if self._layers is not None:
            summary["layers"] = [
                self._layer_summary(layer) for layer in range(len(self._layers))
            ]
        if suspects is not None:
            summary["suspects"] = suspects
        self._events.emit(summary)
        self._summaries.append(summary)
        if gain is not None:
            self._final_gain = gain
            self._max_gain = gain if self._max_gain is None else max(self._max_gain, gain)
            self._gain_bank.observe(gain)
            self._metrics.gauge("monitor_gain").set(gain)
        self._run_open = False
        return summary

    def _layer_summary(self, layer: int) -> dict:
        """One layer's max-load report against the DistCache bound.

        ``balance_gain`` is the realised analogue of the Theorem-2 gain
        for the layer's shards: the busiest shard's hits over the even
        split ``hits / shards`` (``None`` when the layer served
        nothing).  ``distcache_bound`` is the two-choice max-load bound
        on hits per shard — :func:`repro.core.bounds.
        distcache_max_load_bound` with the config's ``k_prime`` — so
        the two report side by side in every run summary.
        """
        width = self._layers[layer]
        hits = self._cum_layer_hits[layer]
        keys = len(self._layer_keys[layer])
        shard_hits = self._cum_shard_hits[layer]
        shard_max = max(shard_hits) if shard_hits else 0
        bound = distcache_max_load_bound(
            hits, width, keys, self._config.k_prime
        )
        return {
            "layer": layer,
            "shards": width,
            "hits": hits,
            "keys": keys,
            "shard_max": shard_max,
            "balance_gain": (shard_max / (hits / width)) if hits else None,
            "distcache_bound": bound,
            "within_bound": shard_max <= bound,
        }

    def _running_gain(self, t: float) -> Optional[float]:
        """Running ``L_max / (R/n)`` at simulated time ``t``."""
        if t <= 0 or self._cum_nodes is None:
            return None
        max_rate = float(self._cum_nodes.max()) / t
        return max_rate / (self._rate / self._n)

    def _effective_d(self, nodes_down: int) -> float:
        """Mean surviving replicas per key: ``d * (1 - down fraction)``.

        With a fraction ``f`` of nodes down, each key's ``d`` replicas
        survive independently with probability ``1 - f`` (random
        partitioning places them uniformly), so the expected surviving
        choice is ``d (1 - f)`` — the quantity Theorem 2's constant
        ``k = log log n / log d`` degrades through.
        """
        return self._config.d * (1.0 - nodes_down / self._n)

    def _close_window(self, final_t: Optional[float] = None) -> None:
        acc = self._acc
        self._acc = None
        if acc is None or acc.requests == 0:
            return
        snapshot = acc.to_snapshot(self._trial, t_end=final_t)
        snapshot["running_gain"] = self._running_gain(snapshot["t_end"])
        snapshot["bound"] = self._bound
        if self._chaos_run:
            # Worst case over the window: transitions since the last
            # close, or the standing down-set if nothing changed.
            nodes_down = max(self._win_max_down, len(self._down_nodes))
            self._win_max_down = len(self._down_nodes)
            effective_d = self._effective_d(nodes_down)
            snapshot["unavailable"] = acc.unavailable
            snapshot["nodes_down"] = nodes_down
            snapshot["effective_d"] = effective_d
            snapshot["degraded_bound"] = self._config.degraded_bound_for(
                self._config.x, effective_d, n=self._n
            )
            if self._min_effective_d is None or effective_d < self._min_effective_d:
                self._min_effective_d = effective_d
        if self._layers is not None:
            snapshot["layer_hits"] = {
                str(layer): acc.layer_hits.get(layer, 0)
                for layer in range(len(self._layers))
            }
        seconds = snapshot["seconds"]
        if seconds > 0:
            even = self._rate / self._n
            for count in acc.node_counts[acc.node_counts > 0].tolist():
                self._node_bank.observe(count / seconds / even)
        context = _RuleContext(self._config, self._rate / self._n)
        fired = self._engine.evaluate(snapshot, context)
        snapshot["alerts"] = [alert["rule"] for alert in fired]
        self._emit_window(snapshot)
        for alert in fired:
            self._emit_alert(alert)
        self._run_windows += 1
        self._run_alerts += len(fired)

    # -- trial path --------------------------------------------------------

    def record_trial(
        self,
        trial: int,
        vector,
        campaign: Optional[str] = None,
        x: Optional[int] = None,
        c: Optional[int] = None,
        d: Optional[int] = None,
        effective_d: Optional[float] = None,
    ) -> dict:
        """Ingest one Monte-Carlo trial's :class:`~repro.types.LoadVector`.

        Each trial becomes one trial-clock window record; ``x`` (the
        sweep point's attack width) and ``c``/``d`` (its system shape),
        when the campaign knows them, refresh the Theorem-2 bound per
        call.  ``effective_d`` (set by chaos-enabled Monte-Carlo trials)
        adds degraded-bound fields and arms the ``degraded-bound`` rule.
        """
        gain = vector.normalized_max
        bound = self._config.bound_for(
            x if x is not None else self._config.x,
            n=vector.n_nodes, c=c, d=d,
        )
        snapshot = {
            "type": "window",
            "clock": "trial",
            "trial": int(trial),
            "index": int(trial),
            "campaign": campaign,
            "gain": gain,
            "max_load": vector.max_load,
            "bound": bound,
        }
        if effective_d is not None:
            snapshot["effective_d"] = float(effective_d)
            snapshot["degraded_bound"] = self._config.degraded_bound_for(
                x if x is not None else self._config.x,
                effective_d, n=vector.n_nodes, c=c,
            )
        even = vector.total_rate / vector.n_nodes if vector.total_rate else None
        context = _RuleContext(self._config, even, d=d)
        fired = self._engine.evaluate(snapshot, context)
        snapshot["alerts"] = [alert["rule"] for alert in fired]
        self._emit_window(snapshot)
        for alert in fired:
            self._emit_alert(alert)
        self._final_gain = gain
        self._max_gain = gain if self._max_gain is None else max(self._max_gain, gain)
        self._gain_bank.observe(gain)
        self._metrics.counter("monitor_trials_total").inc()
        self._metrics.gauge("monitor_gain").set(gain)
        return snapshot

    # -- shared emission ---------------------------------------------------

    def _emit_window(self, snapshot: dict) -> None:
        self._events.emit(snapshot)
        self._windows.append(snapshot)
        self._metrics.counter("monitor_windows_total").inc()
        if snapshot.get("running_gain") is not None:
            self._metrics.gauge("monitor_gain").set(snapshot["running_gain"])
        if self._on_window is not None:
            self._on_window(snapshot)

    def _emit_alert(self, alert: dict) -> None:
        self._events.emit(alert)
        self._alerts.append(alert)
        self._metrics.counter("monitor_alerts_total", rule=alert["rule"]).inc()
        if self._on_alert is not None:
            self._on_alert(alert)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump a worker ships back for trial-order merging."""
        return {
            "schema": SCHEMA_VERSION,
            "records": list(self._events.records),
            "final_gain": self._final_gain,
            "max_gain": self._max_gain,
        }

    def merge_trial(self, snapshot: dict) -> None:
        """Fold one per-trial monitor snapshot into this campaign monitor.

        MUST be called in trial order (the parallel executor guarantees
        it); that ordering is what keeps merged monitor output identical
        across worker counts.  Worker manifests are dropped — the
        campaign monitor owns the single manifest.  Metrics are *not*
        re-recorded here: worker-side registries already carried the
        monitor counters and merge through the metrics path.
        """
        for record in snapshot.get("records", ()):
            if record["type"] == "manifest":
                continue
            self._events.emit(record)
            if record["type"] == "window":
                self._windows.append(record)
                if self._on_window is not None:
                    self._on_window(record)
            elif record["type"] == "alert":
                self._alerts.append(record)
                if self._on_alert is not None:
                    self._on_alert(record)
            elif record["type"] == "run-summary":
                self._summaries.append(record)
        final = snapshot.get("final_gain")
        if final is not None:
            self._final_gain = final
            self._max_gain = final if self._max_gain is None else max(self._max_gain, final)
            self._gain_bank.observe(final)
        self._trials_merged += 1

    def summary(self) -> dict:
        """Campaign-level aggregate view (what the dashboard renders)."""
        return {
            "schema": SCHEMA_VERSION,
            "config": self._config.to_dict(),
            "bound": self._bound,
            "windows": len(self._windows),
            "alerts": len(self._alerts),
            "runs": len(self._summaries) + (1 if self._run_open else 0),
            "trials_merged": self._trials_merged,
            "final_gain": self._final_gain,
            "max_gain": self._max_gain,
            "gain_quantiles": _finite_dict(self._gain_bank.estimates()),
            "node_load_quantiles": _finite_dict(self._node_bank.estimates()),
        }


def _finite_dict(values: dict) -> dict:
    """Replace non-finite floats with ``None`` (JSONL stays strict)."""
    out = {}
    for key, value in values.items():
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            out[key] = None
        else:
            out[key] = value
    return out


class NullMonitor(LoadMonitor):
    """The disabled monitor: records nothing, allocates nothing per call.

    Instrumented paths guard on ``monitor.enabled`` (or ``monitor is
    None``), so attaching the null monitor leaves a run byte-identical
    to an unmonitored one — the same contract the null registry keeps.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(MonitorConfig())

    def emit_manifest(self, **extra) -> Optional[dict]:
        return None

    def begin_run(
        self, trial: int = 0, n=None, rate=None, chaos=False, layers=None
    ) -> None:
        pass

    def record_request(self, t, key, node=None, layer=None, shard=None) -> None:
        pass

    def record_node_event(self, t, node, up) -> None:
        pass

    def record_unavailable(self, t, key) -> None:
        pass

    def finalize(self, duration, suspects=None, attribution_alerts=None) -> Optional[dict]:
        return None

    def record_trial(
        self, trial, vector, campaign=None, x=None, c=None, d=None, effective_d=None
    ) -> dict:
        return {}

    def merge_trial(self, snapshot) -> None:
        pass

    def snapshot(self) -> dict:
        return {"schema": SCHEMA_VERSION, "records": [], "final_gain": None,
                "max_gain": None}


#: Process-wide shared no-op monitor.
NULL_MONITOR = NullMonitor()


def as_monitor(monitor: Optional[LoadMonitor]) -> LoadMonitor:
    """Normalise an optional ``monitor=`` argument: ``None`` -> no-op."""
    return NULL_MONITOR if monitor is None else monitor

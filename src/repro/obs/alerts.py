"""Rule-based alerting over window snapshots.

Five built-in rules, mirroring what the paper's quantities make
checkable online:

- ``gain-over-bound`` — the running attack gain ``L_max / (R/n)``
  exceeded the Theorem-2 bound ``1 + (1 - c + n k)/(x - 1)`` for the
  configured ``(n, d, c, x)``.  Under the theorem's assumptions this
  should (essentially) never fire; a firing means the configuration is
  outside the theorem (or the bound's constant is mis-calibrated).
- ``entropy-flat`` — the window's normalised key-frequency entropy is
  above the flatness threshold over non-trivial support: the Theorem-1
  uniform-prefix fingerprint (see :mod:`repro.analysis.detection`).
- ``node-overload`` — one node's offered rate within the window
  exceeded ``overload_factor * R/n``.  The default factor 4.0 matches
  the event engine's default per-node capacity headroom, so a firing
  means a node was pushed past what the default provisioning serves.
- ``degraded-bound`` — failures shrank the window's effective
  replication choice below the configured ``d`` (chaos runs only: the
  window carries ``effective_d`` when fault injection is active).  The
  Theorem-2 constant ``k = log log n / log d`` grows as ``d`` shrinks,
  so each firing comes with a refreshed, *larger* bound in the window's
  ``degraded_bound`` field.
- ``attribution-concentration`` — one key-prefix bucket took at least
  ``concentration_threshold`` of a window's *traced* requests (trace
  runs only: evaluated by the attribution engine,
  :mod:`repro.obs.attribution`, over the sampled trace stream with the
  :class:`~repro.obs.trace.TraceConfig` as the rule context).  A firing
  names the suspected attack prefix — the signal a closed-loop defense
  would rate-limit.

Rules are pure functions of a window snapshot plus the monitor
configuration, so alert streams are deterministic and identical across
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["AlertRule", "AlertEngine", "BUILTIN_RULES"]

#: A rule callback: ``(snapshot, config) -> None`` (quiet) or
#: ``(observed_value, threshold)`` (firing).
RuleFn = Callable[[dict, "object"], Optional[Tuple[float, float]]]


@dataclass(frozen=True)
class AlertRule:
    """One named alert predicate."""

    name: str
    fn: RuleFn
    description: str = ""

    def check(self, snapshot: dict, config) -> Optional[Tuple[float, float]]:
        """Evaluate against one window snapshot."""
        return self.fn(snapshot, config)


def _gain_over_bound(snapshot: dict, config) -> Optional[Tuple[float, float]]:
    bound = snapshot.get("bound")
    gain = snapshot.get("running_gain", snapshot.get("gain"))
    if bound is None or gain is None:
        return None
    if gain > bound:
        return float(gain), float(bound)
    return None


def _entropy_flat(snapshot: dict, config) -> Optional[Tuple[float, float]]:
    entropy = snapshot.get("normalized_entropy")
    distinct = snapshot.get("distinct_keys", 0)
    if entropy is None or distinct <= config.entropy_min_keys:
        return None
    if entropy >= config.entropy_threshold:
        return float(entropy), float(config.entropy_threshold)
    return None


def _node_overload(snapshot: dict, config) -> Optional[Tuple[float, float]]:
    even_split = config.even_split()
    if even_split is None:
        return None
    threshold = config.overload_factor * even_split
    if "node_max" in snapshot:
        seconds = snapshot.get("seconds") or 0.0
        if seconds <= 0.0:
            return None
        rate = snapshot["node_max"] / seconds
    elif "max_load" in snapshot:
        rate = snapshot["max_load"]
    else:
        return None
    if rate > threshold:
        return float(rate), float(threshold)
    return None


def _attribution_concentration(snapshot: dict, config) -> Optional[Tuple[float, float]]:
    share = snapshot.get("attribution_top_share")
    samples = snapshot.get("attribution_samples", 0)
    threshold = getattr(config, "concentration_threshold", None)
    if share is None or threshold is None:
        return None
    if samples < getattr(config, "min_samples", 0):
        return None
    if share >= threshold:
        return float(share), float(threshold)
    return None


def _degraded_bound(snapshot: dict, config) -> Optional[Tuple[float, float]]:
    effective_d = snapshot.get("effective_d")
    d = getattr(config, "d", None)
    if effective_d is None or d is None:
        return None
    if effective_d < d:
        return float(effective_d), float(d)
    return None


#: Name -> rule for the built-ins.
BUILTIN_RULES: Dict[str, AlertRule] = {
    rule.name: rule
    for rule in (
        AlertRule(
            "gain-over-bound",
            _gain_over_bound,
            "running attack gain exceeded the Theorem-2 bound",
        ),
        AlertRule(
            "entropy-flat",
            _entropy_flat,
            "window entropy matches the Theorem-1 uniform-prefix fingerprint",
        ),
        AlertRule(
            "node-overload",
            _node_overload,
            "a node's offered window rate exceeded overload_factor * R/n",
        ),
        AlertRule(
            "degraded-bound",
            _degraded_bound,
            "failures shrank the effective replication choice below d",
        ),
        AlertRule(
            "attribution-concentration",
            _attribution_concentration,
            "one key-prefix bucket dominated a window's traced requests",
        ),
    )
}


class AlertEngine:
    """Evaluates a rule set against window snapshots.

    Parameters
    ----------
    rules:
        The rules to run, in evaluation order.  Defaults to the three
        built-ins; pass a subset (or custom :class:`AlertRule` objects)
        to specialise.
    """

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        self.rules: Tuple[AlertRule, ...] = (
            tuple(BUILTIN_RULES.values()) if rules is None else tuple(rules)
        )

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "AlertEngine":
        """Build an engine from built-in rule names."""
        unknown = [n for n in names if n not in BUILTIN_RULES]
        if unknown:
            raise ValueError(
                f"unknown alert rules {unknown}; available: {sorted(BUILTIN_RULES)}"
            )
        return cls([BUILTIN_RULES[n] for n in names])

    def evaluate(self, snapshot: dict, config) -> List[dict]:
        """Run every rule; returns alert records for the firings."""
        alerts: List[dict] = []
        for rule in self.rules:
            outcome = rule.check(snapshot, config)
            if outcome is None:
                continue
            value, threshold = outcome
            alerts.append(
                {
                    "type": "alert",
                    "rule": rule.name,
                    "trial": snapshot.get("trial"),
                    "window": snapshot.get("index"),
                    "t": snapshot.get("t_end"),
                    "value": value,
                    "threshold": threshold,
                }
            )
        return alerts

"""Fixed-size streaming quantile sketch (the P-squared algorithm).

Jain & Chlamtac's P² method (CACM 1985) tracks one quantile of a stream
with five markers — constant memory, no stored samples, and completely
deterministic: the estimate is a pure function of the observation
sequence, so it inherits the repository's serial-equals-parallel
guarantee as long as streams are fed in a deterministic order (the
monitor feeds per-window values in simulated-time order and per-trial
values in trial order).

Accuracy: on the smooth distributions this repository produces (node
load shares, attack gains), the five-marker estimate lands within a few
percent of the exact order statistic once a few dozen observations are
in; ``tests/test_obs_monitor.py`` pins the tolerance.  For exact small
streams (fewer than five observations) the sketch falls back to the
true order statistic of the buffered values.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["P2Quantile", "QuantileBank", "SpaceSaving"]


class P2Quantile:
    """Streaming estimate of one quantile ``q`` via the P² algorithm."""

    __slots__ = ("q", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        """Number of observations consumed."""
        return self._count

    def observe(self, value: float) -> None:
        """Feed one observation into the sketch."""
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions
        # Locate the cell and update the extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]
        # Adjust the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    def result(self) -> float:
        """Current estimate (``nan`` before any observation).

        With fewer than five observations the exact nearest-rank order
        statistic of the buffered values is returned.
        """
        if self._count == 0:
            return float("nan")
        if self._count < 5:
            rank = max(1, math.ceil(self.q * self._count - 1e-9))
            return self._heights[rank - 1]
        return self._heights[2]


class SpaceSaving:
    """Metwally-style space-saving heavy-hitter sketch.

    Tracks at most ``capacity`` counters; when a new item arrives with
    every counter occupied, the smallest counter is handed over to the
    newcomer (its old count becomes the newcomer's error bound).  Any
    item whose true frequency exceeds ``stream / capacity`` is
    guaranteed to be present, and every reported count overestimates the
    truth by at most the reported ``error``.

    Like the P² sketches, the state is a pure function of the offer
    sequence: evictions break count ties on the smallest item, so the
    sketch inherits the serial-equals-parallel guarantee whenever offers
    arrive in a deterministic order (the attribution engine feeds
    sampled keys in simulated-time order and merges trials in trial
    order).
    """

    __slots__ = ("capacity", "_counts", "_errors", "_offered")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counts: Dict[int, int] = {}
        self._errors: Dict[int, int] = {}
        self._offered = 0

    @property
    def offered(self) -> int:
        """Total count offered into the sketch."""
        return self._offered

    def __len__(self) -> int:
        return len(self._counts)

    def offer(self, item: int, count: int = 1) -> None:
        """Feed ``count`` observations of ``item`` into the sketch."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._offered += count
        counts = self._counts
        if item in counts:
            counts[item] += count
            return
        if len(counts) < self.capacity:
            counts[item] = count
            self._errors[item] = 0
            return
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        del self._errors[victim]
        counts[item] = floor + count
        self._errors[item] = floor

    def items(self) -> List[Tuple[int, int, int]]:
        """``(item, count, error)`` triples, largest count first.

        Ties break on the smaller item so the ranking is deterministic.
        """
        return sorted(
            ((item, count, self._errors[item]) for item, count in self._counts.items()),
            key=lambda row: (-row[1], row[0]),
        )

    def top(self, k: int) -> List[Tuple[int, int, int]]:
        """The ``k`` largest counters (fewer when the stream was short)."""
        return self.items()[:k]


class QuantileBank:
    """A small battery of P² sketches plus exact count/min/max.

    The conventional reporting trio (p50/p95/p99) by default; the whole
    bank stays O(1) memory regardless of stream length.
    """

    __slots__ = ("_sketches", "_count", "_min", "_max", "_sum")

    DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

    def __init__(self, quantiles: Optional[Iterable[float]] = None) -> None:
        qs = tuple(quantiles) if quantiles is not None else self.DEFAULT_QUANTILES
        if not qs:
            raise ValueError("need at least one quantile")
        self._sketches = {q: P2Quantile(q) for q in qs}
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Number of observations consumed."""
        return self._count

    @property
    def min(self) -> Optional[float]:
        """Exact smallest observation (``None`` before any)."""
        return self._min

    @property
    def max(self) -> Optional[float]:
        """Exact largest observation (``None`` before any)."""
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean (``nan`` before any observation)."""
        if self._count == 0:
            return float("nan")
        return self._sum / self._count

    def observe(self, value: float) -> None:
        """Feed one observation into every sketch."""
        value = float(value)
        for sketch in self._sketches.values():
            sketch.observe(value)
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def estimates(self) -> Dict[str, float]:
        """``{"p50": ..., "p95": ...}`` plus count/min/max/mean."""
        out: Dict[str, float] = {
            f"p{round(q * 100):02d}": self._sketches[q].result()
            for q in self._sketches
        }
        out["count"] = self._count
        out["mean"] = self.mean
        out["min"] = float("nan") if self._min is None else self._min
        out["max"] = float("nan") if self._max is None else self._max
        return out

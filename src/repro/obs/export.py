"""Exporters: registry + tracer -> JSON document or Prometheus text.

Two formats, one source of truth:

- :func:`export_json` emits a single JSON-able dict — counters, gauges,
  histograms (with bucket detail *and* the p50/p95/p99 trio) and the
  tracer's span aggregates — for dashboards, diffing and provenance
  artifacts.  :func:`write_json` persists it.
- :func:`to_prometheus` renders the Prometheus text exposition format
  (``# TYPE`` headers, ``_bucket``/``_sum``/``_count`` histogram series,
  span aggregates as summary-style quantile series), so a scrape
  endpoint or node_exporter textfile collector can serve the same data.

Both outputs are deterministically ordered (sorted by metric name, then
labels), so exports of identical registries are byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["export_json", "write_json", "to_prometheus"]


def export_json(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> dict:
    """Bundle registry and tracer state into one JSON-able document."""
    document: dict = {"version": 1}
    if extra:
        document.update(dict(extra))
    if metrics is not None:
        document["metrics"] = {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in metrics.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in metrics.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    **h.percentiles(),
                }
                for h in metrics.histograms()
            ],
        }
    if tracer is not None:
        document["trace"] = tracer.to_dict()
    return document


def write_json(
    path: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write :func:`export_json` output to ``path`` (created/overwritten)."""
    path = Path(path)
    document = export_json(metrics=metrics, tracer=tracer, extra=extra)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False, default=_json_default)
        + "\n",
        encoding="utf-8",
    )
    return path


def _json_default(value: object) -> object:
    """Last-resort JSON coercion (numpy scalars and similar)."""
    for attr in ("item",):  # numpy scalar protocol
        method = getattr(value, attr, None)
        if callable(method):
            return method()
    raise TypeError(f"not JSON serializable: {value!r}")  # pragma: no cover


def _sanitize(name: str) -> str:
    """Coerce a metric or label name into the Prometheus charset."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: Optional[Mapping[str, str]] = None) -> str:
    items = [(_sanitize(k), str(v)) for k, v in labels]
    if extra:
        items.extend((_sanitize(k), str(v)) for k, v in extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(items))
    return "{" + body + "}"


def _format(value: float) -> str:
    if value != value:  # nan
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    prefix: str = "repro_",
) -> str:
    """Render the Prometheus text exposition format (version 0.0.4)."""
    lines = []
    typed = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    if metrics is not None:
        for counter in metrics.counters():
            name = prefix + _sanitize(counter.name)
            header(name, "counter")
            lines.append(f"{name}{_labels_text(counter.labels)} {_format(counter.value)}")
        for gauge in metrics.gauges():
            name = prefix + _sanitize(gauge.name)
            header(name, "gauge")
            lines.append(f"{name}{_labels_text(gauge.labels)} {_format(gauge.value)}")
        for histogram in metrics.histograms():
            name = prefix + _sanitize(histogram.name)
            header(name, "histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_labels_text(histogram.labels, {'le': _format(bound)})} "
                    f"{cumulative}"
                )
            cumulative += histogram.counts[-1]
            lines.append(
                f"{name}_bucket{_labels_text(histogram.labels, {'le': '+Inf'})} {cumulative}"
            )
            lines.append(
                f"{name}_sum{_labels_text(histogram.labels)} {_format(histogram.sum)}"
            )
            lines.append(f"{name}_count{_labels_text(histogram.labels)} {histogram.count}")
    if tracer is not None:
        name = prefix + "span_duration_seconds"
        aggregates = tracer.aggregates()
        if aggregates:
            header(name, "summary")
        for path, stats in aggregates.items():
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(
                    f"{name}{_labels_text((), {'span': path, 'quantile': quantile})} "
                    f"{_format(stats[key + '_seconds'])}"
                )
            lines.append(
                f"{name}_sum{_labels_text((), {'span': path})} "
                f"{_format(stats['total_seconds'])}"
            )
            lines.append(f"{name}_count{_labels_text((), {'span': path})} {stats['count']}")
    return "\n".join(lines) + ("\n" if lines else "")

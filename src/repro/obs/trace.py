"""Causal request tracing: deterministic sampling + flight recorder.

The monitor (:mod:`repro.obs.monitor`) says *that* a bound is violated;
this module records *which requests* did it.  Three pieces:

- **hash-based deterministic samplers** — the default
  :class:`HashSampler` keys a BLAKE2b MAC on ``(seed, trial)`` and
  admits a request when the 64-bit digest of ``(index, key)`` falls
  under ``sample * 2^64``.  No call ever touches a
  :class:`numpy.random.Generator`, so attaching a tracer leaves every
  engine RNG stream — and therefore every golden fixture —
  byte-identical.  Samplers are registry components (namespace
  ``sampler``) so scenario specs can select them by name.
- a bounded **flight-recorder ring buffer** (:class:`FlightRecorder`) of
  per-request causal records: key, prefix bucket, ground-truth client,
  replica group, chosen node, cache-tree ``(layer, shard)`` attribution,
  queue wait, service time, and chaos/failover annotations, exported as
  schema-versioned JSONL.
- the streaming **attribution engine**
  (:mod:`repro.obs.attribution`) each run feeds, producing the ranked
  ``suspects`` block and ``attribution-concentration`` alerts that land
  in monitor run summaries.

Determinism contract (mirrors the monitor's): ``trace=None`` is
byte-identical to an untraced run; with tracing on, per-trial recorders
run inside workers, snapshot, and merge in trial order
(:meth:`FlightRecorder.merge_trial`), so the trace JSONL and every
suspects block are bit-identical across worker counts *and* across the
legacy/fast engines (``tests/test_obs_trace.py`` pins both).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import DEFAULT_SEED
from ..scenario.registry import register_component
from .attribution import AttributionEngine
from .events import _coerce

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceConfig",
    "HashSampler",
    "StrideSampler",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_trace",
]

#: Version stamp written into every trace-manifest record.  The trace
#: log is versioned independently of the monitor's event-log schema
#: (:data:`repro.obs.events.SCHEMA_VERSION`) — that version is embedded
#: in golden fixtures and must not move when the trace format evolves.
TRACE_SCHEMA_VERSION = 1

_PACK = struct.Struct("<qq").pack


def _mac_key(seed: Optional[int], trial: int) -> bytes:
    """The 32-byte BLAKE2b MAC key for ``(seed, trial)``."""
    root = DEFAULT_SEED if seed is None else int(seed)
    return blake2b(
        _PACK(root, int(trial)), digest_size=32, person=b"repro-trace"
    ).digest()


class HashSampler:
    """Keyed-BLAKE2b threshold sampler over ``(seed, key, index)``.

    ``admit(key, index)`` is True when
    ``BLAKE2b(index || key, key=MAC(seed, trial)) < sample * 2^64`` —
    a pure function of the identifiers, consuming no RNG stream.  The
    admitted fraction converges to ``sample`` (hypothesis-tested) and
    the decision for a given request never depends on how many other
    requests were traced.
    """

    name = "hash"

    def __init__(self, seed: Optional[int], sample: float, trial: int = 0) -> None:
        self._sample = float(sample)
        self._key = _mac_key(seed, trial)
        # Threshold on the digest as a 64-bit little-endian fraction.
        self._cut = int(self._sample * float(2**64))

    def admit(self, key: int, index: int) -> bool:
        """Whether the request at stream position ``index`` is traced."""
        if self._sample >= 1.0:
            return True
        if self._cut <= 0:
            return False
        digest = blake2b(
            _PACK(int(index), int(key)), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "little") < self._cut

    def mask(self, keys: np.ndarray, start: int = 0) -> np.ndarray:
        """Vectorised admit decisions for a key stream."""
        if self._sample >= 1.0:
            return np.ones(len(keys), dtype=bool)
        if self._cut <= 0:
            return np.zeros(len(keys), dtype=bool)
        mac, pack, cut = self._key, _PACK, self._cut
        return np.fromiter(
            (
                int.from_bytes(
                    blake2b(pack(i, int(k)), digest_size=8, key=mac).digest(),
                    "little",
                )
                < cut
                for i, k in enumerate(keys.tolist(), start)
            ),
            dtype=bool,
            count=len(keys),
        )


class StrideSampler:
    """Every ``round(1/sample)``-th request, with a keyed phase offset.

    Cheaper than hashing per request but correlated with arrival order;
    the hash sampler is the default.  The phase is derived from the same
    ``(seed, trial)`` MAC so two trials do not trace the same stream
    positions.
    """

    name = "stride"

    def __init__(self, seed: Optional[int], sample: float, trial: int = 0) -> None:
        self._sample = float(sample)
        if self._sample >= 1.0:
            self._stride = 1
        elif self._sample <= 0.0:
            self._stride = 0
        else:
            self._stride = max(1, round(1.0 / self._sample))
        digest = blake2b(b"stride-phase", digest_size=8, key=_mac_key(seed, trial))
        self._phase = (
            int.from_bytes(digest.digest(), "little") % self._stride
            if self._stride > 1
            else 0
        )

    def admit(self, key: int, index: int) -> bool:
        del key
        if self._stride == 0:
            return False
        return (int(index) - self._phase) % self._stride == 0

    def mask(self, keys: np.ndarray, start: int = 0) -> np.ndarray:
        n = len(keys)
        if self._stride == 0:
            return np.zeros(n, dtype=bool)
        if self._stride == 1:
            return np.ones(n, dtype=bool)
        indices = np.arange(start, start + n, dtype=np.int64)
        return (indices - self._phase) % self._stride == 0


#: Sampler kinds selectable via :attr:`TraceConfig.sampler`.
SAMPLERS: Dict[str, type] = {
    HashSampler.name: HashSampler,
    StrideSampler.name: StrideSampler,
}


@dataclass(frozen=True)
class TraceConfig:
    """Plain-data trace configuration (picklable, spawn-safe).

    Parameters
    ----------
    sample:
        Fraction of requests to trace, in ``[0, 1]``.  ``1.0`` traces
        everything (tests); production-shaped runs use ~``0.01``.
    sampler:
        Sampler kind (:data:`SAMPLERS`): ``"hash"`` (default, keyed
        BLAKE2b threshold) or ``"stride"``.
    capacity:
        Flight-recorder ring bound: the most recent ``capacity`` traced
        records are retained, older ones are evicted (and counted).
    prefix_buckets:
        Key-prefix granularity for attribution: key ``k`` lands in
        bucket ``k * prefix_buckets // m``.
    top_k:
        Rows per dimension in the ranked suspects block; the
        space-saving key sketch keeps ``8 * top_k`` counters.
    window:
        Attribution window width in simulated seconds (aligns with the
        monitor's default so alerts line up on the same timeline).
    attribution:
        Disable to record causal traces without the streaming
        aggregation (the suspects block and alerts disappear).
    concentration_threshold:
        The ``attribution-concentration`` rule fires when one prefix
        bucket takes at least this share of a window's traced requests.
    min_samples:
        Windows with fewer traced requests than this never fire the
        concentration rule (tiny windows are trivially concentrated).
    """

    sample: float = 1.0
    sampler: str = "hash"
    capacity: int = 65536
    prefix_buckets: int = 64
    top_k: int = 8
    window: float = 0.1
    attribution: bool = True
    concentration_threshold: float = 0.5
    min_samples: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample <= 1.0:
            raise ConfigurationError(
                f"sample must be in [0, 1], got {self.sample}"
            )
        if self.sampler not in SAMPLERS:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; "
                f"choose from {sorted(SAMPLERS)}"
            )
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity}"
            )
        if self.prefix_buckets < 1:
            raise ConfigurationError(
                f"prefix_buckets must be positive, got {self.prefix_buckets}"
            )
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be positive, got {self.top_k}")
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if not 0.0 < self.concentration_threshold <= 1.0:
            raise ConfigurationError(
                "concentration_threshold must be in (0, 1], got "
                f"{self.concentration_threshold}"
            )
        if self.min_samples < 0:
            raise ConfigurationError(
                f"min_samples must be non-negative, got {self.min_samples}"
            )

    def make_sampler(self, seed: Optional[int], trial: int):
        """Instantiate the configured sampler for one trial."""
        return SAMPLERS[self.sampler](seed, self.sample, trial)

    def to_dict(self) -> dict:
        """JSON-able form for the trace manifest."""
        return {
            "sample": self.sample,
            "sampler": self.sampler,
            "capacity": self.capacity,
            "prefix_buckets": self.prefix_buckets,
            "top_k": self.top_k,
            "window": self.window,
            "attribution": self.attribution,
            "concentration_threshold": self.concentration_threshold,
            "min_samples": self.min_samples,
        }


def _build_hash_trace(ctx, **params) -> TraceConfig:
    del ctx
    return TraceConfig(sampler="hash", **params)


def _build_stride_trace(ctx, **params) -> TraceConfig:
    del ctx
    return TraceConfig(sampler="stride", **params)


register_component(
    "sampler", "hash", example={"sample": 0.5}, builder=_build_hash_trace
)(HashSampler)
register_component(
    "sampler", "stride", example={"sample": 0.5}, builder=_build_stride_trace
)(StrideSampler)


class FlightRecorder:
    """Bounded causal-trace recorder + per-run attribution aggregation.

    Engine protocol (mirrors :class:`~repro.obs.monitor.LoadMonitor`):
    :meth:`begin_run` -> :meth:`sample_mask` -> :meth:`record_hit` /
    :meth:`record_backend` / :meth:`record_unavailable` per admitted
    request -> :meth:`finalize`, which returns the trial's suspects
    block and concentration alerts for the engine to hand to the
    monitor.  Serial campaigns reuse one recorder across trials;
    parallel campaigns build one per trial inside the worker and merge
    snapshots in trial order.
    """

    enabled = True

    def __init__(
        self, config: Optional[TraceConfig] = None, seed: Optional[int] = None
    ) -> None:
        self._config = config if config is not None else TraceConfig()
        self._seed = seed
        # Campaign-level state (fed by finalize() or merge_trial()).
        self._records: List[dict] = []
        self._appended = 0
        self._sampled = 0
        self._seen = 0
        self._alerts: List[dict] = []
        self._summaries: List[dict] = []
        self._cum = AttributionEngine(self._config, trial=-1)
        self._trials_merged = 0
        # Per-run state.
        self._run_open = False
        self._trial = 0
        self._m: Optional[int] = None
        self._chaos_run = False
        self._client_map: Optional[np.ndarray] = None
        self._group_of: Optional[Callable] = None
        self._run_attr: Optional[AttributionEngine] = None
        self._run_sampled = 0

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> TraceConfig:
        """The (picklable) configuration; workers rebuild from this."""
        return self._config

    @property
    def records(self) -> List[dict]:
        """Retained trace records, oldest first (live reference)."""
        return self._records

    @property
    def sampled(self) -> int:
        """Requests admitted by the sampler across all runs."""
        return self._sampled

    @property
    def seen(self) -> int:
        """Requests offered to the sampler across all runs."""
        return self._seen

    @property
    def evicted(self) -> int:
        """Traced records pushed out of the bounded ring."""
        return self._appended - len(self._records)

    @property
    def alerts(self) -> List[dict]:
        """``attribution-concentration`` alert records, in order."""
        return self._alerts

    @property
    def summaries(self) -> List[dict]:
        """Per-trial trace summaries, in trial order."""
        return self._summaries

    # -- engine protocol ---------------------------------------------------

    def begin_run(
        self,
        trial: int = 0,
        m: int = 1,
        chaos: bool = False,
        client_map: Optional[np.ndarray] = None,
        group_of: Optional[Callable] = None,
    ) -> None:
        """Start ingesting one event-driven run.

        ``m`` sizes the prefix buckets, ``client_map`` (key -> ground
        truth client id, from the workload) tags records, ``group_of``
        (the cluster's ``replica_group``) resolves replica groups for
        traced records.  ``chaos=True`` adds an ``attempts`` field to
        every record of the run — chaos-free records stay identical to
        the fast kernel's, the differential contract.
        """
        if self._run_open:
            raise ConfigurationError(
                "begin_run called while a run is open; finalize() it first"
            )
        self._run_open = True
        self._trial = int(trial)
        self._m = int(m)
        self._chaos_run = bool(chaos)
        self._client_map = client_map
        self._group_of = group_of
        self._run_attr = (
            AttributionEngine(self._config, trial=self._trial)
            if self._config.attribution
            else None
        )
        self._run_sampled = 0

    def sample_mask(self, keys: np.ndarray) -> np.ndarray:
        """Admit decisions for the run's key stream (consumes no RNG)."""
        sampler = self._config.make_sampler(self._seed, self._trial)
        mask = sampler.mask(np.asarray(keys))
        self._seen += len(mask)
        return mask

    def _emit(self, record: dict) -> dict:
        self._sampled += 1
        self._run_sampled += 1
        self._appended += 1
        records = self._records
        records.append(record)
        if len(records) > self._config.capacity:
            del records[0]
        if self._run_attr is not None:
            self._run_attr.add(
                record["t"],
                record["prefix"],
                record["client"],
                record["key"],
                backend=not record["hit"],
            )
        return record

    def _base(self, t: float, key: int, index: int, hit: bool) -> dict:
        key = int(key)
        record = {
            "type": "trace",
            "trial": self._trial,
            "i": int(index),
            "t": float(t),
            "key": key,
            "prefix": key * self._config.prefix_buckets // self._m,
            "client": (
                int(self._client_map[key]) if self._client_map is not None else 0
            ),
            "group": (
                [int(node) for node in self._group_of(key)]
                if self._group_of is not None
                else None
            ),
            "hit": bool(hit),
            "node": None,
            "layer": None,
            "shard": None,
            "wait": None,
            "service": None,
            "status": "hit" if hit else "served",
        }
        if self._chaos_run:
            record["attempts"] = 1
        return record

    def record_hit(
        self,
        t: float,
        key: int,
        index: int,
        layer: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> dict:
        """Trace one front-end cache hit (with its tree path, if any)."""
        record = self._base(t, key, index, hit=True)
        if layer is not None:
            record["layer"] = int(layer)
            record["shard"] = int(shard) if shard is not None else None
        return self._emit(record)

    def record_backend(
        self, t: float, key: int, index: int, node: int, attempts: int = 1
    ) -> dict:
        """Trace one back-end dispatch; the queue layer fills the rest.

        Returns the live record: :class:`~repro.sim.queueing.NodeServer`
        (legacy) or the batched drain (fast kernel) completes it with
        ``wait`` / ``service`` or flips ``status`` to ``dropped`` /
        ``lost``.
        """
        record = self._base(t, key, index, hit=False)
        record["node"] = int(node)
        if self._chaos_run:
            record["attempts"] = int(attempts)
        return self._emit(record)

    def record_unavailable(
        self, t: float, key: int, index: int, attempts: int
    ) -> dict:
        """Trace one request whose every replica was down (chaos runs)."""
        record = self._base(t, key, index, hit=False)
        record["status"] = "unavailable"
        record["attempts"] = int(attempts)
        return self._emit(record)

    def finalize(self, duration: float) -> Optional[dict]:
        """Close the run; returns ``{trial, sampled, suspects, alerts}``.

        The engine forwards ``suspects`` and ``alerts`` to the monitor
        (when one is attached) so they land in the run summary and the
        event log; either way they fold into this recorder's campaign
        aggregate.
        """
        if not self._run_open:
            return None
        self._run_open = False
        suspects = None
        alerts: List[dict] = []
        if self._run_attr is not None:
            suspects = self._run_attr.finalize(duration)
            alerts = list(self._run_attr.alerts)
            self._cum.absorb(self._run_attr)
        summary = {
            "trial": self._trial,
            "sampled": self._run_sampled,
            "suspects": suspects,
            "alerts": alerts,
        }
        self._alerts.extend(alerts)
        self._summaries.append(summary)
        self._run_attr = None
        return summary

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump a worker ships back for trial-order merging."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "records": list(self._records),
            "appended": self._appended,
            "sampled": self._sampled,
            "seen": self._seen,
            "alerts": list(self._alerts),
            "summaries": list(self._summaries),
            "attribution": self._cum.snapshot(),
        }

    def merge_trial(self, snapshot: dict) -> None:
        """Fold one per-trial recorder snapshot into this recorder.

        MUST be called in trial order (the parallel executor guarantees
        it); the ring keeps the most recent ``capacity`` records across
        the merged stream, so the retained set — and the exported JSONL
        — is identical to a serial run's.
        """
        records = self._records
        records.extend(snapshot.get("records", ()))
        self._appended += snapshot.get("appended", 0)
        overflow = len(records) - self._config.capacity
        if overflow > 0:
            del records[:overflow]
        self._sampled += snapshot.get("sampled", 0)
        self._seen += snapshot.get("seen", 0)
        self._alerts.extend(snapshot.get("alerts", ()))
        self._summaries.extend(snapshot.get("summaries", ()))
        attribution = snapshot.get("attribution")
        if attribution is not None:
            self._cum.merge(attribution)
        self._trials_merged += 1

    # -- reporting ---------------------------------------------------------

    def suspects(self) -> Optional[dict]:
        """Campaign-level ranked suspects across all runs/trials."""
        if not self._config.attribution:
            return None
        return self._cum.suspects()

    def summary(self) -> dict:
        """Campaign-level aggregate view (what the forensics CLI renders)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "config": self._config.to_dict(),
            "seen": self._seen,
            "sampled": self._sampled,
            "retained": len(self._records),
            "evicted": self.evicted,
            "trials": len(self._summaries),
            "alerts": len(self._alerts),
            "suspects": self.suspects(),
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSONL: one manifest line, then records.

        Sorted-key JSON with ``allow_nan=False``, like the event log —
        a seeded run's trace file is byte-identical across hosts and
        worker counts.
        """
        path = Path(path)
        head = {
            "type": "trace-manifest",
            "schema": TRACE_SCHEMA_VERSION,
            "config": self._config.to_dict(),
            "seen": self._seen,
            "sampled": self._sampled,
            "evicted": self.evicted,
        }
        lines = [
            json.dumps(record, sort_keys=True, allow_nan=False, default=_coerce)
            for record in [head] + self._records
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    @staticmethod
    def read(path: Union[str, Path]) -> dict:
        """Load a trace file: ``{"manifest": dict, "records": [dict]}``."""
        manifest: Optional[dict] = None
        records: List[dict] = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("type") == "trace-manifest":
                manifest = record
            else:
                records.append(record)
        return {"manifest": manifest, "records": records}

    @classmethod
    def from_export(
        cls,
        path: Union[str, Path],
        durations: Optional[Dict[int, float]] = None,
    ) -> "FlightRecorder":
        """Rebuild an offline recorder from an exported trace file.

        Attribution is recomputed per trial over the retained records
        (:mod:`repro.obs.attribution` is a pure function of the record
        stream), so the offline recorder's suspects, alerts and
        summaries match the live run's exactly when the ring never
        evicted — the ``repro replay --attribution`` / ``repro
        forensics`` path.  ``durations`` maps trial -> run duration
        (from the event log's ``run-summary`` records) so each trial's
        final attribution window closes where the live run's did;
        without it the trial's last record time is used, which can only
        differ in whether a trailing under-populated window alerts.
        """
        data = cls.read(path)
        manifest = data["manifest"] or {}
        config = TraceConfig(**manifest.get("config", {}))
        recorder = cls(config)
        records = data["records"]
        recorder._records = list(records)
        recorder._appended = len(records) + int(manifest.get("evicted", 0))
        recorder._sampled = int(manifest.get("sampled", len(records)))
        recorder._seen = int(manifest.get("seen", len(records)))
        if not config.attribution:
            return recorder
        by_trial: Dict[int, List[dict]] = {}
        for record in records:
            by_trial.setdefault(record["trial"], []).append(record)
        for trial in sorted(by_trial):
            rows = by_trial[trial]
            engine = AttributionEngine(config, trial=trial)
            for record in rows:
                engine.add(
                    record["t"],
                    record["prefix"],
                    record["client"],
                    record["key"],
                    backend=not record["hit"],
                )
            duration = (durations or {}).get(trial, rows[-1]["t"])
            suspects = engine.finalize(duration)
            alerts = list(engine.alerts)
            recorder._cum.absorb(engine)
            recorder._alerts.extend(alerts)
            recorder._summaries.append(
                {
                    "trial": trial,
                    "sampled": len(rows),
                    "suspects": suspects,
                    "alerts": alerts,
                }
            )
        return recorder


class NullRecorder(FlightRecorder):
    """The disabled recorder: records nothing, allocates nothing per call.

    Engines guard on ``trace is None`` (or ``trace.enabled``), so the
    null recorder keeps a run byte-identical to an untraced one — the
    same contract the null monitor keeps.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(TraceConfig())

    def begin_run(self, trial=0, m=1, chaos=False, client_map=None, group_of=None):
        pass

    def sample_mask(self, keys) -> np.ndarray:
        return np.zeros(len(keys), dtype=bool)

    def record_hit(self, t, key, index, layer=None, shard=None) -> dict:
        return {}

    def record_backend(self, t, key, index, node, attempts=1) -> dict:
        return {}

    def record_unavailable(self, t, key, index, attempts) -> dict:
        return {}

    def finalize(self, duration) -> Optional[dict]:
        return None

    def merge_trial(self, snapshot) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "records": [],
            "appended": 0,
            "sampled": 0,
            "seen": 0,
            "alerts": [],
            "summaries": [],
            "attribution": None,
        }


#: Process-wide shared no-op recorder.
NULL_RECORDER = NullRecorder()


def as_trace(trace: Optional[FlightRecorder]) -> FlightRecorder:
    """Normalise an optional ``trace=`` argument: ``None`` -> no-op."""
    return NULL_RECORDER if trace is None else trace

"""Lightweight phase tracing: nestable named spans over wall-clock time.

The tracer answers "where does wall-clock go?" for a simulation run —
workload generation, cache replay, partitioning, allocation, reporting —
without touching the deterministic metrics registry.  Span durations are
wall-clock and therefore *not* reproducible across runs or worker
counts; they live here, separate from :mod:`repro.obs.metrics`, exactly
so that the registry's serial-equals-parallel guarantee stays intact.

Spans nest: entering ``tracer.span("campaign")`` then
``tracer.span("trial")`` records the inner span under the path
``"campaign/trial"``.  Per-path aggregates (count, total seconds and a
log-scale duration histogram with p50/p95/p99) are maintained
incrementally; the raw span list is capped so long campaigns cannot grow
memory without bound.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import Histogram

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]

#: Duration buckets: powers of two from ~1 microsecond to ~16k seconds.
_DURATION_BOUNDS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 15))


class Span:
    """One completed (or in-flight) span."""

    __slots__ = ("name", "path", "start", "duration")

    def __init__(self, name: str, path: str, start: float) -> None:
        self.name = name
        self.path = path
        self.start = start
        self.duration: Optional[float] = None  # None while still open

    def as_dict(self) -> dict:
        """Plain-data form for exports."""
        return {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
        }


class _PathAggregate:
    """Incremental per-path statistics (count, total, duration histogram)."""

    __slots__ = ("count", "total", "histogram")

    def __init__(self, path: str) -> None:
        self.count = 0
        self.total = 0.0
        self.histogram = Histogram(
            "span_duration_seconds", (("span", path),), bounds=_DURATION_BOUNDS
        )

    def record(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.histogram.observe(duration)


class Tracer:
    """Collects nestable named spans and per-path duration aggregates.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds); injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.
    max_spans:
        Cap on retained *raw* spans; aggregates keep counting beyond the
        cap and ``dropped_spans`` records how many raw spans were shed.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 10_000,
    ) -> None:
        if max_spans < 0:
            raise ValueError(f"max_spans must be non-negative, got {max_spans}")
        self._clock = clock
        self._max_spans = max_spans
        self._stack: List[str] = []
        self._spans: List[Span] = []
        self._aggregates: Dict[str, _PathAggregate] = {}
        self.dropped_spans = 0

    @property
    def current_path(self) -> str:
        """Slash-joined path of the currently open spans (may be '')."""
        return "/".join(self._stack)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a named span; closes (and records) on exit, even on error."""
        if "/" in name:
            raise ValueError(f"span names must not contain '/', got {name!r}")
        self._stack.append(name)
        span = Span(name, "/".join(self._stack), self._clock())
        try:
            yield span
        finally:
            span.duration = self._clock() - span.start
            self._stack.pop()
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self.dropped_spans += 1
            aggregate = self._aggregates.get(span.path)
            if aggregate is None:
                aggregate = self._aggregates[span.path] = _PathAggregate(span.path)
            aggregate.record(span.duration)

    def spans(self) -> List[Span]:
        """Completed raw spans, in completion order (capped)."""
        return list(self._spans)

    def aggregates(self) -> Dict[str, dict]:
        """Per-path stats: count, total seconds, mean and p50/p95/p99."""
        result: Dict[str, dict] = {}
        for path in sorted(self._aggregates):
            aggregate = self._aggregates[path]
            stats = {
                "count": aggregate.count,
                "total_seconds": aggregate.total,
                "mean_seconds": aggregate.total / aggregate.count,
            }
            stats.update(
                {
                    key + "_seconds": value
                    for key, value in aggregate.histogram.percentiles().items()
                }
            )
            result[path] = stats
        return result

    def to_dict(self) -> dict:
        """Plain-data dump: aggregates plus the (capped) raw span list."""
        return {
            "aggregates": self.aggregates(),
            "spans": [span.as_dict() for span in self._spans],
            "dropped_spans": self.dropped_spans,
        }


@contextmanager
def _null_span() -> Iterator[None]:
    yield None


def _zero_clock() -> float:
    """Picklable stand-in clock for the null tracer."""
    return 0.0


class NullTracer(Tracer):
    """The disabled tracer: no clock reads, no span objects, no state."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=_zero_clock, max_spans=0)

    def span(self, name: str):  # type: ignore[override]
        return _null_span()

    def to_dict(self) -> dict:
        return {"aggregates": {}, "spans": [], "dropped_spans": 0}


#: Process-wide shared no-op tracer.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalise an optional ``tracer=`` argument: ``None`` -> no-op."""
    return NULL_TRACER if tracer is None else tracer

"""Streaming attack attribution over the sampled trace stream.

The flight recorder (:mod:`repro.obs.trace`) feeds every traced request
into an :class:`AttributionEngine`, which aggregates load, backend
(gain) and entropy contribution by **key-prefix bucket** and by
**ground-truth client id**, plus a space-saving top-k key sketch
(:class:`repro.obs.sketch.SpaceSaving`) — the per-prefix analogue of the
monitor's P²/entropy sketches.  Two outputs:

- a ranked ``suspects`` block per run (and per campaign): the top-k
  prefixes, clients and keys by traced request share, each with its
  backend share (its contribution to the realised attack gain) and its
  normalised key-frequency entropy (a flat prefix is the Theorem-1
  fingerprint localised to one bucket);
- per-window ``attribution-concentration`` alerts
  (:data:`repro.obs.alerts.BUILTIN_RULES`): one prefix bucket taking
  more than the configured share of a window's traced requests.

Everything is a pure function of the traced record sequence: entropy
sums use :func:`math.fsum` (order-independent rounding) and rankings
break ties on the smaller identifier, so suspects blocks are
bit-identical across engines and worker counts.  :func:`recompute`
replays the same aggregation offline from an exported trace file — the
``repro replay --attribution`` path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .alerts import AlertEngine, BUILTIN_RULES
from .sketch import SpaceSaving

__all__ = ["AttributionEngine", "recompute"]

#: Space-saving counters kept per ``top_k`` reported rows.
SKETCH_FACTOR = 8


def _entropy(counts: Dict[int, int]) -> Optional[float]:
    """Normalised Shannon entropy of a key-count map (``None`` if <2 keys).

    ``math.fsum`` makes the result independent of dict insertion order,
    so serial and merged aggregates agree bit-for-bit.
    """
    distinct = len(counts)
    if distinct <= 1:
        return None
    total = sum(counts.values())
    sum_clogc = math.fsum(c * math.log(c) for c in counts.values() if c > 1)
    return (math.log(total) - sum_clogc / total) / math.log(distinct)


class _Dimension:
    """Counts for one attribution dimension (prefix or client)."""

    __slots__ = ("requests", "backend", "keys")

    def __init__(self) -> None:
        self.requests = 0
        self.backend = 0
        self.keys: Dict[int, int] = {}


class AttributionEngine:
    """Per-run (or campaign-merged) attribution aggregate.

    Parameters
    ----------
    config:
        A :class:`repro.obs.trace.TraceConfig`; ``window``,
        ``top_k``, ``concentration_threshold`` and ``min_samples`` are
        read here.
    trial:
        Trial index stamped into alert records (``-1`` for the
        campaign-level aggregate, which never windows).
    """

    def __init__(self, config, trial: int = 0) -> None:
        self._config = config
        self._trial = int(trial)
        self._rule_engine = AlertEngine([BUILTIN_RULES["attribution-concentration"]])
        self._prefixes: Dict[int, _Dimension] = {}
        self._clients: Dict[int, _Dimension] = {}
        self._key_sketch = SpaceSaving(SKETCH_FACTOR * config.top_k)
        self._samples = 0
        self._backend_total = 0
        self._alerts: List[dict] = []
        # Open-window state (simulated-clock tumbling windows).
        self._win_index: Optional[int] = None
        self._win_prefix: Dict[int, int] = {}
        self._win_samples = 0

    @property
    def samples(self) -> int:
        """Traced requests aggregated so far."""
        return self._samples

    @property
    def alerts(self) -> List[dict]:
        """``attribution-concentration`` alert records, in order."""
        return self._alerts

    # -- streaming ingestion ----------------------------------------------

    def add(
        self, t: float, prefix: int, client: int, key: int, backend: bool
    ) -> None:
        """Aggregate one traced request at simulated time ``t``."""
        index = int(t // self._config.window)
        if self._win_index is None:
            self._win_index = index
        elif index != self._win_index:
            self._close_window()
            self._win_index = index
        self._win_prefix[prefix] = self._win_prefix.get(prefix, 0) + 1
        self._win_samples += 1
        for dimension, ident in ((self._prefixes, prefix), (self._clients, client)):
            slot = dimension.get(ident)
            if slot is None:
                slot = dimension[ident] = _Dimension()
            slot.requests += 1
            slot.keys[key] = slot.keys.get(key, 0) + 1
            if backend:
                slot.backend += 1
        self._key_sketch.offer(key)
        self._samples += 1
        if backend:
            self._backend_total += 1

    def _close_window(self, final_t: Optional[float] = None) -> None:
        index = self._win_index
        samples = self._win_samples
        self._win_index = None
        prefix_counts = self._win_prefix
        self._win_prefix = {}
        self._win_samples = 0
        if index is None or samples == 0:
            return
        top_prefix, top_count = min(
            prefix_counts.items(), key=lambda item: (-item[1], item[0])
        )
        t_end = (index + 1) * self._config.window
        if final_t is not None:
            t_end = min(t_end, final_t)
        snapshot = {
            "trial": self._trial,
            "index": index,
            "t_end": t_end,
            "attribution_samples": samples,
            "attribution_top_share": top_count / samples,
            "attribution_top_prefix": top_prefix,
        }
        alerts = self._rule_engine.evaluate(snapshot, self._config)
        for alert in alerts:
            # The rule engine emits generic records; a concentration
            # firing must also name the suspected attack prefix.
            alert["prefix"] = top_prefix
        self._alerts.extend(alerts)

    def finalize(self, duration: float) -> dict:
        """Close the open window; returns the run's suspects block."""
        self._close_window(final_t=duration)
        return self.suspects()

    # -- reporting ---------------------------------------------------------

    def _rank(self, dimension: Dict[int, _Dimension], label: str) -> List[dict]:
        total = self._samples
        backend_total = self._backend_total
        rows = sorted(
            dimension.items(), key=lambda item: (-item[1].requests, item[0])
        )[: self._config.top_k]
        return [
            {
                label: ident,
                "requests": slot.requests,
                "share": slot.requests / total,
                "backend": slot.backend,
                "backend_share": (
                    slot.backend / backend_total if backend_total else None
                ),
                "distinct_keys": len(slot.keys),
                "entropy": _entropy(slot.keys),
            }
            for ident, slot in rows
        ]

    def suspects(self) -> dict:
        """The ranked suspects block (plain data, deterministic order)."""
        total = self._samples
        if total == 0:
            return {"samples": 0, "prefixes": [], "clients": [], "keys": []}
        return {
            "samples": total,
            "prefixes": self._rank(self._prefixes, "prefix"),
            "clients": self._rank(self._clients, "client"),
            "keys": [
                {
                    "key": key,
                    "count": count,
                    "error": error,
                    "share": count / total,
                }
                for key, count, error in self._key_sketch.top(self._config.top_k)
            ],
        }

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump for worker -> campaign merging."""
        def dump(dimension: Dict[int, _Dimension]) -> list:
            return [
                [ident, slot.requests, slot.backend, list(slot.keys.items())]
                for ident, slot in dimension.items()
            ]

        return {
            "prefixes": dump(self._prefixes),
            "clients": dump(self._clients),
            "keys": self._key_sketch.items(),
            "samples": self._samples,
            "backend": self._backend_total,
            "alerts": list(self._alerts),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one snapshot in (trial order, like the monitor merge)."""
        def load(dimension: Dict[int, _Dimension], rows: list) -> None:
            for ident, requests, backend, keys in rows:
                slot = dimension.get(ident)
                if slot is None:
                    slot = dimension[ident] = _Dimension()
                slot.requests += requests
                slot.backend += backend
                for key, count in keys:
                    slot.keys[key] = slot.keys.get(key, 0) + count

        load(self._prefixes, snapshot.get("prefixes", ()))
        load(self._clients, snapshot.get("clients", ()))
        for key, count, _error in snapshot.get("keys", ()):
            self._key_sketch.offer(key, count)
        self._samples += snapshot.get("samples", 0)
        self._backend_total += snapshot.get("backend", 0)
        self._alerts.extend(snapshot.get("alerts", ()))

    def absorb(self, other: "AttributionEngine") -> None:
        """Fold a finalized per-run engine into this aggregate (serial path)."""
        self.merge(
            {
                "prefixes": [
                    [ident, slot.requests, slot.backend, list(slot.keys.items())]
                    for ident, slot in other._prefixes.items()
                ],
                "clients": [
                    [ident, slot.requests, slot.backend, list(slot.keys.items())]
                    for ident, slot in other._clients.items()
                ],
                "keys": other._key_sketch.items(),
                "samples": other._samples,
                "backend": other._backend_total,
                "alerts": [],
            }
        )


def recompute(records, config, trial: int = 0, duration: Optional[float] = None) -> dict:
    """Replay attribution offline from exported trace records.

    ``records`` is the record list from
    :meth:`repro.obs.trace.FlightRecorder.read`; pass the run's
    ``duration`` (from the event log's run summary) so the final
    window's end matches the live run exactly.  The result
    (``{"suspects": ..., "alerts": [...]}``) matches what the live run
    produced for the same records — forensics without re-running the
    simulation.
    """
    engine = AttributionEngine(config, trial=trial)
    last_t = 0.0
    for record in records:
        last_t = record["t"]
        engine.add(
            last_t,
            record["prefix"],
            record["client"],
            record["key"],
            backend=not record["hit"],
        )
    suspects = engine.finalize(duration if duration is not None else last_t)
    return {"suspects": suspects, "alerts": list(engine.alerts)}

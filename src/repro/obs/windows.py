"""Simulated-clock sliding windows: per-window traffic accumulators.

The online monitor (:mod:`repro.obs.monitor`) chops a request stream
into fixed-width windows keyed **only by simulated time** — never by
wall clock — so every window-derived statistic is bit-identical across
hosts, runs and worker counts.  Two pieces live here:

- :class:`StreamingEntropy` — an O(1)-per-update port of the batch
  flatness score in :mod:`repro.analysis.detection`.  It maintains the
  identity ``H = ln(total) - (1/total) * sum_i c_i ln c_i``
  incrementally, so the streamed normalised entropy equals the batch
  ``profile_counts`` value exactly (up to float associativity) — the
  parity the contract tests pin down.
- :class:`WindowAccumulator` — one window's worth of counters: request
  and hit totals, per-node backend arrivals, and the entropy state.

Windows are *tumbling* (aligned to ``floor(t / width)``); the monitor
closes a window the first time it sees an event past the boundary, so a
stream processed in simulated-time order closes windows in order.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

__all__ = ["StreamingEntropy", "WindowAccumulator"]


class StreamingEntropy:
    """Streaming normalised key-frequency entropy (the flatness score).

    Mirrors :func:`repro.analysis.detection.profile_counts`:

    - ``normalized_entropy`` is ``H / ln(distinct)`` (0 when fewer than
      two distinct keys);
    - ``top_key_share`` is the most frequent key's share of the stream.

    Each :meth:`update` is O(1): when a key's count moves ``c -> c + 1``
    the tracked ``sum_i c_i ln c_i`` changes by exactly
    ``(c+1) ln(c+1) - c ln c``.
    """

    __slots__ = ("_counts", "_total", "_sum_clogc", "_max_count")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum_clogc = 0.0
        self._max_count = 0

    @property
    def total(self) -> int:
        """Number of observations so far."""
        return self._total

    @property
    def distinct(self) -> int:
        """Number of distinct keys seen."""
        return len(self._counts)

    @property
    def top_key_share(self) -> float:
        """Share of the stream taken by the most frequent key."""
        if self._total == 0:
            return 0.0
        return self._max_count / self._total

    def update(self, key: int) -> None:
        """Record one observation of ``key``."""
        count = self._counts.get(key, 0)
        new = count + 1
        self._counts[key] = new
        if count:
            self._sum_clogc += new * math.log(new) - count * math.log(count)
        # c = 0 -> 1 contributes 1 * ln 1 = 0.
        self._total += 1
        if new > self._max_count:
            self._max_count = new

    @property
    def entropy(self) -> float:
        """Shannon entropy (nats) of the observed frequencies."""
        if self._total == 0:
            return 0.0
        return math.log(self._total) - self._sum_clogc / self._total

    @property
    def normalized_entropy(self) -> float:
        """``H / ln(distinct)`` — 1.0 is perfectly flat (Theorem-1-like).

        Matches the batch score's convention: 0.0 with fewer than two
        distinct keys.
        """
        distinct = len(self._counts)
        if distinct <= 1:
            return 0.0
        return self.entropy / math.log(distinct)


class WindowAccumulator:
    """One simulated-time window's running counters.

    Parameters
    ----------
    index:
        Window index ``floor(t / width)``.
    width:
        Window width in simulated seconds.
    n_nodes:
        Back-end size; per-node arrival counts are kept as a dense
        vector so the max/argmax/active statistics are exact.
    """

    __slots__ = ("index", "width", "requests", "hits", "backend",
                 "node_counts", "entropy", "unavailable", "layer_hits")

    def __init__(self, index: int, width: float, n_nodes: int) -> None:
        self.index = index
        self.width = width
        self.requests = 0
        self.hits = 0
        self.backend = 0
        self.node_counts = np.zeros(n_nodes, dtype=np.int64)
        self.entropy = StreamingEntropy()
        # Chaos-only counter (repro.chaos): requests whose every replica
        # was down.  Deliberately NOT part of to_snapshot() — the monitor
        # appends it for chaos runs only, keeping chaos-off snapshots
        # byte-identical to the pre-chaos schema.
        self.unavailable = 0
        # Hierarchy-only counters (repro.cache.tree): hits served per
        # cache layer.  Like ``unavailable``, NOT part of to_snapshot()
        # — the monitor appends them only when a run declares layers,
        # keeping flat-cache snapshots byte-identical.
        self.layer_hits: Dict[int, int] = {}

    @property
    def t_start(self) -> float:
        """Window start (simulated seconds)."""
        return self.index * self.width

    @property
    def t_end(self) -> float:
        """Window end boundary (simulated seconds)."""
        return (self.index + 1) * self.width

    def record(self, key: int, node: Optional[int]) -> None:
        """Record one request; ``node`` is ``None`` for cache hits."""
        self.requests += 1
        self.entropy.update(key)
        if node is None:
            self.hits += 1
        else:
            self.backend += 1
            self.node_counts[node] += 1

    def record_layer(self, layer: int) -> None:
        """Attribute the window's latest cache hit to a hierarchy layer."""
        self.layer_hits[layer] = self.layer_hits.get(layer, 0) + 1

    def to_snapshot(self, trial: int, t_end: Optional[float] = None) -> dict:
        """Plain-data window snapshot (JSON-able, deterministic).

        ``t_end`` overrides the nominal boundary for the final partial
        window (the run's actual duration).
        """
        end = self.t_end if t_end is None else min(t_end, self.t_end)
        seconds = max(end - self.t_start, 0.0)
        node_max = int(self.node_counts.max()) if self.node_counts.size else 0
        node_max_id = int(self.node_counts.argmax()) if node_max else -1
        active = int((self.node_counts > 0).sum())
        return {
            "type": "window",
            "clock": "simulated",
            "trial": trial,
            "index": self.index,
            "t_start": self.t_start,
            "t_end": end,
            "seconds": seconds,
            "requests": self.requests,
            "hits": self.hits,
            "backend": self.backend,
            "hit_ratio": self.hits / self.requests if self.requests else 0.0,
            "distinct_keys": self.entropy.distinct,
            "normalized_entropy": self.entropy.normalized_entropy,
            "top_key_share": self.entropy.top_key_share,
            "node_max": node_max,
            "node_max_id": node_max_id,
            "nodes_active": active,
        }

"""Forensic views over a :class:`~repro.obs.trace.FlightRecorder`.

The flight recorder's trace ring plus the attribution engine's ranked
suspects answer the post-incident questions — *who* (client/prefix
rankings), *what* (per-request causal paths: hit layer/shard or backend
node, wait, service, drop) and *when* (the traced-request timeline with
``attribution-concentration`` alert markers).  Three renderers, all
pure functions of the recorder state, so a seeded run's forensics
output is deterministic across engines and worker counts:

- :func:`render_forensics_text` — terminal panel: trace header, the
  ranked suspects tables, the per-layer/status path breakdown and the
  alert roll.
- :func:`render_forensics_html` — standalone single-file HTML page
  (same skeleton as :mod:`repro.obs.dashboard`): the suspect tables,
  the path breakdown and an inline SVG timeline of traced requests per
  attribution window with alert-aligned markers.
- :func:`timeline_bins` — the timeline aggregation itself (exposed for
  tests and the offline ``repro forensics`` path).

Everything here also works on *recomputed* state: feed
:func:`repro.obs.attribution.recompute` output and the record list from
:meth:`FlightRecorder.read` through the ``suspects=``/``alerts=``
overrides and the offline dashboard matches the live one.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .dashboard import fmt, html_page, html_table, svg_sparkline

__all__ = [
    "path_breakdown",
    "timeline_bins",
    "render_forensics_text",
    "render_forensics_html",
    "write_forensics_html",
]


def path_breakdown(records: Sequence[dict]) -> List[dict]:
    """Aggregate traced causal paths into per-(status, layer) rows.

    One row per distinct request fate: front-end hits grouped by cache
    layer (flat hits have no layer and report as ``front-end``), backend
    dispatches by outcome (``served`` / ``dropped`` / ``lost`` /
    ``unavailable``) with mean wait/service where defined.  Rows sort by
    request count (desc, ties by label) — plain data for both renderers.
    """
    groups: Dict[str, dict] = {}
    for record in records:
        if record["hit"]:
            layer = record.get("layer")
            label = "hit front-end" if layer is None else f"hit layer {layer}"
        else:
            label = record["status"]
        slot = groups.get(label)
        if slot is None:
            slot = groups[label] = {
                "path": label, "requests": 0, "wait_sum": 0.0,
                "service_sum": 0.0, "timed": 0, "shards": set(),
            }
        slot["requests"] += 1
        if record.get("shard") is not None:
            slot["shards"].add(record["shard"])
        if record.get("wait") is not None:
            slot["wait_sum"] += record["wait"]
            slot["service_sum"] += record["service"] or 0.0
            slot["timed"] += 1
    total = len(records)
    rows = []
    for slot in groups.values():
        timed = slot["timed"]
        rows.append({
            "path": slot["path"],
            "requests": slot["requests"],
            "share": slot["requests"] / total if total else None,
            "shards": len(slot["shards"]) or None,
            "mean_wait": slot["wait_sum"] / timed if timed else None,
            "mean_service": slot["service_sum"] / timed if timed else None,
        })
    rows.sort(key=lambda row: (-row["requests"], row["path"]))
    return rows


def timeline_bins(
    records: Sequence[dict],
    alerts: Sequence[dict] = (),
    window: float = 0.1,
) -> List[dict]:
    """Traced requests per ``(trial, window)`` bin, with alert flags.

    Bins are the attribution engine's tumbling windows, so alert
    records (which carry ``trial`` and ``index``) align exactly; each
    bin reports its traced request count, backend share and whether a
    concentration alert fired in it.
    """
    bins: Dict[tuple, dict] = {}
    for record in records:
        key = (record["trial"], int(record["t"] // window))
        slot = bins.get(key)
        if slot is None:
            slot = bins[key] = {
                "trial": key[0], "index": key[1],
                "t_end": (key[1] + 1) * window,
                "requests": 0, "backend": 0, "alert": False,
            }
        slot["requests"] += 1
        slot["backend"] += not record["hit"]
    for alert in alerts:
        key = (alert.get("trial"), alert.get("window", alert.get("index")))
        if key in bins:
            bins[key]["alert"] = True
    return [bins[key] for key in sorted(bins)]


def _svg_timeline(bins: List[dict], width: int = 720, height: int = 160) -> str:
    """Inline SVG of the traced-request timeline with alert markers.

    One bar per bin (height = traced requests, darker segment = backend
    share); bins where an ``attribution-concentration`` alert fired get
    a red marker line — the "when did it turn into an attack" view.
    """
    if not bins:
        return "<p>(no traced requests)</p>"
    pad = 24
    peak = max(slot["requests"] for slot in bins) or 1
    step = (width - 2 * pad) / len(bins)
    bar = max(step - 1.0, 0.5)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        'style="background:#fafafa;border:1px solid #ddd">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#888"/>',
    ]
    for i, slot in enumerate(bins):
        x = pad + i * step
        total_h = slot["requests"] / peak * (height - 2 * pad)
        backend_h = (
            slot["backend"] / peak * (height - 2 * pad)
            if slot["requests"] else 0.0
        )
        y = height - pad - total_h
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar:.1f}" '
            f'height="{total_h:.1f}" fill="#aed6f1"/>'
        )
        if backend_h:
            parts.append(
                f'<rect x="{x:.1f}" y="{height - pad - backend_h:.1f}" '
                f'width="{bar:.1f}" height="{backend_h:.1f}" fill="#2980b9"/>'
            )
        if slot["alert"]:
            parts.append(
                f'<line x1="{x + bar / 2:.1f}" y1="{pad}" '
                f'x2="{x + bar / 2:.1f}" y2="{height - pad}" '
                'stroke="#c0392b" stroke-width="1.5" stroke-dasharray="3 2"/>'
            )
    parts.append(
        f'<text x="{pad}" y="{pad - 8}" font-size="11" fill="#2980b9">'
        "traced requests per window (dark = backend)</text>"
    )
    parts.append(
        f'<text x="{pad + 280}" y="{pad - 8}" font-size="11" fill="#c0392b">'
        "| concentration alert</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _suspect_lines(suspects: Optional[dict], last: int) -> List[str]:
    lines: List[str] = []
    if not suspects or not suspects.get("samples"):
        lines.append("suspects: (attribution disabled or no samples)")
        return lines
    lines.append(f"suspects over {suspects['samples']} traced request(s):")
    for label, rows in (
        ("prefix", suspects["prefixes"]),
        ("client", suspects["clients"]),
    ):
        lines.append(
            f"  {'#':>2} {label:>7} {'req':>7} {'share':>7} "
            f"{'backend%':>9} {'keys':>6} {'entropy':>8}"
        )
        for rank, row in enumerate(rows[:last], 1):
            backend = row["backend_share"]
            lines.append(
                f"  {rank:>2} {fmt(row[label]):>7} {row['requests']:>7} "
                f"{row['share']:>7.3f} "
                f"{fmt(100 * backend, 3) if backend is not None else '-':>9} "
                f"{row['distinct_keys']:>6} {fmt(row['entropy']):>8}"
            )
    if suspects["keys"]:
        hot = ", ".join(
            f"{row['key']}x{row['count']}" for row in suspects["keys"][:last]
        )
        lines.append(f"  hot keys (space-saving): {hot}")
    return lines


def render_forensics_text(
    recorder,
    last: int = 8,
    suspects: Optional[dict] = None,
    alerts: Optional[Sequence[dict]] = None,
) -> str:
    """Render the recorder's forensic state as a terminal panel.

    ``suspects`` / ``alerts`` override the recorder's own aggregates —
    the offline path renders :func:`~repro.obs.attribution.recompute`
    output over the same records.
    """
    config = recorder.config
    suspects = recorder.suspects() if suspects is None else suspects
    alerts = list(recorder.alerts) if alerts is None else list(alerts)
    records = recorder.records
    lines: List[str] = []
    lines.append("attack forensics (flight recorder)")
    lines.append("=" * 70)
    lines.append(
        f"trace:  sampler={config.sampler} sample={config.sample:g} "
        f"buckets={config.prefix_buckets} window={config.window:g}s"
    )
    lines.append(
        f"state:  seen={recorder.seen}  sampled={recorder.sampled}  "
        f"retained={len(records)}  evicted={recorder.evicted}  "
        f"alerts={len(alerts)}"
    )
    lines.append("")
    lines.extend(_suspect_lines(suspects, last))
    rows = path_breakdown(records)
    if rows:
        lines.append("")
        lines.append("causal path breakdown:")
        lines.append(
            f"  {'path':<16} {'req':>7} {'share':>7} {'shards':>7} "
            f"{'wait(ms)':>9} {'svc(ms)':>8}"
        )
        for row in rows:
            wait = row["mean_wait"]
            service = row["mean_service"]
            lines.append(
                f"  {row['path']:<16} {row['requests']:>7} "
                f"{row['share']:>7.3f} {fmt(row['shards']):>7} "
                f"{fmt(1e3 * wait, 4) if wait is not None else '-':>9} "
                f"{fmt(1e3 * service, 4) if service is not None else '-':>8}"
            )
    if alerts:
        lines.append("")
        lines.append(f"attribution alerts ({len(alerts)}):")
        for alert in alerts[-last:]:
            lines.append(
                f"  [{alert['rule']}] trial={fmt(alert.get('trial'))} "
                f"window={fmt(alert.get('window'))} "
                f"prefix={fmt(alert.get('prefix'))} "
                f"share={fmt(alert.get('value'))} > "
                f"{fmt(alert.get('threshold'))}"
            )
    return "\n".join(lines)


def render_forensics_html(
    recorder,
    title: str = "Attack forensics",
    monitor=None,
    suspects: Optional[dict] = None,
    alerts: Optional[Sequence[dict]] = None,
) -> str:
    """Render the forensic dashboard as a standalone HTML page.

    With ``monitor`` attached, the per-window gain series rides along
    as a sparkline so the suspect timeline reads against the damage
    curve it explains.
    """
    config = recorder.config
    suspects = recorder.suspects() if suspects is None else suspects
    alerts = list(recorder.alerts) if alerts is None else list(alerts)
    records = recorder.records
    bins = timeline_bins(records, alerts, window=config.window)
    body = [
        f'<p class="kv">sampler={html.escape(config.sampler)} '
        f"sample={config.sample:g} buckets={config.prefix_buckets} "
        f"window={config.window:g}s — seen={recorder.seen} "
        f"sampled={recorder.sampled} retained={len(records)} "
        f"evicted={recorder.evicted} alerts={len(alerts)}</p>",
        "<h2>Traced-request timeline (alert-aligned)</h2>",
        _svg_timeline(bins),
    ]
    if monitor is not None and getattr(monitor, "windows", None):
        gains = [
            w.get("running_gain", w.get("gain")) for w in monitor.windows
        ]
        body.append(
            '<p class="kv">running gain per monitor window: '
            + svg_sparkline(gains, stroke="#c0392b")
            + "</p>"
        )
    if suspects and suspects.get("samples"):
        body.append("<h2>Suspect prefixes</h2>")
        body.append(html_table(
            suspects["prefixes"],
            ["prefix", "requests", "share", "backend", "backend_share",
             "distinct_keys", "entropy"],
        ))
        body.append("<h2>Suspect clients</h2>")
        body.append(html_table(
            suspects["clients"],
            ["client", "requests", "share", "backend", "backend_share",
             "distinct_keys", "entropy"],
        ))
        body.append("<h2>Hot keys (space-saving sketch)</h2>")
        body.append(html_table(
            suspects["keys"], ["key", "count", "error", "share"]
        ))
    else:
        body.append("<p>(attribution disabled or no samples)</p>")
    body.append("<h2>Causal path breakdown</h2>")
    body.append(html_table(
        path_breakdown(records),
        ["path", "requests", "share", "shards", "mean_wait", "mean_service"],
    ))
    body.append("<h2>Attribution alerts</h2>")
    body.append(html_table(
        [
            {
                "rule": a.get("rule"),
                "trial": a.get("trial"),
                "window": a.get("window"),
                "prefix": a.get("prefix"),
                "value": a.get("value"),
                "threshold": a.get("threshold"),
            }
            for a in alerts
        ],
        ["rule", "trial", "window", "prefix", "value", "threshold"],
    ))
    return html_page(title, body)


def write_forensics_html(
    recorder,
    path: Union[str, Path],
    title: Optional[str] = None,
    monitor=None,
) -> Path:
    """Write :func:`render_forensics_html` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        render_forensics_html(
            recorder, title=title or "Attack forensics", monitor=monitor
        ),
        encoding="utf-8",
    )
    return path

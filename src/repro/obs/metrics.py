"""Zero-dependency metrics registry: counters, gauges, histograms.

Design constraints (the contract tests pin all of these down):

- **Deterministic**: metric values never depend on wall-clock time,
  scheduling or worker count.  Anything time-based belongs in
  :mod:`repro.obs.tracer`, which is explicitly excluded from the
  cross-worker determinism guarantee.
- **Mergeable**: per-trial registries produced inside worker processes
  merge into a campaign registry.  Counter and histogram merges are
  exact sums, so merging is associative and commutative (up to floating
  point, and exactly so for integer-valued increments); gauges merge by
  elementwise maximum, which is also associative and commutative.
- **Inert when disabled**: :data:`NULL_REGISTRY` hands out shared no-op
  singletons, allocates nothing per call, and snapshots empty — so an
  instrumented code path with the null registry behaves (and allocates)
  exactly like an uninstrumented one.
- **Picklable**: registries are plain-data objects (no locks, no file
  handles) so they can ride along in simulator configs across process
  boundaries.

Histogram buckets are fixed log-scale (powers of two), so two
histograms of the same metric always share bounds and merge exactly.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "as_registry",
    "DEFAULT_BUCKETS",
]

#: Label set as stored internally: sorted ``(key, value)`` string pairs.
LabelItems = Tuple[Tuple[str, str], ...]

#: Metric identity inside a registry.
MetricKey = Tuple[str, LabelItems]

#: Fixed log-scale bucket upper bounds: powers of two from ``2**-20``
#: (~1 microsecond when observing seconds) to ``2**30`` (~1e9), plus an
#: implicit +Inf overflow bucket.  Fixed bounds are what make histogram
#: merges exact.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 31))


def _labels_key(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing sum.

    Increments must be non-negative; fractional increments are allowed
    (rates and probability mass are first-class citizens here).
    """

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self._value += amount


class Gauge:
    """A point-in-time value that can move in either direction.

    Merging two gauges keeps the elementwise maximum — the only of the
    obvious choices ("last write" is order-dependent) that is both
    associative and commutative, which the parallel merge requires.
    """

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: Union[int, float]) -> None:
        """Replace the current level."""
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Raise the level by ``amount``."""
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Lower the level by ``amount``."""
        self._value -= amount


class Histogram:
    """Fixed-bucket log-scale histogram with quantile estimates.

    Bucket ``i`` counts observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (the Prometheus ``le`` convention);
    one extra overflow bucket catches everything above the last bound,
    and values at or below the first bound land in bucket 0.

    Quantiles are nearest-rank over the bucketed distribution with
    linear interpolation inside the bucket: the estimate always lies in
    the same bucket as the exact order statistic of the observed
    sequence, so it is within one bucket width (a factor of two for the
    default bounds) of the true quantile.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        resolved = DEFAULT_BUCKETS if bounds is None else tuple(float(b) for b in bounds)
        if not resolved:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(resolved, resolved[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = resolved
        self.counts = [0] * (len(resolved) + 1)  # +1 overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def min(self) -> Optional[float]:
        """Smallest observation (``None`` before any)."""
        return self._min

    @property
    def max(self) -> Optional[float]:
        """Largest observation (``None`` before any)."""
        return self._max

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (order-independent totals)."""
        for value in values:
            self.observe(float(value))

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Edge contract (exact, not estimated):

        - **empty histogram** -> ``nan`` (quantiles of nothing are
          undefined; callers must NaN-check, the exporters render it as
          ``null``);
        - **single observation** -> that observation, for every ``q``;
        - ``q == 0`` -> the exact observed minimum, ``q == 1`` -> the
          exact observed maximum.

        Otherwise the estimate is the nearest-rank order statistic's
        bucket, linearly interpolated by rank within the bucket and
        clamped to the observed ``[min, max]`` range (buckets are
        coarser than the data; the true order statistic can never fall
        outside the observed range).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return float("nan")
        # One observation: every quantile is that value.  Skipping the
        # bucket walk also avoids reporting a bucket boundary for data
        # the histogram knows exactly.
        if self._count == 1:
            return self._min
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        # nearest-rank: the ceil(q * count)-th smallest observation
        rank = max(1, math.ceil(q * self._count - 1e-9))
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lo = self.bounds[idx - 1] if idx > 0 else self._min
                hi = self.bounds[idx] if idx < len(self.bounds) else self._max
                if bucket_count > 1:
                    fraction = (rank - previous - 1) / (bucket_count - 1)
                else:
                    fraction = 1.0
                estimate = lo + (hi - lo) * fraction
                # Clamp to the observed range: buckets are coarser than
                # the data, and the true order statistic can never be
                # outside [min, max].
                return min(max(estimate, self._min), self._max)
        return self._max  # pragma: no cover - cumulative == count >= rank above

    def percentiles(self) -> Dict[str, float]:
        """The conventional reporting trio (p50 / p95 / p99)."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Names and owns every metric of one measurement scope.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by
    ``(name, labels)``; asking for the same name with a different metric
    kind is an error (it would corrupt exports).
    """

    #: Real registries record; the null registry reports ``False`` so
    #: hot paths can skip preparation work entirely.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- construction ------------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and any(key[0] == name for key in table):
                raise ValueError(
                    f"metric {name!r} is already registered as a {other_kind}"
                )

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name{labels}``."""
        key = (name, _labels_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            self._claim(name, "counter")
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        key = (name, _labels_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            self._claim(name, "gauge")
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``.

        ``bounds`` applies only on first creation; all series of one
        histogram family must share bounds for merges to stay exact.
        """
        key = (name, _labels_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            self._claim(name, "histogram")
            metric = self._histograms[key] = Histogram(name, key[1], bounds=bounds)
        return metric

    # -- introspection -----------------------------------------------------

    def counters(self) -> List[Counter]:
        """All counters, sorted by ``(name, labels)``."""
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        """All gauges, sorted by ``(name, labels)``."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        """All histograms, sorted by ``(name, labels)``."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data (JSON- and pickle-friendly) dump of every metric."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "min": h.min,
                    "max": h.max,
                }
                for h in self.histograms()
            ],
        }

    def merge_snapshot(self, snapshot: Mapping[str, list]) -> None:
        """Fold a :meth:`snapshot` dict into this registry (exact sums)."""
        for record in snapshot.get("counters", ()):
            self.counter(record["name"], **record["labels"]).inc(record["value"])
        for record in snapshot.get("gauges", ()):
            existed = (record["name"], _labels_key(record["labels"])) in self._gauges
            gauge = self.gauge(record["name"], **record["labels"])
            # Elementwise max over gauges actually present on both sides;
            # a gauge only one side has copies over verbatim (the implicit
            # 0.0 of a fresh gauge is absence, not a measurement).
            gauge.set(max(gauge.value, record["value"]) if existed else record["value"])
        for record in snapshot.get("histograms", ()):
            histogram = self.histogram(
                record["name"], bounds=record["bounds"], **record["labels"]
            )
            if tuple(record["bounds"]) != histogram.bounds:
                raise ValueError(
                    f"histogram {record['name']!r} bucket bounds differ; "
                    "cannot merge exactly"
                )
            for idx, count in enumerate(record["counts"]):
                histogram.counts[idx] += count
            histogram._sum += record["sum"]
            histogram._count += record["count"]
            for extreme in ("min", "max"):
                value = record[extreme]
                if value is None:
                    continue
                current = getattr(histogram, "_" + extreme)
                if current is None:
                    setattr(histogram, "_" + extreme, value)
                elif extreme == "min":
                    histogram._min = min(current, value)
                else:
                    histogram._max = max(current, value)

    def merge(self, other: Union["MetricsRegistry", Mapping[str, list]]) -> None:
        """Fold another registry (or a snapshot of one) into this one."""
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        self.merge_snapshot(other)


class _NullMetric:
    """Shared no-op stand-in for every metric kind."""

    __slots__ = ()
    name = "null"
    labels: LabelItems = ()
    value = 0.0
    sum = 0.0
    count = 0
    min = None
    max = None
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def percentiles(self) -> Dict[str, float]:
        nan = float("nan")
        return {"p50": nan, "p95": nan, "p99": nan}


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The disabled-instrumentation registry: records nothing, ever.

    Every accessor returns one shared inert metric object, so
    instrumented code paths allocate nothing and mutate nothing when
    observability is off — the overhead guarantee documented in
    ``docs/OBSERVABILITY.md`` rests on this class.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        return _NULL_METRIC  # type: ignore[return-value]

    def merge_snapshot(self, snapshot: Mapping[str, list]) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}


#: Process-wide shared no-op registry; use :func:`as_registry` to
#: normalise an optional ``metrics`` argument onto it.
NULL_REGISTRY = NullRegistry()


def as_registry(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalise an optional ``metrics=`` argument: ``None`` -> no-op."""
    return NULL_REGISTRY if metrics is None else metrics

"""Structured event log: append-only records, one JSON object per line.

The online monitor emits three record families — a **run manifest**
(configuration provenance), **window snapshots** (one per non-empty
simulated-time window) and **alert records** (rule firings) — plus a
closing **run summary**.  Every record carries a ``type`` and the log
carries a ``schema`` version in its manifest, so downstream consumers
can evolve safely.

Records contain only simulated-state values (no wall-clock timestamps),
so a log produced by a seeded run is byte-identical across hosts and
worker counts once written with :meth:`EventLog.write`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Union

__all__ = ["SCHEMA_VERSION", "EventLog"]

#: Version stamp written into every manifest record.  Bump when a record
#: family gains/loses/renames fields.  v2: chaos runs add a
#: ``node-event`` family and chaos-only window/summary fields
#: (``unavailable``, ``nodes_down``, ``effective_d``, ``degraded_bound``).
SCHEMA_VERSION = 2

#: Record families the log accepts.
RECORD_TYPES = ("manifest", "window", "alert", "run-summary", "node-event")


class EventLog:
    """In-memory ordered record list with a JSONL writer.

    The log is deliberately dumb: it validates only that each record is
    a dict with a known ``type``; the monitor owns record structure.
    Being a plain list makes per-trial logs picklable — worker-side
    monitors ship their records back in trial order and the campaign
    log concatenates them.
    """

    def __init__(self) -> None:
        self._records: List[dict] = []

    @property
    def records(self) -> List[dict]:
        """The record list (live reference; treat as read-only)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records)

    def emit(self, record: dict) -> dict:
        """Append one record; returns it for chaining."""
        if not isinstance(record, dict):
            raise TypeError(f"event records are dicts, got {type(record).__name__}")
        kind = record.get("type")
        if kind not in RECORD_TYPES:
            raise ValueError(
                f"unknown event record type {kind!r}; expected one of {RECORD_TYPES}"
            )
        self._records.append(record)
        return record

    def of_type(self, kind: str) -> List[dict]:
        """All records of one family, in emission order."""
        return [r for r in self._records if r["type"] == kind]

    def write(self, path: Union[str, Path]) -> Path:
        """Write the log as JSONL (one sorted-key JSON object per line)."""
        path = Path(path)
        lines = [
            json.dumps(record, sort_keys=True, allow_nan=False, default=_coerce)
            for record in self._records
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "EventLog":
        """Load a JSONL log written by :meth:`write`."""
        log = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if line.strip():
                log.emit(json.loads(line))
        return log


def _coerce(value: object) -> object:
    """JSON fallback for numpy scalars (mirrors the metrics exporter)."""
    method = getattr(value, "item", None)
    if callable(method):
        return method()
    raise TypeError(f"not JSON serializable: {value!r}")  # pragma: no cover

"""Dashboards over a :class:`~repro.obs.monitor.LoadMonitor`.

Two renderers, both pure functions of the monitor's accumulated
records (hence deterministic for a seeded run):

- :func:`render_text` — a fixed-width terminal panel: config header,
  the last windows as a table (time, requests, hit ratio, entropy,
  running gain vs bound, alert flags), the alert roll, and the P²
  quantile summaries.
- :func:`render_html` — a standalone single-file HTML page with an
  inline SVG chart of running gain against the Theorem-2 bound per
  window plus the same tables; no external assets, opens anywhere.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Optional, Sequence, Union

__all__ = [
    "render_text",
    "render_html",
    "write_html",
    "fmt",
    "html_table",
    "html_page",
    "svg_sparkline",
]

#: Shared stylesheet for every single-file dashboard/report page.
PAGE_STYLE = (
    "body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:2rem;"
    "color:#222;max-width:64rem}"
    "table{border-collapse:collapse;margin:0.5rem 0 1.5rem}"
    "th,td{border:1px solid #ccc;padding:0.2rem 0.6rem;font-size:0.85rem;"
    "text-align:right}"
    "th{background:#f0f0f0}"
    "h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.5rem}"
    ".kv{color:#555}"
)


def fmt(value, digits: int = 4) -> str:
    """Compact numeric formatting with a dash for missing values."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{digits}g}"
    return str(value)


# Internal alias kept for callers of the pre-public name.
_fmt = fmt


def html_table(rows: List[dict], columns: List[str]) -> str:
    """Render dict rows as a plain HTML table (escaped, ``-`` for gaps)."""
    if not rows:
        return "<p>(none)</p>"
    head = "".join(f"<th>{html.escape(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(f"<td>{html.escape(fmt(row.get(c)))}</td>" for c in columns)
        body.append(f"<tr>{cells}</tr>")
    return (
        '<table><thead><tr>' + head + "</tr></thead><tbody>"
        + "".join(body) + "</tbody></table>"
    )


_html_table = html_table


def html_page(title: str, body_parts: Sequence[str]) -> str:
    """Wrap body fragments in the standalone single-file page skeleton."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        "<style>",
        PAGE_STYLE,
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    parts.extend(body_parts)
    parts.append("</body></html>")
    return "\n".join(parts)


def svg_sparkline(
    values: Sequence[float],
    width: int = 240,
    height: int = 40,
    stroke: str = "#2980b9",
) -> str:
    """Inline SVG sparkline over a numeric series (no axes, no assets).

    Scales the series into the box; a single point renders as a flat
    line so trajectories of length one are still visible.
    """
    points = [float(v) for v in values if v is not None and v == v]
    if not points:
        return "<span>(no data)</span>"
    if len(points) == 1:
        points = points * 2
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    pad = 3
    x_step = (width - 2 * pad) / (len(points) - 1)
    coords = " ".join(
        f"{pad + i * x_step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(points)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        'style="background:#fafafa;border:1px solid #ddd;vertical-align:middle">'
        f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
        'stroke-width="1.5"/></svg>'
    )


def _window_rows(monitor, last: int) -> List[dict]:
    windows = monitor.windows
    return windows[-last:] if last and len(windows) > last else list(windows)


def render_text(monitor, last: int = 12) -> str:
    """Render the monitor state as a terminal panel (a string)."""
    cfg = monitor.config
    summary = monitor.summary()
    lines: List[str] = []
    lines.append("online attack monitor")
    lines.append("=" * 70)
    bound = summary["bound"]
    lines.append(
        f"config: window={cfg.window}s  n={_fmt(cfg.n)}  rate={_fmt(cfg.rate)}  "
        f"c={cfg.c}  d={cfg.d}  x={_fmt(cfg.x)}"
    )
    lines.append(
        f"bound:  {_fmt(bound)}   rules: {', '.join(cfg.rules) or '(none)'}"
    )
    lines.append(
        f"state:  windows={summary['windows']}  alerts={summary['alerts']}  "
        f"runs={summary['runs']}  final_gain={_fmt(summary['final_gain'])}  "
        f"max_gain={_fmt(summary['max_gain'])}"
    )
    rows = _window_rows(monitor, last)
    if rows:
        lines.append("")
        lines.append(
            f"{'t_end':>10} {'req':>8} {'hit%':>6} {'entropy':>8} "
            f"{'gain':>8} {'bound':>8}  alerts"
        )
        lines.append("-" * 70)
        for w in rows:
            t_end = w.get("t_end", w.get("trial"))
            gain = w.get("running_gain", w.get("gain"))
            hit = w.get("hit_ratio")
            lines.append(
                f"{_fmt(t_end):>10} {_fmt(w.get('requests')):>8} "
                f"{_fmt(100.0 * hit, 3) if hit is not None else '-':>6} "
                f"{_fmt(w.get('normalized_entropy')):>8} "
                f"{_fmt(gain):>8} {_fmt(w.get('bound')):>8}  "
                f"{','.join(w.get('alerts', [])) or '-'}"
            )
    alerts = monitor.alerts
    if alerts:
        lines.append("")
        lines.append(f"alerts ({len(alerts)}):")
        for a in alerts[-last:]:
            lines.append(
                f"  [{a['rule']}] trial={_fmt(a.get('trial'))} "
                f"window={_fmt(a.get('window'))} t={_fmt(a.get('t'))} "
                f"value={_fmt(a.get('value'))} > threshold={_fmt(a.get('threshold'))}"
            )
    gq = summary["gain_quantiles"]
    if gq.get("count"):
        lines.append("")
        lines.append(
            "gain quantiles:      "
            + "  ".join(f"{k}={_fmt(v)}" for k, v in gq.items())
        )
    nq = summary["node_load_quantiles"]
    if nq.get("count"):
        lines.append(
            "node-load quantiles: "
            + "  ".join(f"{k}={_fmt(v)}" for k, v in nq.items())
        )
    return "\n".join(lines)


def _svg_gain_chart(monitor, width: int = 720, height: int = 240) -> str:
    """Inline SVG polyline of running gain vs the bound, per window."""
    points = []
    for i, w in enumerate(monitor.windows):
        gain = w.get("running_gain", w.get("gain"))
        if gain is not None and gain == gain:
            points.append((i, float(gain), w.get("bound")))
    if not points:
        return "<p>(no windows recorded)</p>"
    bounds = [b for _, _, b in points if b is not None]
    y_values = [g for _, g, _ in points] + bounds
    y_max = max(y_values) * 1.1 or 1.0
    x_max = max(len(points) - 1, 1)
    pad = 36

    def sx(i: float) -> float:
        return pad + i / x_max * (width - 2 * pad)

    def sy(v: float) -> float:
        return height - pad - v / y_max * (height - 2 * pad)

    gain_pts = " ".join(f"{sx(i):.1f},{sy(g):.1f}" for i, (_, g, _) in enumerate(points))
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" style="background:#fafafa;border:1px solid #ddd">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" stroke="#888"/>',
        f'<polyline points="{gain_pts}" fill="none" stroke="#c0392b" stroke-width="2"/>',
    ]
    if bounds:
        bound_pts = " ".join(
            f"{sx(i):.1f},{sy(b):.1f}"
            for i, (_, _, b) in enumerate(points)
            if b is not None
        )
        parts.append(
            f'<polyline points="{bound_pts}" fill="none" stroke="#2980b9" '
            'stroke-width="2" stroke-dasharray="6 4"/>'
        )
    parts.append(
        f'<text x="{pad}" y="{pad - 10}" font-size="12" fill="#c0392b">running gain</text>'
    )
    parts.append(
        f'<text x="{pad + 110}" y="{pad - 10}" font-size="12" fill="#2980b9">'
        "Theorem-2 bound</text>"
    )
    parts.append(
        f'<text x="{pad - 6}" y="{height - pad + 14}" font-size="11" '
        'text-anchor="start" fill="#555">window →</text>'
    )
    parts.append(
        f'<text x="{pad - 30}" y="{sy(y_max / 1.1):.1f}" font-size="11" '
        f'fill="#555">{y_max / 1.1:.3g}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def render_html(monitor, title: str = "Online attack monitor") -> str:
    """Render the monitor state as a standalone HTML page (a string)."""
    summary = monitor.summary()
    window_rows = []
    for w in monitor.windows:
        window_rows.append(
            {
                "trial": w.get("trial"),
                "index": w.get("index"),
                "t_end": w.get("t_end"),
                "requests": w.get("requests"),
                "hit_ratio": w.get("hit_ratio"),
                "entropy": w.get("normalized_entropy"),
                "gain": w.get("running_gain", w.get("gain")),
                "bound": w.get("bound"),
                "alerts": ",".join(w.get("alerts", [])) or None,
            }
        )
    alert_rows = [
        {
            "rule": a.get("rule"),
            "trial": a.get("trial"),
            "window": a.get("window"),
            "t": a.get("t"),
            "value": a.get("value"),
            "threshold": a.get("threshold"),
        }
        for a in monitor.alerts
    ]
    quant_rows = [
        {"series": "gain", **summary["gain_quantiles"]},
        {"series": "node-load", **summary["node_load_quantiles"]},
    ]
    body = [
        f'<p class="kv">bound={html.escape(_fmt(summary["bound"]))} '
        f"windows={summary['windows']} alerts={summary['alerts']} "
        f"runs={summary['runs']} final_gain={html.escape(_fmt(summary['final_gain']))} "
        f"max_gain={html.escape(_fmt(summary['max_gain']))}</p>",
        "<h2>Running gain vs Theorem-2 bound</h2>",
        _svg_gain_chart(monitor),
        "<h2>Windows</h2>",
        _html_table(
            window_rows,
            ["trial", "index", "t_end", "requests", "hit_ratio", "entropy",
             "gain", "bound", "alerts"],
        ),
        "<h2>Alerts</h2>",
        _html_table(alert_rows, ["rule", "trial", "window", "t", "value", "threshold"]),
        "<h2>Quantile sketches (P²)</h2>",
        _html_table(
            quant_rows,
            ["series", "p50", "p95", "p99", "count", "mean", "min", "max"],
        ),
    ]
    return html_page(title, body)


def write_html(
    monitor, path: Union[str, Path], title: Optional[str] = None
) -> Path:
    """Write :func:`render_html` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        render_html(monitor, title=title or "Online attack monitor"),
        encoding="utf-8",
    )
    return path

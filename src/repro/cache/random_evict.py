"""Random replacement."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..rng import as_generator
from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["RandomEvictionCache"]


@register_component("cache", "random")
class RandomEvictionCache(EvictingCache):
    """Evict a uniformly random resident key.

    Memoryless and therefore immune to *pattern*-based eviction attacks,
    at the cost of no popularity retention at all.  Implemented with the
    standard dict + swap-pop array trick for O(1) random choice.
    """

    POLICY = "random"

    def __init__(
        self, capacity: int, rng: Union[None, int, np.random.Generator] = None
    ) -> None:
        super().__init__(capacity)
        self._rng = as_generator(rng, "random-evict")
        self._index: Dict[int, int] = {}
        self._order: List[int] = []

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterable[int]:
        return iter(self._order)

    def _contains(self, key: int) -> bool:
        return key in self._index

    def _on_hit(self, key: int) -> None:
        pass  # memoryless

    def _select_victim(self) -> Optional[int]:
        if not self._order:
            return None
        return self._order[int(self._rng.integers(0, len(self._order)))]

    def _remove(self, key: int) -> None:
        pos = self._index.pop(key)
        last = self._order.pop()
        if last != key:
            self._order[pos] = last
            self._index[last] = pos

    def _insert(self, key: int) -> None:
        self._index[key] = len(self._order)
        self._order.append(key)

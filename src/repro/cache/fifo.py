"""First-in-first-out replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["FIFOCache"]


@register_component("cache", "fifo")
class FIFOCache(EvictingCache):
    """FIFO: evict in insertion order, ignoring hits entirely.

    The cheapest real policy; included because memcached-style slab
    reuse often degenerates to FIFO under churn, and because it gives
    the cleanest contrast with recency-aware LRU under scan attacks
    (they behave identically there — neither retains the scanned keys).
    """

    POLICY = "fifo"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[int]:
        return iter(self._entries)

    def _contains(self, key: int) -> bool:
        return key in self._entries

    def _on_hit(self, key: int) -> None:
        pass  # insertion order is unaffected by hits

    def _select_victim(self) -> Optional[int]:
        return next(iter(self._entries), None)

    def _remove(self, key: int) -> None:
        del self._entries[key]

    def _insert(self, key: int) -> None:
        self._entries[key] = None

"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from ..scenario.registry import register_component
from .base import Cache

__all__ = ["ARCCache"]


@register_component("cache", "arc")
class ARCCache(Cache):
    """ARC balances recency (T1) and frequency (T2) adaptively.

    Two resident lists (T1 recency, T2 frequency) and two ghost lists
    (B1, B2) steer an adaptation target ``p``: ghost hits in B1 grow the
    recency share, ghost hits in B2 shrink it.  ARC is scan-resistant
    like 2Q but self-tunes, making it the strongest practical contender
    against the perfect-cache assumption in the ablation bench.

    Implementation follows the FAST'03 pseudocode with keys only (values
    are irrelevant to load-balancing experiments).
    """

    POLICY = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._t1: "OrderedDict[int, None]" = OrderedDict()  # recent, resident
        self._t2: "OrderedDict[int, None]" = OrderedDict()  # frequent, resident
        self._b1: "OrderedDict[int, None]" = OrderedDict()  # recent, ghost
        self._b2: "OrderedDict[int, None]" = OrderedDict()  # frequent, ghost
        self._p = 0.0  # adaptation target for |T1|

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def keys(self) -> Iterable[int]:
        yield from self._t1
        yield from self._t2

    @property
    def p(self) -> float:
        """Current adaptation target for the recency list size."""
        return self._p

    @property
    def recency_size(self) -> int:
        """Resident keys in T1."""
        return len(self._t1)

    @property
    def frequency_size(self) -> int:
        """Resident keys in T2."""
        return len(self._t2)

    def _contains(self, key: int) -> bool:
        return key in self._t1 or key in self._t2

    def _on_hit(self, key: int) -> None:
        # Case I of the paper: move to MRU of T2.
        if key in self._t1:
            del self._t1[key]
        else:
            del self._t2[key]
        self._t2[key] = None

    def _replace(self, in_b2: bool) -> None:
        """REPLACE subroutine: evict from T1 or T2 into its ghost list."""
        if self._t1 and (
            len(self._t1) > self._p or (in_b2 and len(self._t1) == int(self._p))
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        elif self._t2:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        elif self._t1:  # pragma: no cover - defensive
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        self.stats.evictions += 1

    def _admit(self, key: int) -> None:
        c = self._capacity
        if key in self._b1:
            # Case II: ghost hit in B1 — favour recency.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(c), self._p + delta)
            self._replace(in_b2=False)
            del self._b1[key]
            self._t2[key] = None
        elif key in self._b2:
            # Case III: ghost hit in B2 — favour frequency.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            self._replace(in_b2=True)
            del self._b2[key]
            self._t2[key] = None
        else:
            # Case IV: brand-new key.
            l1 = len(self._t1) + len(self._b1)
            l2 = len(self._t2) + len(self._b2)
            if l1 == c:
                if len(self._t1) < c:
                    self._b1.popitem(last=False)
                    self._replace(in_b2=False)
                else:
                    victim, _ = self._t1.popitem(last=False)
                    self.stats.evictions += 1
            elif l1 < c and l1 + l2 >= c:
                if l1 + l2 >= 2 * c:
                    self._b2.popitem(last=False)
                if len(self) >= c:
                    self._replace(in_b2=False)
            self._t1[key] = None
        self.stats.insertions += 1

"""Multi-layer cache hierarchy (DistCache-style cache tree).

The paper analyses one front-end cache over replicated backends;
DistCache (Liu et al., NSDI'19; PAPERS.md) generalises to a *hierarchy*:
a layer of edge cache shards, an aggregate layer behind it, backends
last.  :class:`CacheTree` composes existing :class:`~repro.cache.base.
Cache` policies into such a hierarchy behind the same ``access(key)``
seam, so both simulation engines, the metrics exporter and the monitor
see a tree exactly where they saw a flat cache:

- each layer partitions keys across its shards with an *independent*
  keyed hash (:class:`~repro.cluster.hierarchy.LayeredPartitioner`);
- a :class:`~repro.cluster.hierarchy.LayerSelection` decides the probe
  order across layers — ``cascade`` is the classic look-through
  hierarchy, ``two-choice`` is DistCache's power-of-two-choices
  balancing between each key's per-layer candidates;
- a miss in a probed shard admits the key there (path admission), so
  every shard runs its own replacement policy unmodified.

A **degenerate** tree (one layer, one shard) performs exactly one
``shard.access(key)`` per request, consumes zero RNG and delegates its
metrics export to the shard — bit-identical to running the shard cache
flat, which ``tests/test_tree_differential.py`` pins.

Trees never take the batched fast path: residency moves *between*
layers on every miss, so the kernel's static-residency precomputation
would only see the edge layer.  :func:`repro.sim.kernel.supports`
rejects any cache with ``HIERARCHICAL = True``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..cluster.hierarchy import (
    CascadeLayerSelection,
    LayeredPartitioner,
    LayerSelection,
)
from ..exceptions import CacheError
from ..scenario.registry import register_component
from .base import Cache

__all__ = ["CacheTree"]


def _build_tree(ctx, layers=None, selection="cascade", seed=None):
    """Spec builder: compose a tree from per-layer shard cache specs.

    ``{kind: tree, layers: [{shards: 2, cache: lru}, {shards: 1,
    cache: {kind: slru, ...}}], selection: two-choice}`` — every shard
    cache resolves through the cache registry (capacity defaults to the
    scenario's ``c`` like any other cache), the layer selection through
    the ``layer-selection`` namespace, and the layered partitioner is
    seeded from the scenario seed unless overridden.
    """
    from ..exceptions import ScenarioValidationError
    from ..scenario.build import build_component
    from ..scenario.spec import ComponentSpec

    if not layers:
        raise ScenarioValidationError(
            "cache.layers: a tree needs at least one layer, e.g. "
            "[{shards: 2, cache: lru}]",
            path="cache.layers",
        )
    built_layers: List[Tuple[Cache, ...]] = []
    for i, layer in enumerate(layers):
        where = f"cache.layers[{i}]"
        if not isinstance(layer, dict):
            raise ScenarioValidationError(
                f"{where}: each layer is a mapping with 'shards' and "
                f"'cache', got {layer!r}",
                path=where,
            )
        unknown = set(layer) - {"shards", "cache"}
        if unknown:
            raise ScenarioValidationError(
                f"{where}: unknown keys {sorted(unknown)}", path=where
            )
        shards = layer.get("shards", 1)
        if not isinstance(shards, int) or shards < 1:
            raise ScenarioValidationError(
                f"{where}.shards: need a positive integer, got {shards!r}",
                path=f"{where}.shards",
            )
        cache_spec = ComponentSpec.from_data(
            layer.get("cache", "lru"), f"{where}.cache"
        )
        built_layers.append(
            tuple(
                build_component("cache", cache_spec, ctx, path=f"{where}.cache")
                for _ in range(shards)
            )
        )
    selection_spec = ComponentSpec.from_data(selection, "cache.selection")
    layer_selection = build_component(
        "layer-selection", selection_spec, ctx, path="cache.selection"
    )
    partitioner = LayeredPartitioner(
        tuple(len(layer) for layer in built_layers),
        seed=ctx.seed if seed is None else seed,
    )
    return CacheTree(
        built_layers, partitioner=partitioner, selection=layer_selection
    )


@register_component(
    "cache",
    "tree",
    example=lambda ctx: {
        "layers": [
            {"shards": 2, "cache": "lru"},
            {"shards": 1, "cache": "lru"},
        ],
        "selection": "two-choice",
    },
    builder=_build_tree,
)
class CacheTree(Cache):
    """A hierarchy of cache shards behind the flat ``Cache`` interface.

    Parameters
    ----------
    layers:
        Per-layer shard caches, edge layer first; every entry is a
        sequence of independent :class:`~repro.cache.base.Cache`
        instances (one per shard).
    partitioner:
        Per-layer shard assignment; defaults to a
        :class:`~repro.cluster.hierarchy.LayeredPartitioner` over the
        layer widths with the default seed.
    selection:
        Probe-order policy across layers; defaults to
        :class:`~repro.cluster.hierarchy.CascadeLayerSelection`.
    """

    POLICY = "tree"

    #: Residency moves between layers per access; the batched kernel's
    #: single-resident-set precomputation cannot express that, so
    #: :func:`repro.sim.kernel.supports` must reject trees even when
    #: every shard is itself statically resident.
    HIERARCHICAL = True

    def __init__(
        self,
        layers: Sequence[Sequence[Cache]],
        partitioner: Optional[LayeredPartitioner] = None,
        selection: Optional[LayerSelection] = None,
    ) -> None:
        if not layers or any(not layer for layer in layers):
            raise CacheError("a cache tree needs >= 1 shard in every layer")
        self._layers: Tuple[Tuple[Cache, ...], ...] = tuple(
            tuple(layer) for layer in layers
        )
        for layer in self._layers:
            for shard in layer:
                if not isinstance(shard, Cache):
                    raise CacheError(
                        f"tree shards must be Cache instances, got {shard!r}"
                    )
        widths = tuple(len(layer) for layer in self._layers)
        if partitioner is None:
            partitioner = LayeredPartitioner(widths)
        if partitioner.widths != widths:
            raise CacheError(
                f"partitioner widths {partitioner.widths} != layer widths "
                f"{widths}"
            )
        super().__init__(
            sum(shard.capacity for layer in self._layers for shard in layer)
        )
        self._partitioner = partitioner
        self._selection = (
            selection if selection is not None else CascadeLayerSelection()
        )
        self._entered: List[int] = [0] * len(widths)
        self._layer_hits: List[int] = [0] * len(widths)
        self._shard_served: List[List[int]] = [[0] * w for w in widths]
        #: ``(layer, shard)`` that served the most recent hit, ``None``
        #: after a full miss — the simulator reads this to attribute
        #: per-layer monitor telemetry without a second lookup.
        self.last_hit: Optional[Tuple[int, int]] = None
        self._published_layers = [0] * len(widths)
        self._published_entered = [0] * len(widths)

    # ------------------------------------------------------------------
    # structure
    @property
    def widths(self) -> Tuple[int, ...]:
        """Shard count per layer, edge layer first."""
        return self._partitioner.widths

    @property
    def depth(self) -> int:
        """Number of layers."""
        return len(self._layers)

    @property
    def degenerate(self) -> bool:
        """One layer, one shard: behaviourally identical to flat."""
        return self.widths == (1,)

    @property
    def partitioner(self) -> LayeredPartitioner:
        """The per-layer shard assignment."""
        return self._partitioner

    @property
    def selection(self) -> LayerSelection:
        """The inter-layer probe-order policy."""
        return self._selection

    @property
    def layers(self) -> Tuple[Tuple[Cache, ...], ...]:
        """The shard caches, ``layers[layer][shard]``."""
        return self._layers

    @property
    def STATIC_RESIDENCY(self) -> bool:  # noqa: N802 - mirrors class attr
        """True iff every shard is statically resident.

        A tree of perfect caches is *per-shard* static, which is exactly
        the trap the ``HIERARCHICAL`` kernel gate exists for: the fast
        kernel would precompute hit/miss against the union resident set
        and miss the per-layer probe accounting entirely.
        """
        return all(
            getattr(shard, "STATIC_RESIDENCY", False)
            for layer in self._layers
            for shard in layer
        )

    # ------------------------------------------------------------------
    # telemetry
    @property
    def entered(self) -> Tuple[int, ...]:
        """Requests that probed each layer (conservation anchor)."""
        return tuple(self._entered)

    @property
    def layer_hits(self) -> Tuple[int, ...]:
        """Hits served by each layer."""
        return tuple(self._layer_hits)

    @property
    def shard_served(self) -> Tuple[Tuple[int, ...], ...]:
        """Hits served per shard, ``shard_served[layer][shard]``."""
        return tuple(tuple(counts) for counts in self._shard_served)

    # ------------------------------------------------------------------
    # the Cache seam
    def access(self, key: int) -> bool:
        """Probe the key's shard in each layer until one hits.

        Each probed shard runs its own ``access`` — a probe miss admits
        the key there (path admission) before the next layer is tried.
        The degenerate tree performs exactly one shard access, making it
        bit-identical to the flat cache it wraps.
        """
        key = int(key)
        shards = self._partitioner.assign(key)
        order = self._selection.probe_order(shards, self._shard_served)
        for layer in order:
            shard = shards[layer]
            self._entered[layer] += 1
            if self._layers[layer][shard].access(key):
                self.stats.hits += 1
                self._layer_hits[layer] += 1
                self._shard_served[layer][shard] += 1
                self.last_hit = (layer, shard)
                return True
        self.stats.misses += 1
        self.last_hit = None
        return False

    def __len__(self) -> int:
        return sum(len(shard) for layer in self._layers for shard in layer)

    def keys(self) -> Iterable[int]:
        seen = set()
        for layer in self._layers:
            for shard in layer:
                for key in shard.keys():
                    if key not in seen:
                        seen.add(key)
                        yield key

    def _contains(self, key: int) -> bool:
        shards = self._partitioner.assign(int(key))
        return any(
            int(key) in self._layers[layer][shard]
            for layer, shard in enumerate(shards)
        )

    def _on_hit(self, key: int) -> None:  # pragma: no cover - access overridden
        raise AssertionError("CacheTree.access() never dispatches here")

    def _admit(self, key: int) -> None:  # pragma: no cover - access overridden
        raise AssertionError("CacheTree.access() never dispatches here")

    # ------------------------------------------------------------------
    # observability
    def publish_metrics(self, metrics) -> None:
        """Export counters; degenerate trees delegate to their shard.

        Delegation keeps the degenerate tree's metrics export *byte*
        identical to the flat path (same ``policy=`` label, same
        counters).  Non-degenerate trees publish tree-level hit/miss
        plus per-layer probe and hit counters, and let every shard
        publish its own policy-labelled counters.
        """
        if self.degenerate:
            self._layers[0][0].publish_metrics(metrics)
            return
        from ..obs.metrics import as_registry

        registry = as_registry(metrics)
        stats = self.stats
        # Aggregate shard admissions into the tree-level totals so the
        # base delta publisher exports them under policy="tree".
        stats.insertions = sum(
            shard.stats.insertions for layer in self._layers for shard in layer
        )
        stats.evictions = sum(
            shard.stats.evictions for layer in self._layers for shard in layer
        )
        super().publish_metrics(metrics)
        for layer, width in enumerate(self.widths):
            hits_now = self._layer_hits[layer]
            entered_now = self._entered[layer]
            hits_delta = hits_now - self._published_layers[layer]
            entered_delta = entered_now - self._published_entered[layer]
            if hits_delta:
                registry.counter(
                    "tree_layer_hits_total", layer=str(layer)
                ).inc(hits_delta)
            if entered_delta:
                registry.counter(
                    "tree_layer_entered_total", layer=str(layer)
                ).inc(entered_delta)
            self._published_layers[layer] = hits_now
            self._published_entered[layer] = entered_now
            registry.gauge("tree_layer_shards", layer=str(layer)).set(width)

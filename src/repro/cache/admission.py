"""Frequency-based admission (TinyLFU-style) around any evicting cache.

A plain replacement policy admits every missed key, so a flood of
one-shot keys — exactly the paper's uniform attack sweep — churns the
cache.  An *admission filter* asks first: is the candidate estimated to
be more popular than the key it would displace?  If not, the miss is
served without polluting the cache.  Combined with a count-min sketch
this is the TinyLFU design (Einziger & Friedman, 2014); wrapped around
LRU it closes most of the gap to the paper's perfect cache in the
ablation bench.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..exceptions import CacheError
from ..scenario.registry import register_component
from .base import Cache, EvictingCache
from .sketch import CountMinSketch

__all__ = ["FrequencyAdmissionCache"]


def _build_tinylfu(ctx, inner="lru", sample_size: int = 100_000, **inner_params):
    """Spec builder: ``{kind: tinylfu, inner: lru, ...}`` wraps the inner
    policy (itself resolved through the cache registry) in the filter."""
    from ..scenario.build import build_component
    from ..scenario.spec import ComponentSpec

    inner_spec = (
        ComponentSpec.from_data(inner, "cache.inner")
        if not isinstance(inner, ComponentSpec)
        else inner
    )
    inner_cache = build_component("cache", inner_spec, ctx, path="cache.inner")
    return FrequencyAdmissionCache(inner_cache, sample_size=sample_size)


@register_component("cache", "tinylfu", builder=_build_tinylfu)
class FrequencyAdmissionCache(Cache):
    """Wrap an :class:`~repro.cache.base.EvictingCache` with a TinyLFU
    admission filter.

    Parameters
    ----------
    inner:
        The replacement policy guarding residency (e.g. an LRU).
    sketch:
        Frequency estimator; a default count-min sketch is built when
        omitted.
    sample_size:
        Sketch aging period: after this many recorded accesses all
        counters halve, keeping estimates fresh under drift.
    """

    def __init__(
        self,
        inner: EvictingCache,
        sketch: Optional[CountMinSketch] = None,
        sample_size: int = 100_000,
    ) -> None:
        if not isinstance(inner, EvictingCache):
            raise CacheError("admission filter needs an EvictingCache inner policy")
        super().__init__(inner.capacity)
        if sample_size < 1:
            raise CacheError(f"sample_size must be positive, got {sample_size}")
        self._inner = inner
        self._sketch = sketch if sketch is not None else CountMinSketch()
        self._sample_size = sample_size
        self.rejected = 0
        self._published_rejected = 0

    @property
    def policy_name(self) -> str:
        """Composed label, e.g. ``tinylfu-lru`` for a wrapped LRU."""
        return f"tinylfu-{self._inner.policy_name}"

    def publish_metrics(self, metrics) -> None:
        """Base counters plus the admission-specific rejection count."""
        from ..obs.metrics import as_registry

        super().publish_metrics(metrics)
        registry = as_registry(metrics)
        delta = self.rejected - self._published_rejected
        if delta:
            registry.counter(
                "cache_admission_rejected_total", policy=self.policy_name
            ).inc(delta)
        self._published_rejected = self.rejected

    @property
    def inner(self) -> EvictingCache:
        """The wrapped replacement policy."""
        return self._inner

    @property
    def sketch(self) -> CountMinSketch:
        """The frequency estimator."""
        return self._sketch

    def __len__(self) -> int:
        return len(self._inner)

    def keys(self) -> Iterable[int]:
        return self._inner.keys()

    def _contains(self, key: int) -> bool:
        return self._inner._contains(key)

    def _on_hit(self, key: int) -> None:
        self._record(key)
        self._inner._on_hit(key)

    def _admit(self, key: int) -> None:
        self._record(key)
        if len(self._inner) < self._inner.capacity:
            self._inner._admit(key)
            self.stats.insertions += 1
            return
        victim = self._inner.peek_victim()
        if victim is not None and self._sketch.estimate(key) <= self._sketch.estimate(victim):
            self.rejected += 1
            return
        self._inner._admit(key)
        self.stats.insertions += 1
        self.stats.evictions += 1

    def _record(self, key: int) -> None:
        self._sketch.add(key)
        if self._sketch.total >= self._sample_size:
            self._sketch.halve()

"""Cache interface and shared accounting.

Two invariants every implementation must uphold (and the property tests
enforce):

1. the cache never holds more than ``capacity`` items;
2. ``access(key)`` reports a hit iff ``key`` was resident when called.

A zero-capacity cache is legal and simply misses everything — useful as
the "no cache" baseline in experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional

from ..exceptions import CacheError

__all__ = ["CacheStats", "Cache", "EvictingCache"]


@dataclass
class CacheStats:
    """Running counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any access)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.insertions = self.evictions = 0


class Cache(ABC):
    """A front-end cache: look up a key, admit it on a miss.

    Subclasses implement residency (:meth:`_contains`), the hit-path
    bookkeeping (:meth:`_on_hit`) and the miss-path admission
    (:meth:`_admit`); this base class owns the statistics so hit-rate
    accounting is uniform across policies.

    Observability: :meth:`publish_metrics` exports the running counters
    into a :class:`repro.obs.MetricsRegistry` labelled by
    :attr:`policy_name`.  The hot :meth:`access` path is never
    instrumented directly — counters are published from the
    :class:`CacheStats` totals, which keeps the lookup loop identical
    whether observability is on or off.
    """

    #: Short policy label used in metrics (``cache_hits_total{policy=}``)
    #: and reports; subclasses override, the default is derived from the
    #: class name.
    POLICY: Optional[str] = None

    #: True only for policies whose resident set never changes, where
    #: ``access(key)`` is equivalent to membership in that fixed set and
    #: touches nothing but the hit/miss counters.  The batched event
    #: kernel relies on this contract to pre-resolve hit/miss decisions
    #: for a whole run in one vectorized pass.
    STATIC_RESIDENCY: bool = False

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise CacheError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self.stats = CacheStats()
        # Watermark of already-published totals, so repeated publishes
        # emit exact deltas instead of double counting.
        self._published = (0, 0, 0, 0)

    @property
    def policy_name(self) -> str:
        """Label identifying this policy in metrics and reports."""
        if self.POLICY is not None:
            return self.POLICY
        name = type(self).__name__
        if name.endswith("Cache"):
            name = name[: -len("Cache")]
        return name.lower()

    def publish_metrics(self, metrics) -> None:
        """Export hit/miss/insertion/eviction counters to a registry.

        Emits only the *delta* since the previous publish (idempotent
        when nothing changed), plus point-in-time size/capacity gauges.
        ``metrics`` may be ``None`` (no-op) or any
        :class:`repro.obs.MetricsRegistry`.
        """
        from ..obs.metrics import as_registry

        registry = as_registry(metrics)
        stats = self.stats
        current = (stats.hits, stats.misses, stats.insertions, stats.evictions)
        names = (
            "cache_hits_total",
            "cache_misses_total",
            "cache_insertions_total",
            "cache_evictions_total",
        )
        policy = self.policy_name
        for name, now, seen in zip(names, current, self._published):
            # A CacheStats.reset() between publishes rewinds the totals;
            # publish the post-reset totals from scratch in that case.
            delta = now - seen if now >= seen else now
            if delta:
                registry.counter(name, policy=policy).inc(delta)
        self._published = current
        registry.gauge("cache_size", policy=policy).set(len(self))
        registry.gauge("cache_capacity", policy=policy).set(self._capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of resident items."""
        return self._capacity

    def access(self, key: int) -> bool:
        """Look up ``key``; admit it on a miss.  Returns True on a hit."""
        if self._capacity == 0:
            self.stats.misses += 1
            return False
        if self._contains(key):
            self.stats.hits += 1
            self._on_hit(key)
            return True
        self.stats.misses += 1
        self._admit(key)
        return False

    def __contains__(self, key: int) -> bool:
        return self._capacity > 0 and self._contains(key)

    @abstractmethod
    def __len__(self) -> int:
        """Number of items currently resident."""

    @abstractmethod
    def keys(self) -> Iterable[int]:
        """Currently resident keys (order unspecified)."""

    @abstractmethod
    def _contains(self, key: int) -> bool:
        """Residency check without statistics side effects."""

    @abstractmethod
    def _on_hit(self, key: int) -> None:
        """Policy bookkeeping for a hit (recency/frequency updates)."""

    @abstractmethod
    def _admit(self, key: int) -> None:
        """Handle a missed key: usually insert, evicting if full."""


class EvictingCache(Cache):
    """A cache whose miss path is insert-with-eviction.

    Factors the common pattern so concrete policies only provide the
    victim choice (:meth:`_select_victim`) and the insert/touch
    bookkeeping.  Policies with more exotic miss paths (ghost lists,
    admission filters) extend :class:`Cache` directly.
    """

    def _admit(self, key: int) -> None:
        if len(self) >= self._capacity:
            victim = self._select_victim()
            if victim is not None:
                self._remove(victim)
                self.stats.evictions += 1
        self._insert(key)
        self.stats.insertions += 1

    @abstractmethod
    def _select_victim(self) -> Optional[int]:
        """Choose the key to evict (cache is full when this is called)."""

    @abstractmethod
    def _remove(self, key: int) -> None:
        """Remove ``key`` from the cache."""

    @abstractmethod
    def _insert(self, key: int) -> None:
        """Insert a non-resident ``key`` (space is available)."""

    def peek_victim(self) -> Optional[int]:
        """Key that would be evicted next, without evicting it.

        Used by admission filters to compare the candidate against the
        incumbent victim.
        """
        if len(self) == 0:
            return None
        return self._select_victim()

"""2Q replacement (Johnson & Shasha, VLDB'94)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from ..exceptions import CacheError
from ..scenario.registry import register_component
from .base import Cache

__all__ = ["TwoQCache"]


@register_component("cache", "2q")
class TwoQCache(Cache):
    """Simplified full 2Q: probation FIFO (A1in), ghost FIFO (A1out),
    protected LRU (Am).

    New keys enter the probation queue; only keys re-referenced after
    falling into the ghost list are promoted to the protected LRU.  This
    makes one-shot scans — including the paper's uniform attack sweep —
    unable to displace the protected set, a property the cache ablation
    bench shows clearly against plain LRU.

    Sizing follows the paper's recommendation: ``Kin = capacity / 4``
    probation slots, ``Kout = capacity / 2`` ghost entries (ghosts hold
    keys only and do not count against capacity).
    """

    POLICY = "2q"

    def __init__(self, capacity: int, kin_fraction: float = 0.25, kout_fraction: float = 0.5) -> None:
        super().__init__(capacity)
        if not 0.0 < kin_fraction < 1.0:
            raise CacheError(f"kin_fraction must be in (0, 1), got {kin_fraction}")
        if kout_fraction <= 0.0:
            raise CacheError(f"kout_fraction must be positive, got {kout_fraction}")
        self._kin = max(1, int(capacity * kin_fraction)) if capacity else 0
        self._kout = max(1, int(capacity * kout_fraction)) if capacity else 0
        self._a1in: "OrderedDict[int, None]" = OrderedDict()   # probation FIFO
        self._a1out: "OrderedDict[int, None]" = OrderedDict()  # ghost keys
        self._am: "OrderedDict[int, None]" = OrderedDict()     # protected LRU

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def keys(self) -> Iterable[int]:
        yield from self._a1in
        yield from self._am

    @property
    def probation_size(self) -> int:
        """Resident keys in the probation FIFO."""
        return len(self._a1in)

    @property
    def protected_size(self) -> int:
        """Resident keys in the protected LRU."""
        return len(self._am)

    @property
    def ghost_size(self) -> int:
        """Non-resident keys remembered in the ghost list."""
        return len(self._a1out)

    def _contains(self, key: int) -> bool:
        return key in self._a1in or key in self._am

    def _on_hit(self, key: int) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # 2Q rule: a hit in A1in does nothing (stays FIFO-ordered).

    def _reclaim(self) -> None:
        """Free one slot per the 2Q reclamation rule."""
        if len(self._a1in) > self._kin or (self._a1in and not self._am):
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        elif self._am:
            self._am.popitem(last=False)
        elif self._a1in:  # pragma: no cover - covered by first branch
            self._a1in.popitem(last=False)
        self.stats.evictions += 1

    def _admit(self, key: int) -> None:
        if key in self._a1out:
            # Re-reference after ghosting: promote straight to protected.
            del self._a1out[key]
            if len(self) >= self._capacity:
                self._reclaim()
            self._am[key] = None
        else:
            if len(self) >= self._capacity:
                self._reclaim()
            self._a1in[key] = None
        self.stats.insertions += 1

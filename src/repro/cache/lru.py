"""Least-recently-used replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["LRUCache"]


@register_component("cache", "lru")
class LRUCache(EvictingCache):
    """Classic LRU over an :class:`~collections.OrderedDict`.

    Hits move the key to the most-recent end; the victim is the
    least-recent end.  All operations are O(1).

    LRU is the policy most easily defeated by the paper's adversary: a
    uniform scan over ``x > c`` keys evicts every key before its next
    reuse, driving the hit rate to ~``c/x`` — see the cache ablation
    bench.
    """

    POLICY = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[int]:
        return iter(self._entries)

    def _contains(self, key: int) -> bool:
        return key in self._entries

    def _on_hit(self, key: int) -> None:
        self._entries.move_to_end(key)

    def _select_victim(self) -> Optional[int]:
        return next(iter(self._entries), None)

    def _remove(self, key: int) -> None:
        del self._entries[key]

    def _insert(self, key: int) -> None:
        self._entries[key] = None

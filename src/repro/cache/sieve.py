"""SIEVE replacement (Zhang et al., NSDI'24)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["SieveCache"]


class _Node:
    __slots__ = ("key", "visited", "prev", "next")

    def __init__(self, key: int) -> None:
        self.key = key
        self.visited = False
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


@register_component("cache", "sieve")
class SieveCache(EvictingCache):
    """SIEVE: lazy-promotion FIFO with a retention hand.

    Entries sit in insertion order; a hit just sets a visited bit (no
    list movement, like CLOCK).  Eviction sweeps a *hand* from tail to
    head: visited entries get their bit cleared and survive in place,
    the first unvisited entry is evicted and the hand rests just before
    it.  Because survivors keep their position (no reinsertion), one-hit
    wonders sift out quickly — SIEVE is simpler than LRU yet
    scan-resistant, which is why it is included alongside the classics
    in the cache ablation.
    """

    POLICY = "sieve"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None  # newest
        self._tail: Optional[_Node] = None  # oldest
        self._hand: Optional[_Node] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def keys(self) -> Iterable[int]:
        return iter(self._nodes)

    def _contains(self, key: int) -> bool:
        return key in self._nodes

    def _on_hit(self, key: int) -> None:
        self._nodes[key].visited = True

    def _select_victim(self) -> Optional[int]:
        if not self._nodes:
            return None
        node = self._hand if self._hand is not None else self._tail
        # Sweep from the tail (oldest) toward the head, clearing visited
        # bits; wraps at most twice (after one full sweep every bit is
        # clear, so an unvisited entry must be found).
        for _ in range(2 * len(self._nodes) + 1):
            if node is None:
                node = self._tail
            if not node.visited:
                self._hand = node.next
                return node.key
            node.visited = False
            node = node.next
        return self._tail.key  # pragma: no cover - defensive

    def _remove(self, key: int) -> None:
        node = self._nodes.pop(key)
        if self._hand is node:
            self._hand = node.next
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._tail = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._head = node.prev

    def _insert(self, key: int) -> None:
        node = _Node(key)
        node.prev = self._head
        if self._head is not None:
            self._head.next = node
        self._head = node
        if self._tail is None:
            self._tail = node
        self._nodes[key] = node

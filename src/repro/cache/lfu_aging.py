"""LFU with periodic aging (counter halving)."""

from __future__ import annotations

from ..exceptions import CacheError
from ..scenario.registry import register_component
from .lfu import LFUCache

__all__ = ["LFUAgingCache"]


@register_component("cache", "lfu-aging")
class LFUAgingCache(LFUCache):
    """LFU whose counters halve every ``aging_interval`` accesses.

    Pure LFU never forgets: a key popular last week blocks admission of
    keys popular now.  Halving all counters periodically (the classic
    "aging" fix) bounds that memory.  For the paper's *stationary*
    adversary the two behave the same; under popularity drift aging
    recovers much faster — the drift scenario in the cache ablation
    bench demonstrates this.
    """

    POLICY = "lfu-aging"

    def __init__(self, capacity: int, aging_interval: int = 10_000) -> None:
        super().__init__(capacity)
        if aging_interval < 1:
            raise CacheError(f"aging_interval must be positive, got {aging_interval}")
        self._aging_interval = aging_interval
        self._since_aging = 0

    @property
    def aging_interval(self) -> int:
        """Accesses between counter-halving passes."""
        return self._aging_interval

    def access(self, key: int) -> bool:
        hit = super().access(key)
        self._since_aging += 1
        if self._since_aging >= self._aging_interval:
            self._age()
            self._since_aging = 0
        return hit

    def _age(self) -> None:
        """Halve every counter (floor, minimum 1) and rebuild buckets."""
        if not self._freq:
            return
        survivors = {key: max(1, freq // 2) for key, freq in self._freq.items()}
        # Rebuild preserving the per-bucket LRU order as closely as the
        # halving map allows (iteration order of the old buckets).
        old_order = []
        for freq in sorted(self._buckets):
            old_order.extend(self._buckets[freq].keys())
        self._freq.clear()
        self._buckets.clear()
        for key in old_order:
            freq = survivors[key]
            self._freq[key] = freq
            self._buckets[freq][key] = None
        self._min_freq = min(self._buckets) if self._buckets else 0

"""CLOCK (second-chance) replacement."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["ClockCache"]


@register_component("cache", "clock")
class ClockCache(EvictingCache):
    """CLOCK: LRU approximation with one reference bit per entry.

    A hand sweeps a circular buffer; referenced entries get a second
    chance (bit cleared, hand advances), unreferenced ones are evicted.
    This is what real page caches and many in-memory caches ship because
    hits are a single bit-set with no list manipulation.
    """

    POLICY = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._slots: List[Optional[int]] = []
        self._refbit: List[bool] = []
        self._where: Dict[int, int] = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._where)

    def keys(self) -> Iterable[int]:
        return iter(self._where)

    def _contains(self, key: int) -> bool:
        return key in self._where

    def _on_hit(self, key: int) -> None:
        self._refbit[self._where[key]] = True

    def _select_victim(self) -> Optional[int]:
        if not self._where:
            return None
        # Sweep until an unreferenced slot is found; clear bits on the way.
        # Terminates within two full sweeps since bits only get cleared.
        while True:
            self._hand %= len(self._slots)
            key = self._slots[self._hand]
            if key is None:
                self._hand += 1
                continue
            if self._refbit[self._hand]:
                self._refbit[self._hand] = False
                self._hand += 1
            else:
                # Advance past the victim so the next sweep does not
                # immediately re-target whatever replaces it (real CLOCK
                # semantics; without this the policy degenerates into
                # evict-most-recent under scans).
                self._hand += 1
                return key

    def _remove(self, key: int) -> None:
        pos = self._where.pop(key)
        self._slots[pos] = None
        self._refbit[pos] = False

    def _insert(self, key: int) -> None:
        # New entries start with the reference bit CLEAR (classic CLOCK):
        # only a subsequent hit earns the second chance, otherwise a
        # one-shot insertion would survive a full sweep undeservedly.
        # Reuse a free slot if one exists (the one just vacated), else grow.
        for pos in range(len(self._slots)):
            if self._slots[pos] is None:
                self._slots[pos] = key
                self._refbit[pos] = False
                self._where[key] = pos
                return
        self._slots.append(key)
        self._refbit.append(False)
        self._where[key] = len(self._slots) - 1

"""Least-frequently-used replacement (exact, O(1))."""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, Iterable, Optional

from ..scenario.registry import register_component
from .base import EvictingCache

__all__ = ["LFUCache"]


@register_component("cache", "lfu")
class LFUCache(EvictingCache):
    """Exact LFU with O(1) operations via frequency buckets.

    Keys live in per-frequency ordered buckets; a hit moves the key up
    one bucket, eviction takes the least-recently-used key of the lowest
    occupied frequency (LRU tie-break, the standard refinement).

    LFU is the closest practical policy to the paper's perfect
    popularity cache for *stationary* workloads — and indeed the cache
    ablation bench shows it tracks the PerfectCache line closely under
    both benign and adversarial traffic.
    """

    POLICY = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: Dict[int, int] = {}
        self._buckets: "defaultdict[int, OrderedDict[int, None]]" = defaultdict(OrderedDict)
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._freq)

    def keys(self) -> Iterable[int]:
        return iter(self._freq)

    def frequency(self, key: int) -> int:
        """Current frequency counter of a resident key (0 if absent)."""
        return self._freq.get(key, 0)

    def _contains(self, key: int) -> bool:
        return key in self._freq

    def _bump(self, key: int) -> None:
        freq = self._freq[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._buckets[freq + 1][key] = None

    def _on_hit(self, key: int) -> None:
        self._bump(key)

    def _select_victim(self) -> Optional[int]:
        if not self._freq:
            return None
        bucket = self._buckets[self._min_freq]
        return next(iter(bucket))

    def _remove(self, key: int) -> None:
        freq = self._freq.pop(key)
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]

    def _insert(self, key: int) -> None:
        self._freq[key] = 1
        self._buckets[1][key] = None
        self._min_freq = 1

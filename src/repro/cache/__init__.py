"""Front-end cache substrate.

The paper assumes a *perfect* popularity cache (assumption 2: the ``c``
most popular items always hit).  :class:`~repro.cache.perfect.PerfectCache`
implements exactly that; the remaining policies are real replacement
algorithms (LRU, FIFO, CLOCK, LFU, LFU-aging, 2Q, ARC, random) used by
the ablation benches to measure how closely practice tracks the
assumption under adversarial and benign workloads, plus a TinyLFU-style
admission filter that hardens any of them against scan floods.
"""

from .base import Cache, CacheStats, EvictingCache
from .perfect import PerfectCache
from .fifo import FIFOCache
from .lru import LRUCache
from .random_evict import RandomEvictionCache
from .clock import ClockCache
from .lfu import LFUCache
from .lfu_aging import LFUAgingCache
from .twoq import TwoQCache
from .arc import ARCCache
from .slru import SLRUCache
from .sieve import SieveCache
from .sketch import CountMinSketch
from .admission import FrequencyAdmissionCache
from .tree import CacheTree

__all__ = [
    "Cache",
    "EvictingCache",
    "CacheStats",
    "PerfectCache",
    "FIFOCache",
    "LRUCache",
    "RandomEvictionCache",
    "ClockCache",
    "LFUCache",
    "LFUAgingCache",
    "TwoQCache",
    "ARCCache",
    "SLRUCache",
    "SieveCache",
    "CountMinSketch",
    "FrequencyAdmissionCache",
    "CacheTree",
    "make_cache",
]


def make_cache(name: str, capacity: int, **kwargs) -> Cache:
    """Construct a cache policy by short name.

    A thin shim over the scenario component registry
    (:mod:`repro.scenario.registry`) — every policy class registers
    itself where it is defined, so this factory and scenario specs
    always agree on the available names.  Composite policies whose
    wiring needs a full build context (e.g. ``tinylfu``) are
    spec-only and excluded here, exactly as before the registry.

    >>> make_cache("lru", 4).capacity
    4
    """
    from ..exceptions import ConfigurationError
    from ..scenario.registry import REGISTRY

    simple = {
        entry.name: entry.factory
        for entry in REGISTRY.entries("cache")
        if entry.builder is None
    }
    try:
        cls = simple[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown cache policy {name!r}; choose from {sorted(simple)}"
        ) from None
    return cls(capacity, **kwargs)

"""Front-end cache substrate.

The paper assumes a *perfect* popularity cache (assumption 2: the ``c``
most popular items always hit).  :class:`~repro.cache.perfect.PerfectCache`
implements exactly that; the remaining policies are real replacement
algorithms (LRU, FIFO, CLOCK, LFU, LFU-aging, 2Q, ARC, random) used by
the ablation benches to measure how closely practice tracks the
assumption under adversarial and benign workloads, plus a TinyLFU-style
admission filter that hardens any of them against scan floods.
"""

from .base import Cache, CacheStats, EvictingCache
from .perfect import PerfectCache
from .fifo import FIFOCache
from .lru import LRUCache
from .random_evict import RandomEvictionCache
from .clock import ClockCache
from .lfu import LFUCache
from .lfu_aging import LFUAgingCache
from .twoq import TwoQCache
from .arc import ARCCache
from .slru import SLRUCache
from .sieve import SieveCache
from .sketch import CountMinSketch
from .admission import FrequencyAdmissionCache

__all__ = [
    "Cache",
    "EvictingCache",
    "CacheStats",
    "PerfectCache",
    "FIFOCache",
    "LRUCache",
    "RandomEvictionCache",
    "ClockCache",
    "LFUCache",
    "LFUAgingCache",
    "TwoQCache",
    "ARCCache",
    "SLRUCache",
    "SieveCache",
    "CountMinSketch",
    "FrequencyAdmissionCache",
    "make_cache",
]


_FACTORIES = {
    "perfect": PerfectCache,
    "fifo": FIFOCache,
    "lru": LRUCache,
    "random": RandomEvictionCache,
    "clock": ClockCache,
    "lfu": LFUCache,
    "lfu-aging": LFUAgingCache,
    "2q": TwoQCache,
    "arc": ARCCache,
    "slru": SLRUCache,
    "sieve": SieveCache,
}


def make_cache(name: str, capacity: int, **kwargs) -> Cache:
    """Construct a cache policy by short name.

    >>> make_cache("lru", 4).capacity
    4
    """
    from ..exceptions import ConfigurationError

    try:
        cls = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown cache policy {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return cls(capacity, **kwargs)

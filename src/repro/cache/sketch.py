"""Count-min sketch: compact frequency estimation.

Used by the :class:`~repro.cache.admission.FrequencyAdmissionCache`
(TinyLFU-style) to estimate key popularity in O(1) space per counter
without keeping per-key state — the same building block production
caches (Caffeine, Ristretto) ship.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CacheError

__all__ = ["CountMinSketch"]

# Large odd multipliers for the multiply-shift hash family.
_MULTIPLIERS = np.array(
    [
        0x9E3779B97F4A7C15,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
        0x9E3779B185EBCA87,
        0xC2B2AE3D27D4EB4F ^ 0x5555555555555555,
        0xFF51AFD7ED558CCD,
        0xC4CEB9FE1A85EC53,
    ],
    dtype=np.uint64,
)


class CountMinSketch:
    """Conservative-update count-min sketch over integer keys.

    Parameters
    ----------
    width:
        Counters per row (larger = fewer collisions; error ~ total/width).
    depth:
        Independent hash rows (larger = lower failure probability).
        At most ``len(_MULTIPLIERS)`` = 8.
    """

    def __init__(self, width: int = 1024, depth: int = 4) -> None:
        if width < 1:
            raise CacheError(f"width must be positive, got {width}")
        if not 1 <= depth <= len(_MULTIPLIERS):
            raise CacheError(f"depth must be in [1, {len(_MULTIPLIERS)}], got {depth}")
        self._width = width
        self._depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def total(self) -> int:
        """Total increments observed (used by aging policies)."""
        return self._total

    def _positions(self, key: int) -> np.ndarray:
        hashed = (np.uint64(key & 0xFFFFFFFFFFFFFFFF) * _MULTIPLIERS[: self._depth]) >> np.uint64(33)
        return (hashed % np.uint64(self._width)).astype(np.int64)

    def add(self, key: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key`` (conservative update).

        Conservative update only raises the minimal counters, halving
        the classic overestimation bias at identical memory cost.
        """
        if count < 0:
            raise CacheError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        rows = np.arange(self._depth)
        cols = self._positions(key)
        current = self._table[rows, cols]
        target = int(current.min()) + count
        self._table[rows, cols] = np.maximum(current, target)
        self._total += count

    def estimate(self, key: int) -> int:
        """Estimated count of ``key`` (never underestimates)."""
        rows = np.arange(self._depth)
        cols = self._positions(key)
        return int(self._table[rows, cols].min())

    def halve(self) -> None:
        """Age the sketch by halving every counter (TinyLFU reset)."""
        self._table >>= 1
        self._total //= 2

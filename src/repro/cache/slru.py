"""Segmented LRU (SLRU) replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from ..exceptions import CacheError
from ..scenario.registry import register_component
from .base import Cache

__all__ = ["SLRUCache"]


@register_component("cache", "slru")
class SLRUCache(Cache):
    """SLRU: a probationary LRU segment feeding a protected LRU segment.

    New keys enter probation; a hit in probation promotes to the
    protected segment; protected evictions demote back to probation's
    MRU end.  One re-reference therefore shields a key from one-shot
    scans — the lightweight ancestor of 2Q (no ghost list) that caching
    layers like Caffeine use as their main structure under TinyLFU.

    Parameters
    ----------
    capacity:
        Total resident items across both segments.
    protected_fraction:
        Share of capacity reserved for the protected segment
        (default 0.8, the classic SLRU recommendation).
    """

    POLICY = "slru"

    def __init__(self, capacity: int, protected_fraction: float = 0.8) -> None:
        super().__init__(capacity)
        if not 0.0 < protected_fraction < 1.0:
            raise CacheError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}"
            )
        self._protected_cap = int(capacity * protected_fraction) if capacity else 0
        self._probation: "OrderedDict[int, None]" = OrderedDict()
        self._protected: "OrderedDict[int, None]" = OrderedDict()

    @property
    def probation_size(self) -> int:
        """Resident keys in the probationary segment."""
        return len(self._probation)

    @property
    def protected_size(self) -> int:
        """Resident keys in the protected segment."""
        return len(self._protected)

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def keys(self) -> Iterable[int]:
        yield from self._probation
        yield from self._protected

    def _contains(self, key: int) -> bool:
        return key in self._probation or key in self._protected

    def _on_hit(self, key: int) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        # Probation hit: promote, demoting a protected victim if full.
        del self._probation[key]
        if len(self._protected) >= max(1, self._protected_cap):
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None
        self._protected[key] = None

    def _admit(self, key: int) -> None:
        if len(self) >= self._capacity:
            if self._probation:
                self._probation.popitem(last=False)
            else:  # pathological: everything protected
                self._protected.popitem(last=False)
            self.stats.evictions += 1
        self._probation[key] = None
        self.stats.insertions += 1

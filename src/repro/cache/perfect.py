"""The paper's perfect popularity cache (assumption 2, Section II-B).

"The front-end cache can always cache the most popular items.  Queries
for these items could always hit the cache while other items always
miss."  We realise this as a static cache pinned to the top-``c`` keys
of a known popularity ranking — the oracle the analysis assumes, and the
yardstick the real policies are measured against.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import CacheError
from ..scenario.registry import register_component
from .base import Cache

__all__ = ["PerfectCache"]


@register_component("cache", "perfect")
class PerfectCache(Cache):
    """Static cache holding a fixed set of (the most popular) keys.

    By the package convention keys are numbered in non-increasing
    popularity, so the default construction pins keys ``0 .. c-1``;
    :meth:`from_distribution` pins the true top-``c`` of an arbitrary
    probability vector instead.
    """

    POLICY = "perfect"
    STATIC_RESIDENCY = True

    def __init__(self, capacity: int, pinned: Sequence[int] = None) -> None:
        super().__init__(capacity)
        if pinned is None:
            pinned = range(capacity)
        pinned = list(pinned)
        if len(set(pinned)) != len(pinned):
            raise CacheError("pinned keys must be distinct")
        if len(pinned) > capacity:
            raise CacheError(
                f"cannot pin {len(pinned)} keys into capacity {capacity}"
            )
        self._pinned = frozenset(int(k) for k in pinned)

    @classmethod
    def from_distribution(cls, probs: np.ndarray, capacity: int) -> "PerfectCache":
        """Pin the ``capacity`` highest-probability keys of ``probs``.

        Ties are broken by key id (lowest first), matching the paper's
        convention that earlier keys are at least as popular.
        """
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 1:
            raise CacheError("probs must be a 1-D probability vector")
        if capacity >= probs.size:
            return cls(capacity, pinned=range(probs.size))
        # stable sort on -probs keeps lowest key id first among ties
        top = np.argsort(-probs, kind="stable")[:capacity]
        return cls(capacity, pinned=top.tolist())

    @property
    def pinned(self) -> frozenset:
        """The immutable resident set."""
        return self._pinned

    def __len__(self) -> int:
        return len(self._pinned)

    def keys(self) -> Iterable[int]:
        return iter(self._pinned)

    def _contains(self, key: int) -> bool:
        return key in self._pinned

    def _on_hit(self, key: int) -> None:
        pass  # static: nothing to update

    def _admit(self, key: int) -> None:
        pass  # static: misses never change the resident set

"""Key-popularity distributions.

The common contract (:class:`KeyDistribution`):

- :meth:`~KeyDistribution.probabilities` returns the exact length-``m``
  probability vector (sums to 1);
- :meth:`~KeyDistribution.sample` draws query keys i.i.d. from it, via a
  cached inverse-CDF table (O(log m) per draw, vectorised);
- :meth:`~KeyDistribution.top_keys` lists the ``c`` most popular keys —
  what a perfect front-end cache pins.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from ..exceptions import DistributionError
from ..rng import as_generator
from ..scenario.registry import register_component

__all__ = [
    "KeyDistribution",
    "UniformDistribution",
    "PointMassDistribution",
    "CustomDistribution",
    "GeometricDistribution",
]

RngLike = Union[None, int, np.random.Generator]


class KeyDistribution(ABC):
    """A probability distribution over the key space ``0 .. m-1``."""

    #: Short name used in reports and figure legends.
    name: str = "abstract"

    def __init__(self, m: int) -> None:
        if m < 1:
            raise DistributionError(f"need at least one key, got m={m}")
        self._m = m
        self._cdf: Optional[np.ndarray] = None

    @property
    def m(self) -> int:
        """Size of the key space."""
        return self._m

    @abstractmethod
    def probabilities(self) -> np.ndarray:
        """Exact probability vector of length ``m`` (sums to 1)."""

    def _cached_cdf(self) -> np.ndarray:
        if self._cdf is None:
            probs = self.probabilities()
            if probs.shape != (self._m,):
                raise DistributionError(
                    f"probabilities() returned shape {probs.shape}, expected ({self._m},)"
                )
            if np.any(probs < 0):
                raise DistributionError("negative probability mass")
            total = float(probs.sum())
            if not np.isclose(total, 1.0, atol=1e-9):
                raise DistributionError(f"probabilities sum to {total}, expected 1")
            self._cdf = np.cumsum(probs)
            self._cdf[-1] = 1.0  # guard against cumsum round-off
        return self._cdf

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` keys i.i.d. from the distribution."""
        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, f"sample-{self.name}")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        u = gen.random(size)
        return np.searchsorted(self._cached_cdf(), u, side="right").astype(np.int64)

    def sample_counts(self, n_queries: int, rng: RngLike = None) -> np.ndarray:
        """Multinomial per-key query counts of an ``n_queries`` batch."""
        if n_queries < 0:
            raise DistributionError(f"n_queries must be non-negative, got {n_queries}")
        gen = as_generator(rng, f"counts-{self.name}")
        probs = self.probabilities()
        return gen.multinomial(n_queries, probs).astype(np.int64)

    def expected_rates(self, total_rate: float) -> np.ndarray:
        """Per-key steady-state rates when offering ``total_rate`` qps."""
        if total_rate < 0:
            raise DistributionError(f"total_rate must be non-negative, got {total_rate}")
        return self.probabilities() * total_rate

    def client_map(self) -> Optional[np.ndarray]:
        """Per-key ground-truth client ids for attack attribution.

        ``None`` (the default) means unattributed: the flight recorder
        (:mod:`repro.obs.trace`) tags every record with client 0.
        Adversarial workloads override this with a length-``m`` integer
        vector — 0 for background traffic, positive ids for attacker
        streams — giving attribution precision/recall checks a ground
        truth to score against.  Purely key-derived (no RNG), so it is
        identical across trials, engines and worker counts.
        """
        return None

    def top_keys(self, c: int) -> np.ndarray:
        """The ``c`` most popular keys (stable tie-break by key id)."""
        if c < 0:
            raise DistributionError(f"c must be non-negative, got {c}")
        c = min(c, self._m)
        if c == 0:
            return np.empty(0, dtype=np.int64)
        return np.argsort(-self.probabilities(), kind="stable")[:c].astype(np.int64)


@register_component("workload", "uniform")
class UniformDistribution(KeyDistribution):
    """Uniform over all ``m`` keys — Figure 4's load-balancing baseline."""

    name = "uniform"

    def probabilities(self) -> np.ndarray:
        return np.full(self._m, 1.0 / self._m)

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, "sample-uniform")
        return gen.integers(0, self._m, size=size, dtype=np.int64)


@register_component("workload", "point-mass")
class PointMassDistribution(KeyDistribution):
    """All mass on a single key — the crudest hotspot attack.

    Against this architecture it is also the *weakest* attack: one key is
    either cached (gain 0) or a single ball on one node; included as a
    degenerate-case check.
    """

    name = "point-mass"

    def __init__(self, m: int, key: int = 0) -> None:
        super().__init__(m)
        if not 0 <= key < m:
            raise DistributionError(f"key must be in [0, m), got {key}")
        self._key = key

    @property
    def key(self) -> int:
        """The hot key."""
        return self._key

    def probabilities(self) -> np.ndarray:
        probs = np.zeros(self._m)
        probs[self._key] = 1.0
        return probs


@register_component("workload", "custom", example={"probs": [0.5, 0.3, 0.2]})
class CustomDistribution(KeyDistribution):
    """Wrap an arbitrary probability vector (e.g. replayed from a trace)."""

    name = "custom"

    def __init__(self, probs: np.ndarray) -> None:
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise DistributionError("probs must be a non-empty 1-D vector")
        if np.any(probs < 0):
            raise DistributionError("probs must be non-negative")
        total = float(probs.sum())
        if total <= 0:
            raise DistributionError("probs must have positive total mass")
        super().__init__(probs.size)
        self._probs = probs / total

    def probabilities(self) -> np.ndarray:
        return self._probs.copy()


@register_component("workload", "geometric")
class GeometricDistribution(KeyDistribution):
    """Truncated geometric popularity: ``p_i proportional to ratio**i``.

    A convenient knob between uniform (``ratio -> 1``) and extremely
    skewed (``ratio`` small) used by cache-policy stress tests.
    """

    name = "geometric"

    def __init__(self, m: int, ratio: float = 0.99) -> None:
        super().__init__(m)
        if not 0.0 < ratio <= 1.0:
            raise DistributionError(f"ratio must be in (0, 1], got {ratio}")
        self._ratio = ratio

    @property
    def ratio(self) -> float:
        """Per-rank decay factor."""
        return self._ratio

    def probabilities(self) -> np.ndarray:
        if self._ratio == 1.0:
            return np.full(self._m, 1.0 / self._m)
        weights = np.power(self._ratio, np.arange(self._m, dtype=float))
        return weights / weights.sum()

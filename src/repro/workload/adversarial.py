"""The adversarial access pattern as a workload distribution.

Bridges :mod:`repro.core.strategy` (where the pattern is derived) into
the :class:`~repro.workload.distributions.KeyDistribution` interface the
simulators consume: uniform over a prefix of ``x`` keys, the Theorem-1
fixed point with minimal cache absorption.
"""

from __future__ import annotations

import numpy as np

from ..core.notation import SystemParameters
from ..core.cases import optimal_query_count
from ..exceptions import DistributionError
from ..scenario.registry import register_component
from .distributions import KeyDistribution

__all__ = ["AdversarialDistribution"]


@register_component(
    "workload", "adversarial", example=lambda ctx: {"x": ctx.params.c + 1}
)
class AdversarialDistribution(KeyDistribution):
    """Uniform queries over the first ``x`` of ``m`` keys.

    Parameters
    ----------
    m:
        Key-space size.
    x:
        Number of keys the adversary queries.  To bypass a cache of size
        ``c`` the adversary picks ``x > c``; :meth:`optimal_for` chooses
        the bound-optimal ``x`` automatically.
    client_id:
        Ground-truth attribution tag (see
        :meth:`~repro.workload.distributions.KeyDistribution.client_map`).
        ``0`` (the default) declares nothing; a positive id marks the
        flooded prefix as this attacker's keys so trace records carry
        the true culprit.  Stealth mixtures rely on this to label only
        the adversarial component of blended traffic.
    """

    name = "adversarial"

    def __init__(self, m: int, x: int, client_id: int = 0) -> None:
        super().__init__(m)
        if not 1 <= x <= m:
            raise DistributionError(f"need 1 <= x <= m, got x={x}, m={m}")
        if client_id < 0:
            raise DistributionError(
                f"client_id must be non-negative, got {client_id}"
            )
        self._x = x
        self._client_id = int(client_id)

    @classmethod
    def optimal_for(
        cls, params: SystemParameters, k: float = None, k_prime: float = 0.0
    ) -> "AdversarialDistribution":
        """The bound-optimal pattern against a known ``(n, m, c, d)``.

        Case 1 (small cache): ``x = c + 1``; Case 2 (provisioned cache):
        ``x = m`` — see :mod:`repro.core.cases`.
        """
        return cls(params.m, optimal_query_count(params, k=k, k_prime=k_prime))

    @property
    def x(self) -> int:
        """Number of keys queried."""
        return self._x

    @property
    def client_id(self) -> int:
        """Ground-truth attribution tag (0 = undeclared)."""
        return self._client_id

    def client_map(self):
        if self._client_id == 0:
            return None
        ids = np.zeros(self._m, dtype=np.int64)
        ids[: self._x] = self._client_id
        return ids

    def probabilities(self) -> np.ndarray:
        probs = np.zeros(self._m)
        probs[: self._x] = 1.0 / self._x
        return probs

    def sample(self, size, rng=None):
        # Uniform prefix: sample directly instead of via the CDF table.
        from ..rng import as_generator

        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, "sample-adversarial")
        return gen.integers(0, self._x, size=size, dtype=np.int64)

    def uncached_keys(self, c: int) -> np.ndarray:
        """Keys that bypass a perfect cache of size ``c`` (may be empty)."""
        if c < 0:
            raise DistributionError(f"c must be non-negative, got {c}")
        return np.arange(min(c, self._x), self._x, dtype=np.int64)

"""Query-trace persistence: record a stream, replay it later.

Traces are JSON-lines files: a header record followed by chunked key
batches.  The format is deliberately boring — greppable, diffable,
append-friendly — and round-trips exactly (same keys, same order).

Example
-------
>>> import tempfile, os
>>> from repro.workload import UniformDistribution, QueryStream
>>> stream = QueryStream(UniformDistribution(100), n_queries=10, rng=1)
>>> keys = stream.keys()
>>> path = os.path.join(tempfile.mkdtemp(), "trace.jsonl")
>>> save_trace(path, keys, rate=100.0)
>>> loaded, meta = load_trace(path)
>>> bool((loaded == keys).all())
True
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION"]

#: Bumped on any incompatible change to the on-disk layout.
TRACE_FORMAT_VERSION = 1

_CHUNK = 65536


def save_trace(
    path: Union[str, Path],
    keys: np.ndarray,
    rate: float = 1.0,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write a key sequence (plus metadata) as a JSONL trace file.

    Parameters
    ----------
    path:
        Destination file (created/truncated).
    keys:
        Integer key sequence in arrival order.
    rate:
        Offered rate the trace was generated at (stored in the header).
    metadata:
        Extra JSON-serialisable fields for the header record.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise ConfigurationError("keys must be a 1-D integer sequence")
    header = {
        "type": "header",
        "version": TRACE_FORMAT_VERSION,
        "n_queries": int(keys.size),
        "rate": float(rate),
    }
    if metadata:
        header["metadata"] = metadata
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for start in range(0, keys.size, _CHUNK):
            chunk = keys[start : start + _CHUNK]
            fh.write(json.dumps({"type": "keys", "keys": chunk.tolist()}) + "\n")


def load_trace(path: Union[str, Path]) -> Tuple[np.ndarray, Dict[str, object]]:
    """Read a JSONL trace; returns ``(keys, header)``.

    Raises :class:`~repro.exceptions.ConfigurationError` on malformed or
    version-incompatible files.
    """
    path = Path(path)
    chunks = []
    header: Optional[Dict[str, object]] = None
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "header":
                if header is not None:
                    raise ConfigurationError(f"{path}:{line_no}: duplicate header")
                if record.get("version") != TRACE_FORMAT_VERSION:
                    raise ConfigurationError(
                        f"{path}: unsupported trace version {record.get('version')}"
                    )
                header = record
            elif kind == "keys":
                chunks.append(np.asarray(record["keys"], dtype=np.int64))
            else:
                raise ConfigurationError(f"{path}:{line_no}: unknown record type {kind!r}")
    if header is None:
        raise ConfigurationError(f"{path}: missing header record")
    keys = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    if keys.size != header.get("n_queries"):
        raise ConfigurationError(
            f"{path}: header claims {header.get('n_queries')} queries, file has {keys.size}"
        )
    return keys, header

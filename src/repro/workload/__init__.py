"""Workload substrate: key-popularity distributions, query streams, traces.

Keys are integers ``0 .. m-1``.  Every distribution exposes an exact
probability vector (for analytic/expected-value work) and fast sampling
(for Monte-Carlo and event-driven work).  The three access patterns of
the paper's Figure 4 — uniform, Zipf(1.01) and adversarial — live here,
alongside the generic machinery.
"""

from .distributions import (
    CustomDistribution,
    GeometricDistribution,
    KeyDistribution,
    PointMassDistribution,
    UniformDistribution,
)
from .zipf import ZipfDistribution
from .adversarial import AdversarialDistribution
from .keyset import KeySetDistribution
from .scan import CyclicScanDistribution
from .mixture import MixtureDistribution
from .costs import CostModel, OperationMix, WeightedWorkload
from .generator import QueryStream
from .trace import load_trace, save_trace

__all__ = [
    "CyclicScanDistribution",
    "MixtureDistribution",
    "OperationMix",
    "CostModel",
    "WeightedWorkload",
    "KeyDistribution",
    "UniformDistribution",
    "PointMassDistribution",
    "CustomDistribution",
    "GeometricDistribution",
    "ZipfDistribution",
    "AdversarialDistribution",
    "KeySetDistribution",
    "QueryStream",
    "save_trace",
    "load_trace",
]

"""Zipf popularity — the paper's stand-in for real-world workloads.

Figure 4 uses Zipf with exponent 1.01, noting that "near 80% workloads
are concentrated on 20% items", which a popularity-based front-end cache
absorbs almost entirely.  The distribution here is the finite (truncated)
Zipf over ``m`` ranks: ``p_i proportional to 1 / (i + 1)**s``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DistributionError
from ..scenario.registry import register_component
from .distributions import KeyDistribution

__all__ = ["ZipfDistribution"]


@register_component("workload", "zipf")
class ZipfDistribution(KeyDistribution):
    """Truncated Zipf over ``m`` keys with exponent ``s``.

    Parameters
    ----------
    m:
        Key-space size (key 0 is the most popular rank).
    s:
        Skew exponent; the paper's Figure 4 uses ``s = 1.01``.  ``s = 0``
        degenerates to uniform.

    Examples
    --------
    >>> z = ZipfDistribution(m=1000, s=1.01)
    >>> float(z.head_mass(200)) > 0.5   # a small head carries most traffic
    True
    """

    name = "zipf"

    def __init__(self, m: int, s: float = 1.01) -> None:
        super().__init__(m)
        if s < 0:
            raise DistributionError(f"Zipf exponent must be non-negative, got {s}")
        self._s = s

    @property
    def s(self) -> float:
        """The skew exponent."""
        return self._s

    def probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self._m + 1, dtype=float)
        weights = ranks ** (-self._s)
        return weights / weights.sum()

    def head_mass(self, c: int) -> float:
        """Total probability of the ``c`` most popular keys.

        This is exactly the fraction of traffic a perfect cache of size
        ``c`` absorbs under this workload.
        """
        if c < 0:
            raise DistributionError(f"c must be non-negative, got {c}")
        c = min(c, self._m)
        return float(self.probabilities()[:c].sum())

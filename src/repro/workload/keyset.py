"""Uniform traffic over an explicit key list.

The shard-targeting adversary (:class:`repro.adversary.strategies.
ShardTargetingAdversary`) floods exactly the keys that hash to one edge
cache shard — a key *set*, not a prefix, so
:class:`~repro.workload.adversarial.AdversarialDistribution` (uniform
over ``0 .. x-1``) cannot express it.  :class:`KeySetDistribution` is
the general form: uniform over any explicit list of keys, sampled with
a single ``integers`` draw per query like the other uniform patterns.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import DistributionError
from ..rng import as_generator
from ..scenario.registry import register_component
from .distributions import KeyDistribution, RngLike

__all__ = ["KeySetDistribution"]


@register_component("workload", "key-set", example={"keys": [0, 1, 2]})
class KeySetDistribution(KeyDistribution):
    """Uniform over an explicit set of keys out of ``0 .. m-1``.

    ``client_id`` (attribution ground truth) marks every key in the set
    as belonging to one logical client: adversaries that build key-set
    floods set a positive id, so the flight recorder's suspects block
    can be scored against the real attacker (see
    :meth:`~repro.workload.distributions.KeyDistribution.client_map`).
    """

    name = "key-set"

    def __init__(self, m: int, keys: Sequence[int], client_id: int = 0) -> None:
        super().__init__(m)
        keys = np.unique(np.asarray(list(keys), dtype=np.int64))
        if keys.size == 0:
            raise DistributionError("need at least one key in the set")
        if keys.min() < 0 or keys.max() >= m:
            raise DistributionError(
                f"keys must lie in [0, m={m}), got range "
                f"[{int(keys.min())}, {int(keys.max())}]"
            )
        if client_id < 0:
            raise DistributionError(
                f"client_id must be non-negative, got {client_id}"
            )
        self._keys = keys
        self._client_id = int(client_id)

    @property
    def keys(self) -> np.ndarray:
        """The flooded keys, sorted ascending."""
        return self._keys.copy()

    @property
    def x(self) -> int:
        """Number of distinct keys queried (the attack width)."""
        return int(self._keys.size)

    @property
    def client_id(self) -> int:
        """Ground-truth client id of this key set (0 = background)."""
        return self._client_id

    def client_map(self) -> Optional[np.ndarray]:
        if self._client_id == 0:
            return None
        ids = np.zeros(self._m, dtype=np.int64)
        ids[self._keys] = self._client_id
        return ids

    def probabilities(self) -> np.ndarray:
        probs = np.zeros(self._m)
        probs[self._keys] = 1.0 / self._keys.size
        return probs

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, "sample-key-set")
        picks = gen.integers(0, self._keys.size, size=size)
        return self._keys[picks]

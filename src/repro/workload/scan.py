"""Deterministic-order workloads: cyclic scans.

The paper's adversary is characterised by its *distribution* (Theorem 1
only constrains marginal probabilities), and the analysis holds for any
request ordering because the perfect front-end cache is order-oblivious.
Real caches are not: against LRU-family policies the *same* uniform
prefix distribution delivered in cyclic order (0, 1, ..., x-1, 0, ...)
maximises every key's reuse distance and drives the hit rate to zero —
see ``benchmarks/bench_ablation_cache.py``.

:class:`CyclicScanDistribution` packages that ordering as a drop-in
``KeyDistribution`` whose :meth:`~CyclicScanDistribution.sample` is
deterministic and stateful (successive calls continue the scan), so the
event-driven simulator can replay the strongest order-aware attack
against real cache policies.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DistributionError
from ..scenario.registry import register_component
from .adversarial import AdversarialDistribution

__all__ = ["CyclicScanDistribution"]


@register_component(
    "workload", "cyclic-scan", example=lambda ctx: {"x": ctx.params.c + 1}
)
class CyclicScanDistribution(AdversarialDistribution):
    """The adversarial prefix distribution delivered as a cyclic scan.

    Identical marginal law to :class:`AdversarialDistribution` (uniform
    over the first ``x`` of ``m`` keys) — all the paper's placement
    results apply unchanged — but :meth:`sample` returns keys in strict
    cyclic order rather than i.i.d. draws, which is the worst case for
    recency-based replacement policies.

    Parameters
    ----------
    m, x:
        Key-space size and scan width.
    offset:
        Starting position of the scan (useful for phase-shifted
        multi-client attacks).
    """

    name = "cyclic-scan"

    def __init__(self, m: int, x: int, offset: int = 0) -> None:
        super().__init__(m, x)
        if offset < 0:
            raise DistributionError(f"offset must be non-negative, got {offset}")
        self._position = offset % x

    @property
    def position(self) -> int:
        """Next key the scan will emit."""
        return self._position

    def sample(self, size, rng=None):
        """Return the next ``size`` keys of the scan (rng is ignored —
        the whole point is determinism) and advance the scan state."""
        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        keys = (np.arange(self._position, self._position + size) % self.x).astype(
            np.int64
        )
        self._position = int((self._position + size) % self.x)
        return keys

    def reset(self, offset: int = 0) -> None:
        """Rewind the scan to ``offset`` (for repeated trials)."""
        if offset < 0:
            raise DistributionError(f"offset must be non-negative, got {offset}")
        self._position = offset % self.x

"""Non-uniform query costs — relaxing the paper's assumption 4.

The paper assumes every query costs the back end the same (assumption
4) and points at Fan et al. [18] for handling mixes of reads, writes and
updates with different costs.  The standard reduction, implemented here:
measure load in *cost units* instead of queries.  If key ``i`` is
queried at rate ``q_i`` and each of its queries costs ``w_i`` units,
the back-end load it generates is ``q_i * w_i`` — and every theorem
goes through with ``R`` replaced by the offered *cost rate*
``sum_i q_i w_i``, because the balls-into-bins argument never used the
fact that ball weights were equal rates (see
:class:`repro.cluster.selection.LeastLoadedKeyPinning`, which already
places by accumulated weight).

The adversary-side consequence is also exposed:
:meth:`CostModel.worst_case_inflation` — an attacker who can choose
expensive operations multiplies their effective rate by at most
``max_cost / mean_cost`` of the benign mix, which is how an operator
should derate capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator
from .distributions import KeyDistribution

__all__ = ["OperationMix", "CostModel", "WeightedWorkload"]

RngLike = Union[None, int, np.random.Generator]


@dataclass(frozen=True)
class OperationMix:
    """A mix of operation classes with per-class back-end costs.

    Parameters
    ----------
    classes:
        Mapping of class name -> (fraction of queries, cost units per
        query).  Fractions must sum to 1; costs must be positive.

    Examples
    --------
    >>> mix = OperationMix({"read": (0.9, 1.0), "write": (0.1, 5.0)})
    >>> round(mix.mean_cost, 2)
    1.4
    """

    classes: Mapping[str, Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("need at least one operation class")
        total = 0.0
        for name, (fraction, cost) in self.classes.items():
            if fraction < 0:
                raise ConfigurationError(f"{name}: fraction must be non-negative")
            if cost <= 0:
                raise ConfigurationError(f"{name}: cost must be positive")
            total += fraction
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConfigurationError(f"fractions must sum to 1, got {total}")
        object.__setattr__(self, "classes", dict(self.classes))

    @property
    def mean_cost(self) -> float:
        """Expected cost units per query under the declared mix."""
        return sum(f * c for f, c in self.classes.values())

    @property
    def max_cost(self) -> float:
        """Cost of the most expensive class."""
        return max(c for _, c in self.classes.values())

    def worst_case_inflation(self) -> float:
        """Factor by which an adversary choosing only the most expensive
        operation inflates their effective rate over the benign mix.

        Capacity planned against rate ``R`` of the benign mix must be
        derated by this factor when clients pick their own operations.
        """
        return self.max_cost / self.mean_cost

    def sample_costs(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw per-query costs i.i.d. from the mix."""
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, "operation-mix")
        names = list(self.classes)
        fractions = np.array([self.classes[n][0] for n in names])
        costs = np.array([self.classes[n][1] for n in names])
        picks = gen.choice(len(names), size=size, p=fractions)
        return costs[picks]


class CostModel:
    """Per-key query costs (cost units per query for each key).

    Keys may have intrinsically different costs (a large blob vs a tiny
    counter); this is orthogonal to the *operation* mix and composes
    with it multiplicatively.
    """

    def __init__(self, key_costs: np.ndarray) -> None:
        key_costs = np.asarray(key_costs, dtype=float)
        if key_costs.ndim != 1 or key_costs.size == 0:
            raise ConfigurationError("key_costs must be a non-empty 1-D vector")
        if np.any(key_costs <= 0):
            raise ConfigurationError("every key cost must be positive")
        self._costs = key_costs

    @classmethod
    def uniform(cls, m: int, cost: float = 1.0) -> "CostModel":
        """The paper's assumption 4: every key costs the same."""
        if m < 1:
            raise ConfigurationError(f"need at least one key, got {m}")
        return cls(np.full(m, cost))

    @property
    def m(self) -> int:
        """Number of keys covered."""
        return int(self._costs.size)

    def cost_of(self, key: int) -> float:
        """Cost units per query for ``key``."""
        return float(self._costs[key])

    def costs(self) -> np.ndarray:
        """The full per-key cost vector (copy)."""
        return self._costs.copy()

    @property
    def max_cost(self) -> float:
        """Most expensive key's per-query cost."""
        return float(self._costs.max())


class WeightedWorkload:
    """A popularity law combined with per-key costs.

    Produces the *cost-rate* vector the cluster actually feels:
    ``rate_i = R * p_i * w_i``.  Feed :meth:`effective_rates` to
    :meth:`repro.cluster.cluster.Cluster.apply_rates` (whose selection
    policies are already weight-aware) and normalize gains by
    :meth:`even_split`.
    """

    def __init__(self, distribution: KeyDistribution, cost_model: CostModel) -> None:
        if distribution.m != cost_model.m:
            raise ConfigurationError(
                f"distribution covers {distribution.m} keys, "
                f"cost model covers {cost_model.m}"
            )
        self._distribution = distribution
        self._cost_model = cost_model

    @property
    def distribution(self) -> KeyDistribution:
        """The underlying popularity law."""
        return self._distribution

    @property
    def cost_model(self) -> CostModel:
        """The per-key cost model."""
        return self._cost_model

    def effective_rates(self, total_rate: float) -> np.ndarray:
        """Per-key back-end cost rates at offered query rate ``R``."""
        if total_rate < 0:
            raise ConfigurationError("total_rate must be non-negative")
        return self._distribution.probabilities() * total_rate * self._cost_model.costs()

    def total_cost_rate(self, total_rate: float) -> float:
        """Aggregate cost units/second the workload offers — the ``R``
        that replaces the query rate in every bound."""
        return float(self.effective_rates(total_rate).sum())

    def even_split(self, total_rate: float, n: int) -> float:
        """Cost-rate analogue of ``R/n`` for gain normalization."""
        if n < 1:
            raise ConfigurationError(f"need at least one node, got {n}")
        return self.total_cost_rate(total_rate) / n

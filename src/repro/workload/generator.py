"""Query-stream generation: turn a distribution into traffic.

Two consumption styles:

- **batch** (:meth:`QueryStream.counts`, :meth:`QueryStream.rates`) for
  the Monte-Carlo simulators that only need per-key totals;
- **streaming** (:meth:`QueryStream.__iter__`,
  :meth:`QueryStream.chunks`) for the event-driven simulator and the
  real cache policies, which care about request ordering.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator
from .distributions import KeyDistribution

__all__ = ["QueryStream"]

RngLike = Union[None, int, np.random.Generator]


class QueryStream:
    """A finite stream of queries drawn from a key distribution.

    Parameters
    ----------
    distribution:
        Popularity law to draw keys from.
    n_queries:
        Stream length.
    rate:
        Aggregate offered rate ``R`` (queries/second); used to convert
        counts to steady-state rates and to derive Poisson timestamps.
    rng:
        Seed / generator for reproducible streams.
    """

    def __init__(
        self,
        distribution: KeyDistribution,
        n_queries: int,
        rate: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if n_queries < 0:
            raise ConfigurationError(f"n_queries must be non-negative, got {n_queries}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self._distribution = distribution
        self._n_queries = n_queries
        self._rate = rate
        self._rng = as_generator(rng, "query-stream")

    @property
    def distribution(self) -> KeyDistribution:
        """The popularity law behind the stream."""
        return self._distribution

    @property
    def n_queries(self) -> int:
        """Total queries in the stream."""
        return self._n_queries

    @property
    def rate(self) -> float:
        """Aggregate offered rate ``R``."""
        return self._rate

    def counts(self) -> np.ndarray:
        """Multinomial per-key counts of the whole stream (one draw)."""
        return self._distribution.sample_counts(self._n_queries, rng=self._rng)

    def rates(self) -> np.ndarray:
        """Exact expected per-key rates (no sampling noise)."""
        return self._distribution.expected_rates(self._rate)

    def keys(self) -> np.ndarray:
        """The full key sequence as one array (ordering matters for
        caches; keys are i.i.d., so the order is exchangeable)."""
        return self._distribution.sample(self._n_queries, rng=self._rng)

    def chunks(self, chunk_size: int = 65536) -> Iterator[np.ndarray]:
        """Yield the stream as arrays of at most ``chunk_size`` keys.

        Keeps memory bounded for long streams while preserving the
        vectorised sampling speed.
        """
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
        remaining = self._n_queries
        while remaining > 0:
            take = min(chunk_size, remaining)
            yield self._distribution.sample(take, rng=self._rng)
            remaining -= take

    def __iter__(self) -> Iterator[int]:
        for chunk in self.chunks():
            yield from chunk.tolist()

    def arrival_times(self) -> np.ndarray:
        """Poisson arrival timestamps for the stream at rate ``R``.

        Exponential inter-arrivals with mean ``1/R``; used by the
        event-driven simulator to model open-loop attack traffic.
        """
        if self._n_queries == 0:
            return np.empty(0)
        gaps = self._rng.exponential(1.0 / self._rate, size=self._n_queries)
        return np.cumsum(gaps)

"""Workload mixtures: attacks riding on benign traffic, flash crowds.

Real incidents are never pure: attack queries arrive *on top of* a
benign base load, and the operationally hard question is telling a DDoS
(adversarial key spread) from a flash crowd (legitimate popularity
spike).  :class:`MixtureDistribution` composes any component laws with
weights, giving the experiments both phenomena:

- ``Mixture[0.8 * Zipf, 0.2 * Adversarial]`` — a stealthy attack hiding
  in benign skew;
- ``Mixture[0.9 * Zipf, 0.1 * PointMass(hot)]`` — a flash crowd on one
  item (which the front-end cache absorbs entirely — the paper's
  architecture handles flash crowds for free).

The defender-side classifier over these lives in
:mod:`repro.analysis.detection`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import DistributionError
from ..rng import as_generator
from ..scenario.registry import register_component
from .distributions import KeyDistribution

__all__ = ["MixtureDistribution"]


def _build_mixture(ctx, components=()):
    """Spec builder: each component is ``{weight: w, kind: ..., params}``
    with the nested distribution resolved through the workload registry.

    >>> # components: [{weight: 0.9, kind: zipf}, {weight: 0.1,
    >>> #               kind: adversarial, x: 201}]
    """
    from ..exceptions import ScenarioValidationError
    from ..scenario.build import build_component
    from ..scenario.spec import ComponentSpec

    pairs = []
    for i, item in enumerate(components):
        where = f"workload.components[{i}]"
        if not isinstance(item, dict) or "weight" not in item:
            raise ScenarioValidationError(
                f"{where}: expected a mapping with 'weight' and 'kind' "
                f"keys, got {item!r}",
                path=where,
            )
        item = dict(item)
        weight = item.pop("weight")
        nested = build_component(
            "workload", ComponentSpec.from_data(item, where), ctx, path=where
        )
        pairs.append((weight, nested))
    return MixtureDistribution(pairs)


_MIXTURE_EXAMPLE = {
    "components": [
        {"weight": 0.9, "kind": "zipf"},
        {"weight": 0.1, "kind": "uniform"},
    ]
}


@register_component(
    "workload", "mixture", example=_MIXTURE_EXAMPLE, builder=_build_mixture
)
class MixtureDistribution(KeyDistribution):
    """Convex combination of component key distributions.

    Parameters
    ----------
    components:
        ``(weight, distribution)`` pairs over a common key space;
        weights must be positive and are normalised to sum to 1.
    """

    name = "mixture"

    def __init__(self, components: Sequence[Tuple[float, KeyDistribution]]) -> None:
        if not components:
            raise DistributionError("need at least one component")
        m = components[0][1].m
        weights: List[float] = []
        dists: List[KeyDistribution] = []
        for weight, dist in components:
            if weight <= 0:
                raise DistributionError(f"weights must be positive, got {weight}")
            if dist.m != m:
                raise DistributionError(
                    f"components span different key spaces ({dist.m} vs {m})"
                )
            weights.append(float(weight))
            dists.append(dist)
        super().__init__(m)
        total = sum(weights)
        self._weights = np.asarray([w / total for w in weights])
        self._components = tuple(dists)

    @property
    def weights(self) -> np.ndarray:
        """Normalised component weights (copy)."""
        return self._weights.copy()

    @property
    def components(self) -> Tuple[KeyDistribution, ...]:
        """The component distributions."""
        return self._components

    def client_map(self):
        """Element-wise max of the component maps (attacker ids win).

        Adversarial components claim their keys with positive client
        ids; a key shared with the benign base keeps the attacker id —
        the pessimistic convention an attribution ground truth wants.
        ``None`` when no component declares clients.
        """
        merged = None
        for dist in self._components:
            ids = dist.client_map()
            if ids is None:
                continue
            merged = ids.copy() if merged is None else np.maximum(merged, ids)
        return merged

    def probabilities(self) -> np.ndarray:
        probs = np.zeros(self._m)
        for weight, dist in zip(self._weights, self._components):
            probs += weight * dist.probabilities()
        return probs

    def sample(self, size, rng=None):
        """Hierarchical sampling: pick a component per query, then a key.

        Delegating to component samplers preserves any special ordering
        semantics they have (e.g. a cyclic scan component stays cyclic
        within its share of the stream).
        """
        if size < 0:
            raise DistributionError(f"size must be non-negative, got {size}")
        gen = as_generator(rng, "mixture")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        assignment = gen.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size, dtype=np.int64)
        for index, dist in enumerate(self._components):
            mask = assignment == index
            count = int(mask.sum())
            if count:
                out[mask] = dist.sample(count, rng=gen)
        return out

    def attack_fraction(self, attack_index: int) -> float:
        """Weight of the component at ``attack_index`` (convenience for
        experiments that sweep the attack share)."""
        if not 0 <= attack_index < len(self._components):
            raise DistributionError(
                f"attack_index must be in [0, {len(self._components)}), got {attack_index}"
            )
        return float(self._weights[attack_index])

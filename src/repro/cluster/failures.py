"""Node-failure injection: what replication buys besides load balancing.

The paper motivates replication with fault tolerance ("fault tolerance
and reliability of the system is also greatly enhanced") before using it
for DDoS prevention.  The two interact: when nodes fail, each affected
key loses replicas — its effective ``d`` shrinks — so the surviving
nodes absorb more load *and* with less choice, exactly when the cluster
can least afford it.  This module injects failures into replica groups
and quantifies both effects:

- **availability**: a key with all ``d`` replicas down is unavailable;
  for a random failure set of fraction ``f`` that happens with
  probability ``~ f^d`` per key (verified by the property tests);
- **degraded load**: surviving keys are re-pinned among their surviving
  replicas, and the max-load analysis re-runs on the degraded groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator

__all__ = [
    "DegradedGroups",
    "degrade_groups",
    "sample_failures",
    "expected_unavailable_fraction",
]

RngLike = Union[None, int, np.random.Generator]


@dataclass(frozen=True)
class DegradedGroups:
    """Replica groups after removing failed nodes.

    Attributes
    ----------
    survivors:
        Ragged structure flattened as two arrays: ``flat_nodes`` holds
        surviving replica ids key-by-key; ``offsets[i]:offsets[i+1]``
        slices key ``i``'s survivors.
    unavailable:
        Indices of keys that lost *all* replicas.
    failed:
        The injected failure set.
    """

    flat_nodes: np.ndarray
    offsets: np.ndarray
    unavailable: np.ndarray
    failed: Tuple[int, ...]

    @property
    def n_keys(self) -> int:
        """Number of keys covered (available or not)."""
        return int(self.offsets.size - 1)

    @property
    def unavailable_fraction(self) -> float:
        """Fraction of keys with zero surviving replicas."""
        if self.n_keys == 0:
            return 0.0
        return self.unavailable.size / self.n_keys

    def survivors_of(self, key_index: int) -> np.ndarray:
        """Surviving replica ids for the ``key_index``-th key."""
        if not 0 <= key_index < self.n_keys:
            raise ConfigurationError(
                f"key_index must be in [0, {self.n_keys}), got {key_index}"
            )
        return self.flat_nodes[self.offsets[key_index] : self.offsets[key_index + 1]]

    def least_loaded_loads(self, rates: np.ndarray, n: int) -> np.ndarray:
        """Greedy least-loaded placement over the *surviving* replicas.

        Unavailable keys contribute no load (their queries fail
        upstream); the returned vector covers all ``n`` nodes, failed
        ones included (always 0 there).
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.n_keys,):
            raise ConfigurationError(
                f"rates must have one entry per key ({self.n_keys}), got {rates.shape}"
            )
        loads = [0.0] * n
        flat = self.flat_nodes.tolist()
        offsets = self.offsets.tolist()
        for i, rate in enumerate(rates.tolist()):
            lo, hi = offsets[i], offsets[i + 1]
            if lo == hi:
                continue  # unavailable key: no back-end load
            best = flat[lo]
            best_load = loads[best]
            for j in range(lo + 1, hi):
                cand = flat[j]
                if loads[cand] < best_load:
                    best = cand
                    best_load = loads[cand]
            loads[best] = best_load + rate
        return np.asarray(loads, dtype=float)


def sample_failures(
    n: int, failed_fraction: float, rng: RngLike = None
) -> Tuple[int, ...]:
    """Draw a uniform random failure set of ``round(f * n)`` nodes."""
    if not 0.0 <= failed_fraction < 1.0:
        raise ConfigurationError(
            f"failed_fraction must be in [0, 1), got {failed_fraction}"
        )
    count = int(round(failed_fraction * n))
    if count == 0:
        return ()
    gen = as_generator(rng, "failures")
    return tuple(int(x) for x in gen.choice(n, size=count, replace=False))


def degrade_groups(
    groups: np.ndarray, failed: Sequence[int], n: Optional[int] = None
) -> DegradedGroups:
    """Remove failed nodes from every replica group.

    Parameters
    ----------
    groups:
        ``(keys, d)`` replica-group matrix.
    failed:
        Node ids that are down.
    n:
        Cluster size, for validating the failure set (optional).
    """
    groups = np.asarray(groups, dtype=np.int64)
    if groups.ndim != 2:
        raise ConfigurationError("groups must be a (keys, d) matrix")
    failed_set: Set[int] = set(int(x) for x in failed)
    if n is not None and any(not 0 <= x < n for x in failed_set):
        raise ConfigurationError("failure set contains node ids outside [0, n)")
    alive_mask = ~np.isin(groups, list(failed_set) or [-1])
    counts = alive_mask.sum(axis=1)
    offsets = np.zeros(groups.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat_nodes = groups[alive_mask]
    unavailable = np.nonzero(counts == 0)[0].astype(np.int64)
    return DegradedGroups(
        flat_nodes=flat_nodes.astype(np.int64),
        offsets=offsets,
        unavailable=unavailable,
        failed=tuple(sorted(failed_set)),
    )


def expected_unavailable_fraction(n: int, d: int, failed: int) -> float:
    """Exact probability a key loses all replicas to a random failure set.

    Replica groups are ``d`` distinct nodes; with ``failed`` of ``n``
    nodes down uniformly at random, a key is unavailable iff its whole
    group lies inside the failure set:

        P = C(failed, d) / C(n, d).
    """
    if not 1 <= d <= n:
        raise ConfigurationError(f"need 1 <= d <= n, got d={d}, n={n}")
    if not 0 <= failed <= n:
        raise ConfigurationError(f"need 0 <= failed <= n, got {failed}")
    if failed < d:
        return 0.0
    prob = 1.0
    for i in range(d):
        prob *= (failed - i) / (n - i)
    return prob

"""Replica-selection policies: which group member serves a key's queries.

The paper's assumption 2 allows any fixed rule ("random selection or in
a round-robin fashion") for choosing the serving node inside a replica
group; its *analysis* models the strongest sensible rule — pinning each
key to the least-loaded group member, i.e. the power of ``d`` choices.
This module implements that rule plus the alternatives, all behind one
interface, so the ablation benches can quantify how much the rule
matters (answer: least-loaded pinning balances best in the heavy-load
regime, per-query spreading is close behind, random/primary pinning are
markedly worse — see ``benchmarks/bench_ablation_selection.py``).

A policy converts a ``(keys x d)`` replica-group matrix plus per-key
steady-state rates into a per-node load vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator
from ..scenario.registry import register_component

__all__ = [
    "SelectionPolicy",
    "LeastLoadedKeyPinning",
    "LeastUtilizedKeyPinning",
    "RandomKeyPinning",
    "PrimaryKeyPinning",
    "RoundRobinSpreading",
    "PerQueryRandomSpreading",
    "make_selection_policy",
]

RngLike = Union[None, int, np.random.Generator]


def _validate(groups: np.ndarray, rates: np.ndarray, n: int) -> tuple:
    groups = np.asarray(groups, dtype=np.int64)
    rates = np.asarray(rates, dtype=float)
    if groups.ndim != 2:
        raise ConfigurationError("groups must be a (keys, d) matrix")
    if rates.shape != (groups.shape[0],):
        raise ConfigurationError(
            f"rates must have one entry per key, got {rates.shape} for {groups.shape[0]} keys"
        )
    if np.any(rates < 0):
        raise ConfigurationError("rates must be non-negative")
    if groups.size and (groups.min() < 0 or groups.max() >= n):
        raise ConfigurationError("group entries must be node ids in [0, n)")
    return groups, rates


class SelectionPolicy(ABC):
    """Turns replica groups + key rates into steady-state node loads."""

    #: Short name used in reports and the CLI.
    name: str = "abstract"

    @abstractmethod
    def node_loads(
        self,
        groups: np.ndarray,
        rates: np.ndarray,
        n: int,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Return the length-``n`` per-node load vector (queries/sec).

        Parameters
        ----------
        groups:
            ``(keys, d)`` matrix of replica node ids.
        rates:
            Per-key steady-state query rate.
        n:
            Number of nodes (loads vector length).
        rng:
            Randomness for stochastic policies; ignored by
            deterministic ones.
        """


@register_component("selection", "least-loaded")
class LeastLoadedKeyPinning(SelectionPolicy):
    """Pin each key to its currently least-loaded replica (theory model).

    Processing keys one by one and placing each on the least-loaded
    group member is exactly the greedy d-choice process the
    Berenbrink et al. bound covers.  Load is measured in accumulated
    query rate, so the policy also handles unequal key rates sensibly.
    """

    name = "least-loaded"

    def node_loads(self, groups, rates, n, rng=None):
        """Greedy rate-weighted d-choice placement (deterministic)."""
        groups, rates = _validate(groups, rates, n)
        loads = [0.0] * n
        for row, rate in zip(groups.tolist(), rates.tolist()):
            best = row[0]
            best_load = loads[best]
            for cand in row[1:]:
                cand_load = loads[cand]
                if cand_load < best_load:
                    best = cand
                    best_load = cand_load
            loads[best] = best_load + rate
        return np.asarray(loads, dtype=float)


@register_component("selection", "random-pin")
class RandomKeyPinning(SelectionPolicy):
    """Pin each key to a uniformly random replica.

    Ignores load information, so the placement degenerates to the
    one-choice process — the weakest rule, included as the pessimistic
    ablation.
    """

    name = "random-pin"

    def node_loads(self, groups, rates, n, rng=None):
        groups, rates = _validate(groups, rates, n)
        gen = as_generator(rng, "random-pin")
        loads = np.zeros(n, dtype=float)
        if groups.shape[0] == 0:
            return loads
        picks = groups[np.arange(groups.shape[0]), gen.integers(0, groups.shape[1], size=groups.shape[0])]
        np.add.at(loads, picks, rates)
        return loads


@register_component("selection", "primary")
class PrimaryKeyPinning(SelectionPolicy):
    """Pin each key to its first (primary) replica.

    Deterministic primary/backup serving; since groups are random this
    is statistically identical to :class:`RandomKeyPinning` but without
    consuming randomness, which makes paired comparisons cleaner.
    """

    name = "primary"

    def node_loads(self, groups, rates, n, rng=None):
        groups, rates = _validate(groups, rates, n)
        loads = np.zeros(n, dtype=float)
        if groups.shape[0]:
            np.add.at(loads, groups[:, 0], rates)
        return loads


@register_component("selection", "round-robin")
class RoundRobinSpreading(SelectionPolicy):
    """Spread each key's queries evenly over all ``d`` replicas.

    The steady-state effect of per-query round-robin: every replica
    carries ``rate / d``.  Far better balanced than random pinning, but
    — perhaps surprisingly — *not* better than least-loaded pinning in
    the heavily loaded regime: splitting inherits the fluctuation in how
    many replica groups each node joined, while least-loaded placement
    actively corrects it (the selection ablation bench quantifies this).
    """

    name = "round-robin"

    def node_loads(self, groups, rates, n, rng=None):
        groups, rates = _validate(groups, rates, n)
        loads = np.zeros(n, dtype=float)
        if groups.shape[0]:
            d = groups.shape[1]
            np.add.at(loads, groups.ravel(), np.repeat(rates / d, d))
        return loads


@register_component("selection", "per-query-random")
class PerQueryRandomSpreading(SelectionPolicy):
    """Route each individual query to a random replica.

    In expectation identical to round-robin; this implementation samples
    the actual multinomial split of a finite query batch so the
    stochastic fluctuation is visible.  ``queries_per_unit_rate``
    controls the batch granularity (higher = closer to the mean).
    """

    name = "per-query-random"

    def __init__(self, queries_per_unit_rate: float = 1.0) -> None:
        if queries_per_unit_rate <= 0:
            raise ConfigurationError(
                f"queries_per_unit_rate must be positive, got {queries_per_unit_rate}"
            )
        self.queries_per_unit_rate = queries_per_unit_rate

    def node_loads(self, groups, rates, n, rng=None):
        groups, rates = _validate(groups, rates, n)
        gen = as_generator(rng, "per-query-random")
        loads = np.zeros(n, dtype=float)
        if groups.shape[0] == 0:
            return loads
        d = groups.shape[1]
        counts = np.maximum(
            1, np.round(rates * self.queries_per_unit_rate).astype(np.int64)
        )
        for row, rate, count in zip(groups.tolist(), rates.tolist(), counts.tolist()):
            if rate == 0:
                continue
            split = gen.multinomial(count, [1.0 / d] * d)
            per_query_rate = rate / count
            for node, queries in zip(row, split.tolist()):
                loads[node] += queries * per_query_rate
        return loads


def _build_least_utilized(ctx, capacities=None):
    """Spec builder: default to uniform capacities over the system's
    ``n`` nodes (recovering least-loaded), so heterogeneous clusters are
    opt-in via an explicit ``capacities`` list."""
    if capacities is None:
        capacities = np.ones(ctx.params.n)
    return LeastUtilizedKeyPinning(capacities)


@register_component(
    "selection", "least-utilized", builder=_build_least_utilized
)
class LeastUtilizedKeyPinning(SelectionPolicy):
    """Pin each key to the replica with the lowest load/capacity ratio.

    The capacity-aware variant of the theory model for heterogeneous
    clusters: big nodes absorb proportionally more keys, so the cluster
    is no longer limited by its weakest member carrying an average share
    — see :mod:`repro.core.heterogeneous` for the adjusted bound.  With
    uniform capacities this is exactly :class:`LeastLoadedKeyPinning`.
    """

    name = "least-utilized"

    def __init__(self, capacities) -> None:
        capacities = np.asarray(capacities, dtype=float)
        if capacities.ndim != 1 or capacities.size == 0:
            raise ConfigurationError("capacities must be a non-empty 1-D vector")
        if np.any(capacities <= 0):
            raise ConfigurationError("capacities must be positive")
        self._capacities = capacities

    @property
    def capacities(self) -> np.ndarray:
        """Per-node capacities the policy weighs by (copy)."""
        return self._capacities.copy()

    def node_loads(self, groups, rates, n, rng=None):
        """Greedy utilization-weighted d-choice placement."""
        groups, rates = _validate(groups, rates, n)
        if self._capacities.size != n:
            raise ConfigurationError(
                f"policy built for {self._capacities.size} nodes, asked about {n}"
            )
        loads = [0.0] * n
        capacities = self._capacities.tolist()
        for row, rate in zip(groups.tolist(), rates.tolist()):
            best = row[0]
            best_util = loads[best] / capacities[best]
            for cand in row[1:]:
                cand_util = loads[cand] / capacities[cand]
                if cand_util < best_util:
                    best = cand
                    best_util = cand_util
            loads[best] += rate
        return np.asarray(loads, dtype=float)


def make_selection_policy(name: str, **kwargs) -> SelectionPolicy:
    """Construct a selection policy by its :attr:`~SelectionPolicy.name`.

    A thin shim over the scenario component registry
    (:mod:`repro.scenario.registry`): every policy class registers
    itself above, so this factory and scenario specs always agree on
    the available names.

    >>> make_selection_policy("least-loaded").name
    'least-loaded'
    """
    from ..scenario.registry import REGISTRY

    names = REGISTRY.names("selection")
    if name not in names:
        raise ConfigurationError(
            f"unknown selection policy {name!r}; choose from {sorted(names)}"
        ) from None
    return REGISTRY.get("selection", name).factory(**kwargs)

"""Randomized partitioners: who stores each key's ``d`` replicas.

The paper's assumption 1 ("randomized mapping ... unknown to the
adversary") is embodied here: every partitioner is seeded with a secret
the adversary-facing APIs never expose, and the key -> replica-group
mapping looks uniform to anyone without the secret.

Three interchangeable implementations:

- :class:`HashPartitioner` — keyed BLAKE2b hashing, works for an
  unbounded key universe (the production-shaped choice);
- :class:`ConsistentHashPartitioner` — a classic consistent-hash ring
  with virtual nodes (Karger et al.), what Dynamo-style systems deploy;
- :class:`RandomTablePartitioner` — an explicit uniformly-sampled table
  over a fixed key space, the exact process the theory analyses (and the
  fastest for simulation).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, PartitionError
from ..rng import DEFAULT_SEED, RngFactory
from ..scenario.registry import register_component
from .. import ballsbins

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ConsistentHashPartitioner",
    "RandomTablePartitioner",
]


class Partitioner(ABC):
    """Maps keys to replica groups of ``d`` distinct nodes out of ``n``."""

    def __init__(self, n: int, d: int) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one node, got n={n}")
        if not 1 <= d <= n:
            raise ConfigurationError(f"need 1 <= d <= n, got d={d}, n={n}")
        self._n = n
        self._d = d

    @property
    def n(self) -> int:
        """Number of back-end nodes."""
        return self._n

    @property
    def d(self) -> int:
        """Replication factor."""
        return self._d

    @abstractmethod
    def replica_group(self, key: int) -> np.ndarray:
        """Return the ``d`` distinct node ids that can serve ``key``."""

    def replica_groups(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorised form: ``(len(keys), d)`` matrix of node ids.

        Subclasses override this when they can beat the per-key loop.
        """
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty((keys.size, self._d), dtype=np.int64)
        for i, key in enumerate(keys):
            out[i] = self.replica_group(int(key))
        return out

    def _validate_group(self, group: np.ndarray, key: int) -> np.ndarray:
        if len(set(group.tolist())) != self._d:
            raise PartitionError(f"replica group for key {key} has duplicates: {group}")
        return group


@register_component("partitioner", "hash")
class HashPartitioner(Partitioner):
    """Keyed-hash partitioner over an unbounded key universe.

    Each key's group is derived from a BLAKE2b stream keyed with a
    private secret: the first ``d`` distinct values of
    ``hash(secret, key, counter) mod n``.  Without the secret the groups
    are computationally indistinguishable from uniform — the "opaque
    partitioning" the paper requires.
    """

    def __init__(self, n: int, d: int, secret: Optional[bytes] = None) -> None:
        super().__init__(n, d)
        if secret is None:
            secret = DEFAULT_SEED.to_bytes(8, "little")
        if not isinstance(secret, (bytes, bytearray)):
            raise ConfigurationError("secret must be bytes")
        self._secret = bytes(secret)[:16].ljust(16, b"\0")

    def replica_group(self, key: int) -> np.ndarray:
        group: list[int] = []
        seen: set[int] = set()
        counter = 0
        while len(group) < self._d:
            digest = hashlib.blake2b(
                key.to_bytes(8, "little", signed=True) + counter.to_bytes(4, "little"),
                key=self._secret,
                digest_size=8,
            ).digest()
            node = int.from_bytes(digest, "little") % self._n
            if node not in seen:
                seen.add(node)
                group.append(node)
            counter += 1
            if counter > 64 * self._d + 1024:  # pragma: no cover - defensive
                raise PartitionError(f"could not derive {self._d} distinct nodes for key {key}")
        return self._validate_group(np.asarray(group, dtype=np.int64), key)


@register_component("partitioner", "consistent-hash")
class ConsistentHashPartitioner(Partitioner):
    """Consistent-hash ring with virtual nodes (Karger et al., STOC'97).

    Each physical node owns ``vnodes`` pseudo-random positions on a
    2^64 ring; a key is served by the first ``d`` *distinct physical*
    nodes found walking clockwise from the key's position.  This is how
    Dynamo, Cassandra and friends realise randomized partitioning; load
    spread is slightly less uniform than a true random table, which the
    ablation benches quantify.
    """

    def __init__(
        self, n: int, d: int, vnodes: int = 64, secret: Optional[bytes] = None
    ) -> None:
        super().__init__(n, d)
        if vnodes < 1:
            raise ConfigurationError(f"need at least one vnode, got {vnodes}")
        if secret is None:
            secret = DEFAULT_SEED.to_bytes(8, "little")
        self._secret = bytes(secret)[:16].ljust(16, b"\0")
        self._vnodes = vnodes
        positions = []
        owners = []
        for node in range(n):
            for v in range(vnodes):
                digest = hashlib.blake2b(
                    node.to_bytes(8, "little") + v.to_bytes(4, "little") + b"ring",
                    key=self._secret,
                    digest_size=8,
                ).digest()
                positions.append(int.from_bytes(digest, "little"))
                owners.append(node)
        order = np.argsort(np.asarray(positions, dtype=np.uint64), kind="stable")
        self._ring_pos = np.asarray(positions, dtype=np.uint64)[order]
        self._ring_owner = np.asarray(owners, dtype=np.int64)[order]

    @property
    def vnodes(self) -> int:
        """Virtual nodes per physical node."""
        return self._vnodes

    def _key_position(self, key: int) -> int:
        digest = hashlib.blake2b(
            key.to_bytes(8, "little", signed=True) + b"key",
            key=self._secret,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little")

    def replica_group(self, key: int) -> np.ndarray:
        pos = self._key_position(key)
        start = int(np.searchsorted(self._ring_pos, np.uint64(pos), side="left"))
        ring_size = self._ring_owner.size
        group: list[int] = []
        seen: set[int] = set()
        for step in range(ring_size):
            owner = int(self._ring_owner[(start + step) % ring_size])
            if owner not in seen:
                seen.add(owner)
                group.append(owner)
                if len(group) == self._d:
                    break
        if len(group) < self._d:  # pragma: no cover - impossible: d <= n
            raise PartitionError(f"ring walk found only {len(group)} nodes for key {key}")
        return self._validate_group(np.asarray(group, dtype=np.int64), key)


@register_component("partitioner", "random-table")
class RandomTablePartitioner(Partitioner):
    """Explicit uniform table over a fixed key space ``0 .. m-1``.

    Exactly the process the theory analyses: each key's group is ``d``
    distinct nodes drawn uniformly and independently.  Being a numpy
    table, it is also by far the fastest partitioner, so the Monte-Carlo
    simulators default to it.
    """

    def __init__(self, n: int, d: int, m: int, seed: Optional[int] = DEFAULT_SEED) -> None:
        super().__init__(n, d)
        if m < 1:
            raise ConfigurationError(f"need at least one key, got m={m}")
        self._m = m
        gen = RngFactory(seed).generator("random-table-partitioner")
        self._table = ballsbins.allocation.sample_replica_groups(
            m, n, d, rng=gen, distinct=True
        )

    @property
    def m(self) -> int:
        """Size of the key space covered by the table."""
        return self._m

    def replica_group(self, key: int) -> np.ndarray:
        if not 0 <= key < self._m:
            raise PartitionError(f"key {key} outside table domain [0, {self._m})")
        return self._table[key]

    def replica_groups(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self._m):
            raise PartitionError("some keys outside table domain")
        return self._table[keys]

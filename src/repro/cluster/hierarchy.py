"""Layered partitioning and inter-layer routing for cache hierarchies.

DistCache (Liu et al., NSDI'19; see PAPERS.md) generalises a single
front-end cache to a *hierarchy*: edge cache shards in one layer, an
aggregate layer behind them, backends last.  Its load-balance theorem
rests on two mechanisms, both of which live here:

- **independent per-layer hash partitioning** — every layer assigns a
  key to one of its shards with its *own* keyed hash, so a key's shard
  in layer 0 says nothing about its shard in layer 1
  (:class:`LayeredPartitioner`);
- **power-of-two-choices routing between layers** — a query for a
  cached key may be served by either of its two per-layer candidates,
  and picking the less-loaded one yields the classic
  ``log log / log 2`` max-load bound across each layer's shards
  (:class:`TwoChoiceLayerSelection`).

These are deliberately *not* the backend :class:`~repro.cluster.
partitioner.Partitioner` / :class:`~repro.cluster.selection.
SelectionPolicy` seams: those map keys to the ``n`` replicated backend
nodes below the whole hierarchy, while these map keys to cache *shards
within a layer* (replication factor 1 per layer) and pick *which layer*
answers.  Layer selections register in the ``layer-selection`` scenario
namespace so tree specs compose them by name.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import DEFAULT_SEED
from ..scenario.registry import register_component
from .partitioner import HashPartitioner

__all__ = [
    "LayeredPartitioner",
    "LayerSelection",
    "CascadeLayerSelection",
    "TwoChoiceLayerSelection",
    "make_layer_selection",
]


def _layer_secret(seed: int, layer: int) -> bytes:
    """Derive layer ``layer``'s private hash key from the tree seed.

    Depends only on ``(seed, layer)`` — not on the shard widths — so a
    shard-targeting adversary model can reconstruct the layer-0 mapping
    knowing just the seed and the edge width (the paper's "known
    partition" worst case), while distinct layers still get independent
    keyed hashes.
    """
    material = f"layered-partitioner-{seed}-{layer}".encode()
    return hashlib.blake2b(material, digest_size=16).digest()


class LayeredPartitioner:
    """Independent keyed-hash shard assignment per hierarchy layer.

    One :class:`~repro.cluster.partitioner.HashPartitioner` with
    ``d=1`` per layer, each keyed with a secret derived from
    ``(seed, layer)`` only.  ``assign(key)`` returns the key's shard in
    every layer at once; the per-layer marginals are uniform and the
    joint distribution factorises (pinned by the hypothesis
    independence tests in ``tests/test_tree_properties.py``).
    """

    def __init__(
        self, widths: Sequence[int], seed: Optional[int] = None
    ) -> None:
        widths = tuple(int(w) for w in widths)
        if not widths:
            raise ConfigurationError("need at least one layer of shards")
        if any(w < 1 for w in widths):
            raise ConfigurationError(
                f"every layer needs at least one shard, got widths={widths}"
            )
        if seed is None:
            seed = DEFAULT_SEED
        self._widths = widths
        self._seed = int(seed)
        self._layers = tuple(
            HashPartitioner(n=width, d=1, secret=_layer_secret(self._seed, i))
            for i, width in enumerate(widths)
        )

    @property
    def widths(self) -> Tuple[int, ...]:
        """Shard count per layer, edge layer first."""
        return self._widths

    @property
    def layers(self) -> int:
        """Number of layers."""
        return len(self._widths)

    @property
    def seed(self) -> int:
        """Seed the per-layer secrets derive from."""
        return self._seed

    def assign_layer(self, layer: int, key: int) -> int:
        """Shard id of ``key`` within ``layer``."""
        return int(self._layers[layer].replica_group(key)[0])

    def assign(self, key: int) -> Tuple[int, ...]:
        """Shard id of ``key`` in every layer, edge layer first."""
        return tuple(
            int(part.replica_group(key)[0]) for part in self._layers
        )

    def assign_many(self, layer: int, keys: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`assign_layer` over ``keys``."""
        return self._layers[layer].replica_groups(keys)[:, 0]


class LayerSelection(ABC):
    """Probe-order policy across a cache tree's layers.

    Given the key's per-layer shard assignment, return the order in
    which layers are probed; the first probed layer holding the key
    serves it.  Implementations must be deterministic given the tree's
    observable state — inter-layer routing consumes **no** RNG, which
    is what keeps a degenerate (single-layer, single-shard) tree
    bit-identical to the flat simulator path.
    """

    NAME = "layer-selection"

    @abstractmethod
    def probe_order(
        self, shards: Tuple[int, ...], served: Sequence[Sequence[int]]
    ) -> Tuple[int, ...]:
        """Layer indices in probe order.

        Parameters
        ----------
        shards:
            The key's shard assignment per layer.
        served:
            Per-layer, per-shard cumulative hit counts — the load signal
            two-choice balancing reads.
        """

    def reset(self) -> None:
        """Clear any accumulated state (called between campaign trials)."""


@register_component("layer-selection", "cascade")
class CascadeLayerSelection(LayerSelection):
    """Probe layers strictly top-down: edge first, then deeper layers.

    The classic look-through hierarchy — no balancing between layers;
    deeper layers only see the misses of the layers above.
    """

    NAME = "cascade"

    def probe_order(
        self, shards: Tuple[int, ...], served: Sequence[Sequence[int]]
    ) -> Tuple[int, ...]:
        return tuple(range(len(shards)))


@register_component("layer-selection", "two-choice")
class TwoChoiceLayerSelection(LayerSelection):
    """Power-of-two-choices between a key's per-layer candidates.

    Every key has one candidate shard per layer (independent hashes);
    probing the layer whose candidate has served the fewest hits first
    is exactly the "choose the less-loaded of two" rule DistCache
    analyses for a two-layer hierarchy — hot keys' hits split across
    layers instead of piling onto one shard.  Ties break toward the
    upper (edge) layer, so a cold tree degenerates to the cascade
    order.  Deterministic: the order is a pure function of the served
    counters, no RNG.
    """

    NAME = "two-choice"

    def probe_order(
        self, shards: Tuple[int, ...], served: Sequence[Sequence[int]]
    ) -> Tuple[int, ...]:
        return tuple(
            sorted(
                range(len(shards)),
                key=lambda layer: (served[layer][shards[layer]], layer),
            )
        )


def make_layer_selection(name: str) -> LayerSelection:
    """Build a layer selection by registry name (``cascade``, ...)."""
    from ..scenario.registry import REGISTRY

    entry = REGISTRY.get("layer-selection", name)
    return entry.factory()

"""Back-end node model: identity, capacity and load accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = ["BackendNode", "NodeLoad"]


@dataclass(frozen=True)
class BackendNode:
    """A back-end server.

    Parameters
    ----------
    node_id:
        Dense id in ``0 .. n-1``.
    capacity:
        Max sustainable query rate ``r_i`` (queries/second), or ``None``
        when capacity is not modelled — the analytic setting of the
        paper, where only *relative* load matters.
    """

    node_id: int
    capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError(f"node_id must be non-negative, got {self.node_id}")
        if self.capacity is not None and self.capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive when given, got {self.capacity}"
            )

    def utilization(self, load: float) -> Optional[float]:
        """``load / capacity``, or ``None`` when capacity is unmodelled."""
        if self.capacity is None:
            return None
        return load / self.capacity

    def saturated_by(self, load: float) -> bool:
        """True when ``load`` exceeds this node's capacity.

        An uncapped node is never saturated — the analytic model's
        convention (saturation questions then belong to Definition 2's
        relative gain instead).
        """
        if self.capacity is None:
            return False
        return load > self.capacity


@dataclass
class NodeLoad:
    """Mutable load account for one node during a simulation trial.

    Tracks both the number of keys pinned to the node (the balls-into-
    bins view) and the aggregate query rate (the load view); they differ
    once key rates are unequal or queries spread across replicas.
    """

    node: BackendNode
    keys_assigned: int = 0
    query_rate: float = 0.0
    queries_served: int = 0
    queries_dropped: int = 0

    def assign_key(self, rate: float) -> None:
        """Pin one key with steady-state rate ``rate`` to this node."""
        if rate < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate}")
        self.keys_assigned += 1
        self.query_rate += rate

    def add_rate(self, rate: float) -> None:
        """Add fractional rate (per-query spreading policies)."""
        if rate < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate}")
        self.query_rate += rate

    def serve(self) -> None:
        """Record one served request (event-driven simulator)."""
        self.queries_served += 1

    def drop(self) -> None:
        """Record one dropped request (event-driven simulator)."""
        self.queries_dropped += 1

    @property
    def saturated(self) -> bool:
        """Whether the steady-state rate exceeds the node's capacity."""
        return self.node.saturated_by(self.query_rate)

    def publish_metrics(self, metrics) -> None:
        """Export this node's account into a metrics registry.

        Gauges (point-in-time, per trial): keys assigned, query rate,
        saturation flag.  Counters (cumulative across publishes):
        served/dropped request totals.  ``metrics`` may be ``None``.
        """
        if metrics is None:
            return
        node = str(self.node.node_id)
        metrics.gauge("node_keys_assigned", node=node).set(self.keys_assigned)
        metrics.gauge("node_query_rate", node=node).set(self.query_rate)
        metrics.gauge("node_saturated", node=node).set(1.0 if self.saturated else 0.0)
        if self.queries_served:
            metrics.counter("node_served_total", node=node).inc(self.queries_served)
        if self.queries_dropped:
            metrics.counter("node_shed_total", node=node).inc(self.queries_dropped)

    def reset(self) -> None:
        """Clear all accounting for the next trial."""
        self.keys_assigned = 0
        self.query_rate = 0.0
        self.queries_served = 0
        self.queries_dropped = 0

"""The Cluster facade: nodes + partitioner + replica selection.

Ties the substrate together into the object the simulators and examples
talk to: give it per-key query rates (post-cache) and it returns the
per-node load vector, keeping the partitioning secret internal.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator
from ..types import LoadVector
from .node import BackendNode, NodeLoad
from .partitioner import Partitioner, RandomTablePartitioner
from .selection import LeastLoadedKeyPinning, SelectionPolicy

__all__ = ["Cluster"]

RngLike = Union[None, int, np.random.Generator]


class Cluster:
    """A randomly partitioned, replicated back-end cluster.

    Parameters
    ----------
    n:
        Number of back-end nodes.
    d:
        Replication factor.
    partitioner:
        Key -> replica-group mapping; defaults to a fresh
        :class:`~repro.cluster.partitioner.RandomTablePartitioner` when
        ``m`` is given, otherwise a hash partitioner must be supplied.
    selection:
        Replica-selection policy; defaults to the theory model
        (least-loaded key pinning).
    node_capacity:
        Optional uniform per-node capacity ``r_i``.
    m:
        Key-space size, needed only to build the default partitioner.
    seed:
        Secret seed for the default partitioner.

    Examples
    --------
    >>> cluster = Cluster(n=10, d=2, m=100, seed=1)
    >>> loads = cluster.apply_rates({0: 5.0, 7: 3.0}, total_rate=8.0)
    >>> round(loads.backend_rate, 6)
    8.0
    """

    def __init__(
        self,
        n: int,
        d: int,
        partitioner: Optional[Partitioner] = None,
        selection: Optional[SelectionPolicy] = None,
        node_capacity: Optional[float] = None,
        m: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if partitioner is None:
            if m is None:
                raise ConfigurationError(
                    "provide either a partitioner or m (to build the default one)"
                )
            partitioner = RandomTablePartitioner(n, d, m, seed=seed)
        if partitioner.n != n or partitioner.d != d:
            raise ConfigurationError(
                f"partitioner built for n={partitioner.n}, d={partitioner.d}; "
                f"cluster asked for n={n}, d={d}"
            )
        self._n = n
        self._d = d
        self._partitioner = partitioner
        self._selection = selection if selection is not None else LeastLoadedKeyPinning()
        self._nodes = [BackendNode(i, capacity=node_capacity) for i in range(n)]
        self._accounts = [NodeLoad(node) for node in self._nodes]

    @property
    def n(self) -> int:
        """Number of back-end nodes."""
        return self._n

    @property
    def d(self) -> int:
        """Replication factor."""
        return self._d

    @property
    def nodes(self) -> Sequence[BackendNode]:
        """The node objects (read-only view)."""
        return tuple(self._nodes)

    @property
    def selection(self) -> SelectionPolicy:
        """The active replica-selection policy."""
        return self._selection

    @property
    def partitioner(self) -> Partitioner:
        """The key -> replica-group mapping.

        Exposed for *system* code (simulators, tests); adversary
        implementations must not touch it — see
        :class:`repro.adversary.strategies.Adversary`, whose interface
        only receives public parameters.
        """
        return self._partitioner

    def replica_group(self, key: int) -> np.ndarray:
        """Nodes able to serve ``key`` (system-side introspection)."""
        return self._partitioner.replica_group(key)

    def apply_rates(
        self,
        key_rates: Union[Mapping[int, float], tuple],
        total_rate: Optional[float] = None,
        rng: RngLike = None,
    ) -> LoadVector:
        """Compute steady-state node loads for post-cache key rates.

        Parameters
        ----------
        key_rates:
            Either a mapping ``{key: rate}`` or a ``(keys, rates)`` pair
            of equal-length arrays.  Only keys that miss the cache
            should appear here.
        total_rate:
            The aggregate *offered* rate ``R`` (including cached
            traffic) used for normalization; defaults to the sum of the
            given rates (i.e. no cache absorption).
        rng:
            Randomness for stochastic selection policies.
        """
        if isinstance(key_rates, Mapping):
            keys = np.fromiter(key_rates.keys(), dtype=np.int64, count=len(key_rates))
            rates = np.fromiter(key_rates.values(), dtype=float, count=len(key_rates))
        else:
            keys, rates = key_rates
            keys = np.asarray(keys, dtype=np.int64)
            rates = np.asarray(rates, dtype=float)
        if keys.shape != rates.shape:
            raise ConfigurationError("keys and rates must have equal length")
        groups = self._partitioner.replica_groups(keys)
        gen = as_generator(rng, "cluster-selection")
        loads = self._selection.node_loads(groups, rates, self._n, rng=gen)
        if total_rate is None:
            total_rate = float(rates.sum())
        self._record(loads)
        return LoadVector(loads=loads, total_rate=total_rate)

    def _record(self, loads: np.ndarray) -> None:
        for account, load in zip(self._accounts, loads):
            account.reset()
            account.add_rate(float(load))

    def accounts(self) -> Sequence[NodeLoad]:
        """Per-node load accounts from the most recent ``apply_rates``."""
        return tuple(self._accounts)

    def publish_metrics(self, metrics) -> None:
        """Export per-node accounts plus cluster-level facts.

        Delegates per-node series to
        :meth:`repro.cluster.node.NodeLoad.publish_metrics` and adds the
        cluster shape (``n``, ``d``) and the saturated-node count.
        ``metrics`` may be ``None`` (no-op).
        """
        if metrics is None:
            return
        metrics.gauge("cluster_nodes").set(self._n)
        metrics.gauge("cluster_replication").set(self._d)
        saturated = 0
        for account in self._accounts:
            account.publish_metrics(metrics)
            if account.saturated:
                saturated += 1
        metrics.gauge("cluster_saturated_nodes").set(saturated)

    def saturated_nodes(self) -> Sequence[int]:
        """Ids of nodes whose last recorded rate exceeds capacity."""
        return tuple(
            account.node.node_id for account in self._accounts if account.saturated
        )

"""Cluster health assessment: saturation, SLO headroom, imbalance.

The paper's operational takeaway ("if the capacity r_i of each node is
larger than E[L_max], then with high probability the adversary will
never saturate any node") needs a measurement side: given an observed
load vector and node capacities, report who saturated and how much
headroom remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import AnalysisError
from ..types import LoadVector

__all__ = ["ClusterHealth", "assess_health"]


@dataclass(frozen=True)
class ClusterHealth:
    """Snapshot of a cluster's condition under a given load vector.

    Attributes
    ----------
    n_nodes:
        Cluster size.
    max_load, mean_load:
        Queries/second on the most loaded node and on average.
    normalized_max:
        The attack gain realised by this load vector.
    saturated:
        Node ids over capacity (empty when capacity is unmodelled).
    headroom:
        ``capacity - max_load`` (``None`` when capacity is unmodelled).
    imbalance:
        ``max/mean`` ratio — 1.0 is a perfectly level cluster.
    """

    n_nodes: int
    max_load: float
    mean_load: float
    normalized_max: float
    saturated: Tuple[int, ...]
    headroom: Optional[float]
    imbalance: float

    @property
    def healthy(self) -> bool:
        """No node saturated (vacuously true without capacity data)."""
        return len(self.saturated) == 0

    def describe(self) -> str:
        """Human-readable summary line."""
        state = "healthy" if self.healthy else f"{len(self.saturated)} node(s) SATURATED"
        head = "" if self.headroom is None else f", headroom {self.headroom:.1f} qps"
        return (
            f"{state}: max load {self.max_load:.1f} qps "
            f"({self.normalized_max:.2f}x even split), imbalance {self.imbalance:.2f}{head}"
        )


def assess_health(
    loads: LoadVector, node_capacity: Optional[float] = None
) -> ClusterHealth:
    """Assess a load vector against an optional uniform node capacity."""
    vector = loads.loads
    if vector.size == 0:
        raise AnalysisError("empty load vector")
    mean = float(vector.mean())
    saturated: Tuple[int, ...] = ()
    headroom: Optional[float] = None
    if node_capacity is not None:
        if node_capacity <= 0:
            raise AnalysisError(f"node_capacity must be positive, got {node_capacity}")
        saturated = tuple(int(i) for i in np.nonzero(vector > node_capacity)[0])
        headroom = node_capacity - loads.max_load
    return ClusterHealth(
        n_nodes=loads.n_nodes,
        max_load=loads.max_load,
        mean_load=mean,
        normalized_max=loads.normalized_max,
        saturated=saturated,
        headroom=headroom,
        imbalance=(loads.max_load / mean) if mean > 0 else 0.0,
    )

"""The back-end cluster substrate: nodes, partitioning, replica selection.

Models the lower half of the paper's Figure 1: ``n`` back-end nodes over
which ``m`` items are randomly partitioned with replication factor
``d``.  The partitioning seed is private to the cluster object — the
adversary-facing API never exposes key -> node mappings, mirroring the
paper's "opaque to the clients" assumption.
"""

from .node import BackendNode, NodeLoad
from .partitioner import (
    ConsistentHashPartitioner,
    HashPartitioner,
    Partitioner,
    RandomTablePartitioner,
)
from .selection import (
    LeastLoadedKeyPinning,
    LeastUtilizedKeyPinning,
    PerQueryRandomSpreading,
    PrimaryKeyPinning,
    RandomKeyPinning,
    RoundRobinSpreading,
    SelectionPolicy,
    make_selection_policy,
)
from .hierarchy import (
    CascadeLayerSelection,
    LayeredPartitioner,
    LayerSelection,
    TwoChoiceLayerSelection,
    make_layer_selection,
)
from .cluster import Cluster
from .health import ClusterHealth, assess_health
from .rebalance import MigrationPlan, grow_ring, migration_plan
from .failures import (
    DegradedGroups,
    degrade_groups,
    expected_unavailable_fraction,
    sample_failures,
)

__all__ = [
    "BackendNode",
    "NodeLoad",
    "Partitioner",
    "HashPartitioner",
    "ConsistentHashPartitioner",
    "RandomTablePartitioner",
    "SelectionPolicy",
    "LeastLoadedKeyPinning",
    "LeastUtilizedKeyPinning",
    "RandomKeyPinning",
    "PrimaryKeyPinning",
    "RoundRobinSpreading",
    "PerQueryRandomSpreading",
    "make_selection_policy",
    "LayeredPartitioner",
    "LayerSelection",
    "CascadeLayerSelection",
    "TwoChoiceLayerSelection",
    "make_layer_selection",
    "Cluster",
    "ClusterHealth",
    "assess_health",
    "MigrationPlan",
    "migration_plan",
    "grow_ring",
    "DegradedGroups",
    "degrade_groups",
    "sample_failures",
    "expected_unavailable_fraction",
]

"""Membership change and rebalancing cost — assumption 3 quantified.

The paper's setting requires partitioning that is "relatively stable on
the timescale of a few requests" because moving service between nodes
is expensive (system property 4).  When membership *does* change —
a node is added or retired — the partitioner determines how much data
moves:

- a freshly re-sampled random table moves almost everything (each key's
  group is redrawn independently): the theoretical ideal for balance is
  the worst case for churn;
- a consistent-hash ring moves only the keys whose ring successors
  changed — the classic ``O(moved keys) = O(m * d / n)`` guarantee that
  made consistent hashing the deployed default.

:func:`migration_plan` diffs two partitioners over a key space and
reports exactly which replicas move, so tests and benches can verify
the guarantee and operators can cost a topology change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .partitioner import ConsistentHashPartitioner, Partitioner

__all__ = ["MigrationPlan", "migration_plan", "grow_ring"]


@dataclass(frozen=True)
class MigrationPlan:
    """Replica movements implied by a partitioner change.

    Attributes
    ----------
    keys_affected:
        Number of keys whose replica group changed at all.
    replicas_moved:
        Total (key, node) placements that must be created — the actual
        bytes-on-the-wire proxy.
    total_keys, replication:
        Scope of the comparison (``total_keys * replication`` is the
        number of placements overall).
    """

    keys_affected: int
    replicas_moved: int
    total_keys: int
    replication: int

    @property
    def moved_fraction(self) -> float:
        """Fraction of all placements that move."""
        total = self.total_keys * self.replication
        if total == 0:
            return 0.0
        return self.replicas_moved / total

    @property
    def affected_fraction(self) -> float:
        """Fraction of keys touched at all."""
        if self.total_keys == 0:
            return 0.0
        return self.keys_affected / self.total_keys

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.keys_affected}/{self.total_keys} keys affected, "
            f"{self.replicas_moved} replica placements move "
            f"({100 * self.moved_fraction:.1f}% of all placements)"
        )


def migration_plan(
    before: Partitioner,
    after: Partitioner,
    keys: Sequence[int],
) -> MigrationPlan:
    """Diff two partitioners over ``keys``.

    The partitioners may have different cluster sizes (that is the
    point) but must share the replication factor — mixed-``d``
    migrations are a different operation (re-replication) with
    different costs.
    """
    if before.d != after.d:
        raise ConfigurationError(
            f"replication factor changed ({before.d} -> {after.d}); "
            "use a re-replication plan, not a migration plan"
        )
    keys = np.asarray(keys, dtype=np.int64)
    groups_before = before.replica_groups(keys)
    groups_after = after.replica_groups(keys)
    affected = 0
    moved = 0
    for row_before, row_after in zip(groups_before, groups_after):
        old = set(row_before.tolist())
        new = set(row_after.tolist())
        gained = new - old
        if gained or old != new:
            affected += 1
        moved += len(gained)
    return MigrationPlan(
        keys_affected=affected,
        replicas_moved=moved,
        total_keys=int(keys.size),
        replication=before.d,
    )


def grow_ring(
    ring: ConsistentHashPartitioner, new_n: int
) -> ConsistentHashPartitioner:
    """Return the same ring with nodes added (same secret and vnodes).

    Consistent hashing's defining property: because existing nodes'
    vnode positions are pure functions of (secret, node id), growing the
    cluster re-hashes nothing — new nodes only *claim* ring segments
    from their successors, so a :func:`migration_plan` against the grown
    ring moves ~``(new_n - n) / new_n`` of the data instead of ~all of it.
    """
    if new_n <= ring.n:
        raise ConfigurationError(
            f"grow_ring needs new_n > current n={ring.n}, got {new_n}"
        )
    return ConsistentHashPartitioner(
        new_n, ring.d, vnodes=ring.vnodes, secret=ring._secret
    )

"""Empirical critical cache size (the crossing in Figure 5(a)).

The paper's Figure 5(a) identifies a *critical point*: the cache size at
which the best achievable attack gain crosses 1.0, and shows the
analytic bound ``c* = n k + 1`` lands close to it.  This module locates
the empirical crossing by bisection on the (monotone non-increasing)
measured gain curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..exceptions import AnalysisError

__all__ = ["CriticalPointResult", "find_critical_cache_size"]


@dataclass(frozen=True)
class CriticalPointResult:
    """Outcome of the bisection search.

    Attributes
    ----------
    critical_cache:
        Smallest probed cache size with measured gain <= 1.0.
    evaluations:
        Every ``(cache_size, gain)`` pair measured along the way.
    lo, hi:
        Final bracket: gain(lo) > 1.0 >= gain(hi).
    """

    critical_cache: int
    evaluations: Tuple[Tuple[int, float], ...]
    lo: int
    hi: int

    def describe(self) -> str:
        """Human-readable summary."""
        return (
            f"critical cache size ~ {self.critical_cache} "
            f"(bracket [{self.lo}, {self.hi}], {len(self.evaluations)} measurements)"
        )


def find_critical_cache_size(
    gain_at: Callable[[int], float],
    lo: int,
    hi: int,
    tolerance: int = 1,
) -> CriticalPointResult:
    """Bisect for the smallest cache size whose measured gain <= 1.0.

    Parameters
    ----------
    gain_at:
        Callable mapping a cache size to the *best achievable* attack
        gain (e.g. a wrapper around
        :func:`repro.sim.analytic.best_achievable_gain`).  Must be
        (statistically) non-increasing in the cache size.
    lo, hi:
        Initial bracket; requires ``gain_at(lo) > 1.0 >= gain_at(hi)``.
    tolerance:
        Stop when the bracket width reaches this many cache entries.

    Notes
    -----
    Monte-Carlo noise can make the measured curve locally
    non-monotone near the crossing; bisection still converges to a point
    within the noise band of the true critical size, which is how the
    paper's own figure reads.
    """
    if lo >= hi:
        raise AnalysisError(f"need lo < hi, got lo={lo}, hi={hi}")
    if tolerance < 1:
        raise AnalysisError(f"tolerance must be >= 1, got {tolerance}")
    evaluations: List[Tuple[int, float]] = []

    def measure(c: int) -> float:
        gain = float(gain_at(c))
        evaluations.append((c, gain))
        return gain

    gain_lo = measure(lo)
    gain_hi = measure(hi)
    if gain_lo <= 1.0:
        raise AnalysisError(
            f"gain at lo={lo} is already {gain_lo:.3f} <= 1.0; lower the bracket"
        )
    if gain_hi > 1.0:
        raise AnalysisError(
            f"gain at hi={hi} is still {gain_hi:.3f} > 1.0; raise the bracket"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if measure(mid) > 1.0:
            lo = mid
        else:
            hi = mid
    return CriticalPointResult(
        critical_cache=hi,
        evaluations=tuple(evaluations),
        lo=lo,
        hi=hi,
    )

"""Generic parameter sweeps with tidy, column-oriented results."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from ..exceptions import AnalysisError

__all__ = ["sweep"]


def sweep(
    values: Sequence,
    measure: Callable[[object], Mapping[str, float]],
    value_name: str = "value",
) -> Dict[str, List]:
    """Evaluate ``measure`` at each sweep point; return columns.

    Parameters
    ----------
    values:
        Sweep points (e.g. cache sizes, node counts, x values).
    measure:
        Callable returning a ``{column: number}`` mapping per point.
        Every point must yield the same columns.
    value_name:
        Column name for the sweep variable itself.

    Returns
    -------
    dict
        ``{value_name: [...], col1: [...], col2: [...]}`` — directly
        consumable by the table renderer and easy to zip into rows.

    Examples
    --------
    >>> table = sweep([1, 2, 3], lambda v: {"square": v * v}, value_name="v")
    >>> table["square"]
    [1, 4, 9]
    """
    values = list(values)
    if not values:
        raise AnalysisError("sweep needs at least one point")
    columns: Dict[str, List] = {value_name: []}
    expected: Sequence[str] = None
    for point in values:
        row = measure(point)
        if expected is None:
            expected = tuple(row.keys())
            for name in expected:
                if name == value_name:
                    raise AnalysisError(
                        f"measure() must not reuse the sweep column name {value_name!r}"
                    )
                columns[name] = []
        elif tuple(row.keys()) != expected:
            raise AnalysisError(
                f"measure() changed columns at point {point!r}: "
                f"expected {expected}, got {tuple(row.keys())}"
            )
        columns[value_name].append(point)
        for name in expected:
            columns[name].append(row[name])
    return columns

"""Confidence intervals for simulation estimates.

Normal-approximation intervals for quick reporting plus a
seed-reproducible bootstrap for the small-sample / skewed cases (max
statistics are right-skewed, so the benches use the bootstrap).
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from ..exceptions import AnalysisError
from ..rng import as_generator

__all__ = ["mean_confidence_interval", "bootstrap_ci"]

# Two-sided standard-normal quantiles for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean_confidence_interval(
    samples: np.ndarray, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Normal-approximation CI for the mean: ``(mean, lo, hi)``.

    A single sample returns a degenerate interval at the point estimate.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AnalysisError("need a non-empty 1-D sample vector")
    if confidence not in _Z:
        raise AnalysisError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        )
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, mean, mean
    half = _Z[confidence] * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, mean - half, mean + half


def bootstrap_ci(
    samples: np.ndarray,
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Union[None, int, np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """Percentile bootstrap CI for any statistic: ``(point, lo, hi)``.

    Parameters
    ----------
    samples:
        1-D observations.
    statistic:
        Vector -> scalar callable (default: the mean; ``np.max`` matches
        the paper's worst-case-over-trials reporting).
    confidence:
        Two-sided coverage in (0, 1).
    resamples:
        Bootstrap replicates.
    rng:
        Seed/generator for reproducible intervals.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AnalysisError("need a non-empty 1-D sample vector")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise AnalysisError(f"resamples must be positive, got {resamples}")
    gen = as_generator(rng, "bootstrap")
    point = float(statistic(arr))
    if arr.size == 1:
        return point, point, point
    idx = gen.integers(0, arr.size, size=(resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)

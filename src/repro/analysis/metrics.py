"""Load-distribution metrics beyond the paper's max-load headline.

The paper reports the (normalized) maximum load; operators usually also
track fairness and percentile spread, so the examples and ablation
benches report those too.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..exceptions import AnalysisError
from ..types import LoadVector

__all__ = [
    "jain_fairness",
    "gini_coefficient",
    "load_percentiles",
    "normalized_loads",
]


def _as_loads(loads) -> np.ndarray:
    if isinstance(loads, LoadVector):
        arr = loads.loads
    else:
        arr = np.asarray(loads, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AnalysisError("loads must be a non-empty 1-D vector")
    if np.any(arr < 0):
        raise AnalysisError("loads must be non-negative")
    return arr


def jain_fairness(loads) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even; ``1/n`` means all load on one node.
    Returns 1.0 for an all-zero vector (vacuously fair).
    """
    arr = _as_loads(loads)
    total_sq = float(arr.sum()) ** 2
    denom = arr.size * float((arr**2).sum())
    if denom == 0:
        return 1.0
    return total_sq / denom


def gini_coefficient(loads) -> float:
    """Gini coefficient of the load distribution (0 = even, ->1 = skewed)."""
    arr = np.sort(_as_loads(loads))
    total = float(arr.sum())
    if total == 0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * arr).sum()) / (n * total) - (n + 1) / n)


def load_percentiles(
    loads, percentiles: Sequence[float] = (50, 90, 95, 99, 100)
) -> Dict[float, float]:
    """Named percentiles of the per-node load distribution."""
    arr = _as_loads(loads)
    return {float(p): float(np.percentile(arr, p)) for p in percentiles}


def normalized_loads(loads: LoadVector) -> np.ndarray:
    """Each node's load divided by the even split ``R/n``.

    The vector whose maximum is the attack gain.
    """
    if not isinstance(loads, LoadVector):
        raise AnalysisError("normalized_loads needs a LoadVector (it carries R)")
    if loads.total_rate == 0:
        return np.zeros_like(loads.loads)
    return loads.loads / loads.even_split

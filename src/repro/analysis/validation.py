"""Statistical validation of the randomization assumptions.

The security argument rests on two statistical properties that are easy
to break silently in an implementation (a biased hash, a lazy ring):

1. each partitioner assigns first replicas ~uniformly across nodes;
2. the adversary, lacking the secret, cannot distinguish the observable
   behaviour from uniform.

These helpers run classical goodness-of-fit tests over the substrate so
the test suite can *prove* the assumptions hold for every partitioner
and sampler in the repository, not just assert them in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..cluster.partitioner import Partitioner
from ..exceptions import AnalysisError
from ..workload.distributions import KeyDistribution

__all__ = [
    "GoodnessOfFit",
    "chi_square_uniform",
    "partitioner_uniformity",
    "sampler_fidelity",
]


@dataclass(frozen=True)
class GoodnessOfFit:
    """Result of a goodness-of-fit test."""

    statistic: float
    p_value: float
    dof: int
    samples: int

    def passes(self, alpha: float = 0.001) -> bool:
        """True when the uniformity hypothesis is *not* rejected.

        ``alpha`` is deliberately small: these run inside a test suite
        where a 1-in-20 false alarm rate (the usual 0.05) would flake.
        """
        return self.p_value >= alpha

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"chi2={self.statistic:.1f} (dof {self.dof}, n={self.samples}): "
            f"p={self.p_value:.4f}"
        )


def chi_square_uniform(counts: Sequence[int]) -> GoodnessOfFit:
    """Chi-square test of ``counts`` against the uniform distribution."""
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size < 2:
        raise AnalysisError("need at least two categories")
    total = counts.sum()
    if total <= 0:
        raise AnalysisError("need at least one observation")
    expected = total / counts.size
    if expected < 5:
        raise AnalysisError(
            f"chi-square needs >= 5 expected observations per category, got {expected:.1f}"
        )
    statistic, p_value = stats.chisquare(counts)
    return GoodnessOfFit(
        statistic=float(statistic),
        p_value=float(p_value),
        dof=int(counts.size - 1),
        samples=int(total),
    )


def partitioner_uniformity(
    partitioner: Partitioner, keys: Sequence[int], replica: int = 0
) -> GoodnessOfFit:
    """Test that the given replica slot is uniform over nodes.

    ``replica=0`` checks primary placement; each slot should be uniform
    individually under honest randomized partitioning.
    """
    if not 0 <= replica < partitioner.d:
        raise AnalysisError(
            f"replica must be in [0, d={partitioner.d}), got {replica}"
        )
    groups = partitioner.replica_groups(np.asarray(keys, dtype=np.int64))
    counts = np.bincount(groups[:, replica], minlength=partitioner.n)
    return chi_square_uniform(counts)


def sampler_fidelity(
    distribution: KeyDistribution,
    samples: int = 50_000,
    seed: int = 0,
    min_expected: float = 5.0,
) -> GoodnessOfFit:
    """Test that :meth:`~KeyDistribution.sample` matches
    :meth:`~KeyDistribution.probabilities`.

    Low-probability keys are pooled into one bucket so every chi-square
    cell meets the ``min_expected`` rule.
    """
    if samples < 1:
        raise AnalysisError(f"samples must be positive, got {samples}")
    probs = distribution.probabilities()
    keys = distribution.sample(samples, rng=seed)
    counts = np.bincount(keys, minlength=distribution.m).astype(float)
    expected = probs * samples

    big = expected >= min_expected
    if big.sum() < 1:
        raise AnalysisError("distribution too flat/small for this sample size")
    pooled_counts = list(counts[big])
    pooled_expected = list(expected[big])
    tail_expected = float(expected[~big].sum())
    if tail_expected > 0:
        pooled_counts.append(float(counts[~big].sum()))
        pooled_expected.append(tail_expected)
    pooled_counts = np.asarray(pooled_counts)
    pooled_expected = np.asarray(pooled_expected)
    # chisquare requires matching totals; renormalise the expectation.
    pooled_expected *= pooled_counts.sum() / pooled_expected.sum()
    statistic, p_value = stats.chisquare(pooled_counts, pooled_expected)
    return GoodnessOfFit(
        statistic=float(statistic),
        p_value=float(p_value),
        dof=int(pooled_counts.size - 1),
        samples=samples,
    )

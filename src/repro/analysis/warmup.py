"""Cache warmup dynamics: the attack window after a cold start.

The paper's perfect cache is always warm; a real front end that just
restarted (or got flushed) serves *nothing* until its policy re-learns
the popular set — and during that window the back end faces the raw
workload, i.e. exactly the situation the cache was provisioned to
prevent.  This module measures the window:

- :func:`warmup_curve` — hit rate per window of a replayed stream;
- :func:`queries_to_warm` — how many queries until the policy reaches a
  target fraction of its own steady-state hit rate;
- :func:`attack_window` — converts that to seconds at a given rate,
  which is the operational number ("after a front-end restart we are
  exposed for N seconds; stagger restarts accordingly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..cache.base import Cache
from ..exceptions import AnalysisError

__all__ = ["WarmupReport", "warmup_curve", "queries_to_warm", "attack_window"]


def warmup_curve(
    cache: Cache, keys: Sequence[int], window: int = 1000
) -> np.ndarray:
    """Replay ``keys`` through a cold ``cache``; return per-window hit rates.

    The cache is mutated (that is the measurement).  The last partial
    window is dropped — its rate would be noisier than the rest.
    """
    if window < 1:
        raise AnalysisError(f"window must be positive, got {window}")
    keys = list(keys)
    if len(keys) < window:
        raise AnalysisError(
            f"need at least one full window ({window} queries), got {len(keys)}"
        )
    rates: List[float] = []
    hits = 0
    seen = 0
    for key in keys:
        hits += cache.access(int(key))
        seen += 1
        if seen == window:
            rates.append(hits / window)
            hits = 0
            seen = 0
    return np.asarray(rates)


@dataclass(frozen=True)
class WarmupReport:
    """Outcome of a warmup measurement."""

    queries_to_warm: Optional[int]
    steady_hit_rate: float
    target_fraction: float
    curve: np.ndarray
    window: int

    @property
    def warmed(self) -> bool:
        """Whether the target was reached within the replayed stream."""
        return self.queries_to_warm is not None

    def seconds_at(self, rate: float) -> Optional[float]:
        """The attack window in seconds at offered rate ``rate``."""
        if rate <= 0:
            raise AnalysisError(f"rate must be positive, got {rate}")
        if self.queries_to_warm is None:
            return None
        return self.queries_to_warm / rate


def queries_to_warm(
    cache: Cache,
    keys: Sequence[int],
    target_fraction: float = 0.9,
    window: int = 1000,
) -> WarmupReport:
    """Queries until the hit rate reaches ``target_fraction`` of steady state.

    Steady state is estimated from the final quarter of the replayed
    stream, so the stream must be long enough to actually converge
    (a few multiples of the cache size).
    """
    if not 0.0 < target_fraction <= 1.0:
        raise AnalysisError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    curve = warmup_curve(cache, keys, window=window)
    if curve.size < 4:
        raise AnalysisError(
            "stream too short to estimate steady state; use more queries "
            "or a smaller window"
        )
    steady = float(curve[-max(1, curve.size // 4):].mean())
    threshold = target_fraction * steady
    warmed_at: Optional[int] = None
    for i, rate in enumerate(curve):
        if rate >= threshold and steady > 0:
            warmed_at = (i + 1) * window
            break
    return WarmupReport(
        queries_to_warm=warmed_at,
        steady_hit_rate=steady,
        target_fraction=target_fraction,
        curve=curve,
        window=window,
    )


def attack_window(
    cache: Cache,
    keys: Sequence[int],
    rate: float,
    target_fraction: float = 0.9,
    window: int = 1000,
) -> Optional[float]:
    """Seconds of post-restart exposure at offered rate ``rate``.

    Convenience wrapper over :func:`queries_to_warm`; returns ``None``
    when the policy never warms within the replayed stream (itself an
    important finding — e.g. LRU under a cyclic scan).
    """
    report = queries_to_warm(
        cache, keys, target_fraction=target_fraction, window=window
    )
    return report.seconds_at(rate)

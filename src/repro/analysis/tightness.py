"""Bound-vs-simulation tightness (the "small gap" claim of Figure 3).

The paper notes its Eq. (10) bound "has a small gap between numerical
results".  Given paired series — the simulated normalized max load and
the analytic bound at the same sweep points — this module quantifies
that gap: violations (simulation above bound), worst and mean slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["TightnessReport", "bound_tightness"]


@dataclass(frozen=True)
class TightnessReport:
    """Gap statistics between a bound series and a measured series.

    Attributes
    ----------
    points:
        Number of sweep points compared.
    violations:
        Points where the measurement exceeded the bound (should be 0 for
        a valid bound, modulo Monte-Carlo noise).
    max_violation:
        Largest measured-minus-bound excess (0 when no violations).
    mean_slack, max_slack:
        Average and worst bound-minus-measured slack over
        non-violating points — smaller means tighter.
    relative_mean_slack:
        ``mean_slack`` divided by the mean measured value.
    """

    points: int
    violations: int
    max_violation: float
    mean_slack: float
    max_slack: float
    relative_mean_slack: float

    @property
    def valid(self) -> bool:
        """True when the bound held at every sweep point."""
        return self.violations == 0

    def describe(self) -> str:
        """Human-readable summary line."""
        status = "holds" if self.valid else f"VIOLATED at {self.violations} point(s)"
        return (
            f"bound {status} over {self.points} points; "
            f"mean slack {self.mean_slack:.3f} "
            f"({100 * self.relative_mean_slack:.1f}% of measurement), "
            f"max slack {self.max_slack:.3f}"
        )


def bound_tightness(
    measured: Sequence[float], bound: Sequence[float]
) -> TightnessReport:
    """Compare a measured series against its analytic bound pointwise."""
    meas = np.asarray(measured, dtype=float)
    bnd = np.asarray(bound, dtype=float)
    if meas.shape != bnd.shape or meas.ndim != 1 or meas.size == 0:
        raise AnalysisError("measured and bound must be equal-length 1-D series")
    diff = bnd - meas
    violating = diff < 0
    slack = diff[~violating]
    mean_meas = float(meas.mean())
    return TightnessReport(
        points=int(meas.size),
        violations=int(violating.sum()),
        max_violation=float(-diff[violating].min()) if violating.any() else 0.0,
        mean_slack=float(slack.mean()) if slack.size else 0.0,
        max_slack=float(slack.max()) if slack.size else 0.0,
        relative_mean_slack=(float(slack.mean()) / mean_meas) if slack.size and mean_meas > 0 else 0.0,
    )

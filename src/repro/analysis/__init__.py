"""Measurement and statistics over simulation outcomes."""

from .metrics import (
    gini_coefficient,
    jain_fairness,
    load_percentiles,
    normalized_loads,
)
from .stats import bootstrap_ci, mean_confidence_interval
from .critical_point import CriticalPointResult, find_critical_cache_size
from .tightness import TightnessReport, bound_tightness
from .sweep import sweep
from .warmup import WarmupReport, attack_window, queries_to_warm, warmup_curve
from .validation import (
    GoodnessOfFit,
    chi_square_uniform,
    partitioner_uniformity,
    sampler_fidelity,
)
from .detection import TrafficProfile, profile_counts, profile_keys

__all__ = [
    "WarmupReport",
    "warmup_curve",
    "queries_to_warm",
    "attack_window",
    "GoodnessOfFit",
    "chi_square_uniform",
    "partitioner_uniformity",
    "sampler_fidelity",
    "TrafficProfile",
    "profile_counts",
    "profile_keys",
    "jain_fairness",
    "gini_coefficient",
    "load_percentiles",
    "normalized_loads",
    "mean_confidence_interval",
    "bootstrap_ci",
    "CriticalPointResult",
    "find_critical_cache_size",
    "TightnessReport",
    "bound_tightness",
    "sweep",
]

"""Defender-side traffic characterisation: is this a DDoS or a crowd?

The paper's defense needs no detection — the provisioned cache defuses
every pattern.  But operators still want to *know* they are under
attack (for upstream filtering, for capacity decisions), and the
adversarial pattern has a statistical fingerprint: Theorem 1 drives the
attacker toward a **uniform prefix** — maximally flat over many keys —
while benign traffic is skewed (Zipf-like heads) and flash crowds are
extreme point concentrations.

The signal used here is *normalised entropy* of the observed key
frequencies, ``H / log(distinct keys)``:

- flash crowd: few keys, entropy near 0 relative to the key count;
- benign skew: broad support, mid-range normalised entropy;
- Theorem-1 attack: broad support, normalised entropy near 1 (uniform).

A flatness score this simple obviously isn't a production IDS; it is
the honest quantitative version of "the optimal attack is conspicuously
flat", and the tests show it separates the three regimes cleanly at the
paper's scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..exceptions import AnalysisError

__all__ = ["TrafficProfile", "profile_counts", "profile_keys"]

#: Above this normalised entropy (with non-trivial support) traffic is
#: flagged as uniform-flood-like.
FLATNESS_THRESHOLD = 0.95

#: Below this normalised entropy traffic is a concentration (hot-spot /
#: flash-crowd) pattern.
CONCENTRATION_THRESHOLD = 0.5


@dataclass(frozen=True)
class TrafficProfile:
    """Statistical fingerprint of an observed key-frequency vector."""

    total_queries: int
    distinct_keys: int
    normalized_entropy: float
    top_key_share: float
    head_share_1pct: float

    @property
    def verdict(self) -> str:
        """Coarse classification: ``"uniform-flood"``, ``"concentrated"``
        or ``"skewed-benign"``."""
        if self.distinct_keys <= 1:
            return "concentrated"
        if self.normalized_entropy >= FLATNESS_THRESHOLD:
            return "uniform-flood"
        if self.normalized_entropy <= CONCENTRATION_THRESHOLD:
            return "concentrated"
        return "skewed-benign"

    @property
    def flood_like(self) -> bool:
        """True for the Theorem-1 fingerprint (flat over many keys)."""
        return self.verdict == "uniform-flood" and self.distinct_keys > 10

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.total_queries} queries over {self.distinct_keys} keys; "
            f"normalized entropy {self.normalized_entropy:.3f}, "
            f"top key {100 * self.top_key_share:.1f}% -> {self.verdict}"
        )


def profile_counts(counts: Sequence[int]) -> TrafficProfile:
    """Profile a per-key count vector (zeros allowed, they are ignored)."""
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size == 0:
        raise AnalysisError("counts must be a non-empty 1-D vector")
    if np.any(counts < 0):
        raise AnalysisError("counts must be non-negative")
    positive = counts[counts > 0]
    total = float(positive.sum())
    if total == 0:
        raise AnalysisError("need at least one observed query")
    distinct = int(positive.size)
    probs = positive / total
    entropy = float(-(probs * np.log(probs)).sum())
    max_entropy = math.log(distinct) if distinct > 1 else 1.0
    normalized = entropy / max_entropy if distinct > 1 else 0.0
    sorted_desc = np.sort(positive)[::-1]
    head = max(1, distinct // 100)
    return TrafficProfile(
        total_queries=int(round(total)),
        distinct_keys=distinct,
        normalized_entropy=normalized,
        top_key_share=float(sorted_desc[0] / total),
        head_share_1pct=float(sorted_desc[:head].sum() / total),
    )


def profile_keys(keys: Sequence[int], m: Union[int, None] = None) -> TrafficProfile:
    """Profile a raw key stream (what a front end actually observes)."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1 or keys.size == 0:
        raise AnalysisError("keys must be a non-empty 1-D sequence")
    length = int(keys.max()) + 1 if m is None else m
    counts = np.bincount(keys, minlength=length)
    return profile_counts(counts)

"""Declarative scenarios: specs, the component registry, campaigns.

The seven scenario dimensions (workload × cache × partitioner ×
selection × adversary × chaos × engine) compose through one typed,
versioned spec instead of threaded kwargs::

    from repro.scenario import load_spec, run_scenario
    outcome = run_scenario(load_spec("paper-default.yaml"))

- :mod:`~repro.scenario.registry` — component namespaces +
  self-registration decorators (a leaf module; component packages
  import it, never the reverse);
- :mod:`~repro.scenario.spec` — :class:`ScenarioSpec` /
  :class:`CampaignSpec` models with YAML/JSON round-trip and
  path-reporting validation;
- :mod:`~repro.scenario.build` — per-namespace construction
  conventions turning specs into live objects;
- :mod:`~repro.scenario.engines` — the registered execution engines;
- :mod:`~repro.scenario.campaign` — sweep expansion + execution with a
  schema-versioned manifest (:mod:`~repro.scenario.manifest`) and a
  comparative HTML report (:mod:`~repro.scenario.report`).

This ``__init__`` resolves its exports lazily (PEP 562) so component
modules can import ``repro.scenario.registry`` at class-definition time
without dragging the whole scenario stack — or a circular import —
into every ``import repro``.
"""

from __future__ import annotations

_EXPORTS = {
    "NAMESPACES": "registry",
    "REGISTRY": "registry",
    "ComponentRegistry": "registry",
    "RegistryEntry": "registry",
    "register_component": "registry",
    "discover": "registry",
    "SPEC_VERSION": "spec",
    "ComponentSpec": "spec",
    "ScenarioSpec": "spec",
    "CampaignSpec": "spec",
    "load_spec": "spec",
    "loads_spec": "spec",
    "dump_spec": "spec",
    "dumps_spec": "spec",
    "BuildContext": "build",
    "build_component": "build",
    "build_distribution": "build",
    "check_spec": "build",
    "ScenarioOutcome": "campaign",
    "CampaignResult": "campaign",
    "run_scenario": "campaign",
    "run_campaign": "campaign",
    "SCENARIO_SCHEMA_VERSION": "manifest",
    "campaign_manifest": "manifest",
    "validate_campaign_manifest": "manifest",
    "deterministic_view": "manifest",
    "render_campaign_html": "report",
    "write_campaign_html": "report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.scenario' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

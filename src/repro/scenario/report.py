"""Comparative HTML report for campaign runs.

One standalone page per campaign: the sweep grid, a scenario-by-stat
comparison table, and a sparkline of worst-case normalized load across
the grid — built from the same helpers the observability dashboard uses
(:func:`repro.obs.dashboard.html_table` and friends), so campaign
reports and monitor dashboards share one look and zero assets.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Union

from ..obs.dashboard import fmt, html_page, html_table, svg_sparkline
from .manifest import validate_campaign_manifest

__all__ = ["render_campaign_html", "write_campaign_html"]

#: Stats rendered as columns when present, in display order.
_STAT_COLUMNS = (
    "engine",
    "trials",
    "worst_case",
    "mean",
    "p99",
    "std",
    "mean_hit_rate",
    "mean_drop_rate",
    "worst_drop_rate",
    "worst_p99_latency",
    "failure_events",
    "unavailable",
)


def render_campaign_html(manifest: dict) -> str:
    """Render one validated campaign manifest as a standalone page."""
    validate_campaign_manifest(manifest)
    scenarios = manifest["scenarios"]
    columns_present = [
        c
        for c in _STAT_COLUMNS
        if any(c in s["stats"] for s in scenarios)
    ]
    rows = []
    for scenario in scenarios:
        row = {"scenario": scenario["name"]}
        row.update(
            {c: scenario["stats"].get(c) for c in columns_present}
        )
        rows.append(row)

    parts: List[str] = []
    shape = manifest["grid_shape"]
    grid = " × ".join(str(k) for k in shape) if shape else "1 (no sweep)"
    provenance = [
        f"campaign <b>{html.escape(manifest['campaign'])}</b>",
        f"grid {html.escape(grid)}",
        f"{len(scenarios)} scenario(s)",
        f"workers {fmt(manifest['workers'])}",
    ]
    sha = manifest.get("git_sha")
    if sha:
        provenance.append(f"git {html.escape(str(sha)[:12])}")
    parts.append("<p class=\"kv\">" + " · ".join(provenance) + "</p>")

    worst = [
        s["stats"].get("worst_case")
        for s in scenarios
        if isinstance(s["stats"].get("worst_case"), (int, float))
    ]
    if len(worst) > 1:
        parts.append("<h2>worst-case normalized load across the grid</h2>")
        parts.append(svg_sparkline([float(v) for v in worst]))

    parts.append("<h2>scenario comparison</h2>")
    parts.append(html_table(rows, ["scenario"] + columns_present))

    base = manifest["spec"].get("base", {})
    if base:
        base_rows = [
            {"field": key, "value": _flat(value)}
            for key, value in sorted(base.items())
        ]
        parts.append("<h2>base scenario</h2>")
        parts.append(html_table(base_rows, ["field", "value"]))
    sweep = manifest["spec"].get("sweep", {})
    if sweep:
        sweep_rows = [
            {"path": path, "values": _flat(values)}
            for path, values in sorted(sweep.items())
        ]
        parts.append("<h2>sweep grid</h2>")
        parts.append(html_table(sweep_rows, ["path", "values"]))

    return html_page(f"Campaign: {manifest['campaign']}", parts)


def _flat(value) -> str:
    """One-cell rendering of a nested spec fragment."""
    if isinstance(value, dict):
        return ", ".join(f"{k}={_flat(v)}" for k, v in value.items())
    if isinstance(value, list):
        return "[" + ", ".join(_flat(v) for v in value) + "]"
    return fmt(value)


def write_campaign_html(manifest: dict, path: Union[str, Path]) -> Path:
    """Write :func:`render_campaign_html` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_campaign_html(manifest), encoding="utf-8")
    return path

"""Turn component specs into live objects.

Each registry namespace has one construction convention: the context
fields its factories conventionally need (``m`` for workloads,
``capacity = c`` for caches, ``n``/``d`` for partitioners, the public
:class:`~repro.core.notation.SystemParameters` for adversaries) are
injected automatically when — and only when — the factory's signature
accepts them and the spec did not supply them explicitly.  Components
whose wiring is genuinely irregular (mixtures of nested workloads, the
admission filter wrapping an inner cache, the adaptive adversary's
feedback loop) register a ``builder`` override next to their class
instead of bending the convention.

Every construction failure — wrong param name, out-of-domain value —
is re-raised as a :class:`~repro.exceptions.ScenarioValidationError`
carrying the spec path of the offending component, so a bad
``cache: {kind: lru, capcity: 10}`` points at ``cache``, not at a
``TypeError`` inside the cache package.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional

from ..core.notation import SystemParameters
from ..exceptions import ReproError, ScenarioValidationError
from .registry import REGISTRY, RegistryEntry, discover
from .spec import ComponentSpec

__all__ = [
    "BuildContext",
    "build_component",
    "build_distribution",
    "check_spec",
]


@dataclass(frozen=True)
class BuildContext:
    """What the construction conventions may inject.

    Picklable on purpose: the event engine ships cache factories built
    from a context into worker processes.
    """

    params: SystemParameters
    seed: int = 0


def _accepted(factory, injected: dict, given: dict) -> dict:
    """The subset of ``injected`` the factory accepts and ``given`` omits."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return {}
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )
    out = {}
    for name, value in injected.items():
        if name in given:
            continue
        if name in signature.parameters or accepts_kwargs:
            out[name] = value
    return out


#: Context kwargs conventionally offered per namespace (filtered down to
#: what each factory's signature actually accepts).
def _injected(namespace: str, ctx: BuildContext) -> dict:
    params = ctx.params
    if namespace == "workload":
        return {"m": params.m}
    if namespace == "cache":
        return {"capacity": params.c}
    if namespace == "partitioner":
        return {"n": params.n, "d": params.d, "m": params.m, "seed": ctx.seed}
    if namespace == "adversary":
        return {"public": params}
    return {}


def build_component(
    namespace: str,
    spec: ComponentSpec,
    ctx: BuildContext,
    path: str = "",
) -> object:
    """Construct one component from its spec under ``ctx``."""
    where = path or namespace
    discover()
    entry: RegistryEntry = REGISTRY.get(namespace, spec.kind, path=where)
    params = dict(spec.params)
    try:
        if entry.builder is not None:
            return entry.builder(ctx, **params)
        kwargs = dict(params)
        kwargs.update(_accepted(entry.factory, _injected(namespace, ctx), params))
        return entry.factory(**kwargs)
    except ScenarioValidationError as exc:
        if exc.path:
            raise
        raise ScenarioValidationError(f"{where}: {exc}", path=where) from exc
    except (ReproError, TypeError, ValueError) as exc:
        raise ScenarioValidationError(
            f"{where}: cannot build {namespace} {spec.kind!r} "
            f"with params {params!r}: {exc}",
            path=where,
        ) from exc


def check_spec(spec) -> None:
    """Resolve every component kind through the registry without building.

    Static validation for ``repro scenario validate``: catches unknown
    kinds (with the candidate list) before anything is constructed.
    Accepts a :class:`~repro.scenario.spec.ScenarioSpec` or a
    :class:`~repro.scenario.spec.CampaignSpec` (every expanded scenario
    is checked, so sweep overrides cannot smuggle in unknown kinds).
    """
    discover()
    scenarios = spec.expand() if hasattr(spec, "expand") else (spec,)
    for scenario in scenarios:
        for section, component in scenario.components().items():
            if component is not None:
                REGISTRY.get(section, component.kind, path=f"{section}.kind")


def build_distribution(
    workload: Optional[ComponentSpec],
    adversary: Optional[ComponentSpec],
    ctx: BuildContext,
):
    """The query distribution of a scenario (workload- or adversary-side).

    Adversary components either expose ``distribution()`` (strategy
    classes) or ``aggregate()`` (botnet coordinators); both yield the
    :class:`~repro.workload.distributions.KeyDistribution` the engines
    consume.
    """
    if workload is not None:
        return build_component("workload", workload, ctx, path="workload")
    source = build_component("adversary", adversary, ctx, path="adversary")
    if hasattr(source, "distribution"):
        return source.distribution()
    return source.aggregate()

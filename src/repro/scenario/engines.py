"""The execution engines, as registry entries.

An engine is a function ``run(spec, ctx, workers, **engine_params)``
returning ``(stats, result)``: ``stats`` is a plain-data (JSON-safe,
NaN-free) summary that lands in campaign manifests and golden fixtures,
``result`` the engine's native aggregate (a
:class:`~repro.types.LoadReport` or
:class:`~repro.sim.batch.EventCampaign`) for callers that want more
than the summary.  A spec with a ``trace:`` section makes the
event-driven engine return a third element — the merged
:class:`~repro.obs.trace.FlightRecorder` — which
:func:`~repro.scenario.campaign.run_scenario` surfaces as
``ScenarioOutcome.trace``.  Both engines execute their trials through
:class:`repro.sim.parallel.ParallelExecutor` and are bit-identical
across worker counts given the spec's explicit seed.

- ``monte-carlo`` is the paper's methodology (Section IV): the perfect
  front-end cache and random replica groups are part of the *model*, so
  specs selecting it must keep ``cache: perfect`` and ``partitioner:
  random-table`` (the engine validates this instead of silently
  ignoring the spec);
- ``event-driven`` replays a queued request stream, so every cache
  policy, partitioner and parameterised selection rule applies.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Optional, Tuple

from ..core.notation import SystemParameters
from ..exceptions import ReproError, ScenarioValidationError
from .build import BuildContext, build_component, build_distribution
from .registry import register_component
from .spec import ComponentSpec, ScenarioSpec

__all__ = ["run_monte_carlo", "run_event_driven"]


def _nan_safe(value: float) -> Optional[float]:
    """Manifests serialise with ``allow_nan=False``; map NaN to None."""
    value = float(value)
    return None if math.isnan(value) else value


def _build_chaos(spec: ScenarioSpec, ctx: BuildContext):
    if spec.chaos is None:
        return None
    return build_component("chaos", spec.chaos, ctx, path="chaos")


def _build_trace(spec: ScenarioSpec, ctx: BuildContext):
    """The spec's ``trace:`` section as an enabled flight recorder.

    The section resolves through the ``sampler`` namespace (its builder
    returns a :class:`~repro.obs.trace.TraceConfig`); the recorder is
    seeded with the spec seed so per-trial hash samplers are
    reproducible across engines and worker counts.
    """
    if spec.trace is None:
        return None
    from ..obs.trace import FlightRecorder

    config = build_component("sampler", spec.trace, ctx, path="trace")
    return FlightRecorder(config, seed=spec.seed)


def _require_model_component(
    spec: ComponentSpec, expected: str, path: str
) -> None:
    """Reject spec sections the Monte-Carlo model cannot honour."""
    if spec.kind != expected or spec.params:
        raise ScenarioValidationError(
            f"{path}: the monte-carlo engine models "
            f"'{expected}' (no params) analytically; got kind "
            f"{spec.kind!r} with params {dict(spec.params)!r} — use "
            f"'engine: event-driven' for real component sweeps",
            path=path,
        )


@register_component("engine", "monte-carlo")
def run_monte_carlo(
    spec: ScenarioSpec,
    ctx: BuildContext,
    workers: int,
    exact_rates: bool = True,
) -> Tuple[dict, object]:
    """The paper's placement simulator over the spec's distribution."""
    from ..sim.analytic import MonteCarloSimulator
    from ..sim.config import SimulationConfig

    _require_model_component(spec.cache, "perfect", "cache")
    _require_model_component(spec.partitioner, "random-table", "partitioner")
    if spec.trace is not None:
        raise ScenarioValidationError(
            "trace: the monte-carlo engine has no per-request stream to "
            "trace; request tracing needs 'engine: event-driven'",
            path="trace",
        )
    if spec.selection.params:
        raise ScenarioValidationError(
            "selection: the monte-carlo engine resolves selection by name "
            f"only; params {dict(spec.selection.params)!r} need "
            "'engine: event-driven'",
            path="selection",
        )
    distribution = build_distribution(spec.workload, spec.adversary, ctx)
    try:
        config = SimulationConfig(
            params=spec.system,
            trials=spec.trials,
            seed=spec.seed,
            selection=spec.selection.kind,
            exact_rates=exact_rates,
            queries_per_trial=spec.queries,
            workers=workers,
            chaos=_build_chaos(spec, ctx),
        )
        report = MonteCarloSimulator(config).distribution_attack(distribution)
    except ScenarioValidationError:
        raise
    except ReproError as exc:
        raise ScenarioValidationError(f"engine: {exc}", path="engine") from exc
    stats = {
        "engine": "monte-carlo",
        "trials": report.trials,
        "worst_case": _nan_safe(report.worst_case),
        "mean": _nan_safe(report.mean),
        "p99": _nan_safe(report.p99),
        "std": _nan_safe(report.std),
    }
    return stats, report


def _spec_cache(cache_spec: ComponentSpec, ctx: BuildContext):
    """Fresh cache per trial (module-level so process pools pickle it)."""
    return build_component("cache", cache_spec, ctx, path="cache")


@register_component("engine", "event-driven")
def run_event_driven(
    spec: ScenarioSpec,
    ctx: BuildContext,
    workers: int,
    routing: str = "pin",
    kernel: str = "fast",
    queue_limit: int = 64,
    service: str = "deterministic",
) -> Tuple[dict, object]:
    """The queueing engine: every component dimension applies."""
    from ..cluster.cluster import Cluster
    from ..sim.batch import run_event_campaign

    params: SystemParameters = spec.system
    distribution = build_distribution(spec.workload, spec.adversary, ctx)
    partitioner = build_component(
        "partitioner", spec.partitioner, ctx, path="partitioner"
    )
    selection = build_component(
        "selection", spec.selection, ctx, path="selection"
    )
    recorder = _build_trace(spec, ctx)
    try:
        cluster = Cluster(
            params.n,
            params.d,
            partitioner=partitioner,
            selection=selection,
            node_capacity=params.node_capacity,
        )
        campaign = run_event_campaign(
            params,
            distribution,
            trials=spec.trials,
            n_queries=spec.queries,
            seed=spec.seed,
            cache_factory=partial(_spec_cache, spec.cache, ctx),
            workers=workers,
            cluster=cluster,
            routing=routing,
            queue_limit=queue_limit,
            service=service,
            chaos=_build_chaos(spec, ctx),
            trace=recorder,
            engine=kernel,
        )
    except ScenarioValidationError:
        raise
    except ReproError as exc:
        raise ScenarioValidationError(f"engine: {exc}", path="engine") from exc
    stats = {
        "engine": "event-driven",
        "trials": campaign.trials,
        "worst_case": _nan_safe(campaign.load_report.worst_case),
        "mean": _nan_safe(campaign.load_report.mean),
        "mean_hit_rate": _nan_safe(campaign.mean_hit_rate),
        "mean_drop_rate": _nan_safe(campaign.mean_drop_rate),
        "worst_drop_rate": _nan_safe(campaign.worst_drop_rate),
        "worst_p99_latency": _nan_safe(campaign.worst_p99_latency),
        "failure_events": campaign.total_failure_events,
        "unavailable": campaign.total_unavailable,
    }
    if recorder is not None:
        # Conditional block: trace-less specs keep their stats (and the
        # golden fixtures pinning them) byte-identical.
        stats["trace"] = {
            "seen": recorder.seen,
            "sampled": recorder.sampled,
            "evicted": recorder.evicted,
            "alerts": len(recorder.alerts),
            "suspects": recorder.suspects(),
        }
        return stats, campaign, recorder
    return stats, campaign

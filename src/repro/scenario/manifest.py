"""Schema-versioned provenance manifests for campaign runs.

Mirrors :mod:`repro.perf.schema`: every campaign execution produces one
manifest dict — what ran (the campaign spec and each expanded
scenario), what came out (the engines' plain-data stats), and where
(git SHA, host, timestamp) — validated by a hard-failing checker so
downstream tooling never grinds on records it does not understand.

Provenance fields are genuinely run-specific, so determinism tests and
the serial-vs-parallel identity gate compare :func:`deterministic_view`
instead: the manifest minus timestamp/git/host/workers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Union

from ..perf.schema import git_sha, host_info
from .spec import CampaignSpec, ScenarioSpec
from ..exceptions import ScenarioValidationError

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "campaign_manifest",
    "validate_campaign_manifest",
    "deterministic_view",
    "write_manifest",
]

#: Campaign manifest format version.  Bump on any incompatible change
#: and teach :func:`validate_campaign_manifest` about the migration.
SCENARIO_SCHEMA_VERSION = 1

_REQUIRED = {
    "schema": int,
    "campaign": str,
    "spec": dict,
    "grid_shape": list,
    "scenarios": list,
    "workers": int,
    "timestamp": (int, float),
    "host": dict,
}

_REQUIRED_SCENARIO = {
    "name": str,
    "spec": dict,
    "stats": dict,
}


def campaign_manifest(
    campaign: CampaignSpec,
    scenarios: List[ScenarioSpec],
    stats: List[dict],
    workers: int,
) -> dict:
    """Assemble the manifest for one executed campaign."""
    return {
        "schema": SCENARIO_SCHEMA_VERSION,
        "campaign": campaign.name,
        "spec": campaign.to_dict(),
        "grid_shape": list(campaign.grid_shape),
        "scenarios": [
            {"name": spec.name, "spec": spec.to_dict(), "stats": dict(s)}
            for spec, s in zip(scenarios, stats)
        ],
        "workers": workers,
        "timestamp": time.time(),
        "git_sha": git_sha(),
        "host": host_info(),
    }


def validate_campaign_manifest(record: object) -> dict:
    """Check a manifest dict against the schema; returns it on success.

    Raises :class:`~repro.exceptions.ScenarioValidationError` on any
    violation — unknown schema version, missing field, wrong type —
    exactly like :func:`repro.perf.schema.validate_manifest` does for
    bench manifests.
    """
    if not isinstance(record, dict):
        raise ScenarioValidationError(
            f"manifest: expected a dict, got {type(record).__name__}",
            path="manifest",
        )
    version = record.get("schema")
    if version != SCENARIO_SCHEMA_VERSION:
        raise ScenarioValidationError(
            f"manifest.schema: unsupported campaign manifest schema "
            f"{version!r} (this build reads schema "
            f"{SCENARIO_SCHEMA_VERSION})",
            path="manifest.schema",
        )
    for name, types in _REQUIRED.items():
        if name not in record:
            raise ScenarioValidationError(
                f"manifest.{name}: missing required field", path=f"manifest.{name}"
            )
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, types):
            expected = (
                " or ".join(t.__name__ for t in types)
                if isinstance(types, tuple)
                else types.__name__
            )
            raise ScenarioValidationError(
                f"manifest.{name}: must be {expected}, "
                f"got {type(value).__name__}",
                path=f"manifest.{name}",
            )
    for i, scenario in enumerate(record["scenarios"]):
        where = f"manifest.scenarios[{i}]"
        if not isinstance(scenario, dict):
            raise ScenarioValidationError(
                f"{where}: expected a dict, got {type(scenario).__name__}",
                path=where,
            )
        for name, types in _REQUIRED_SCENARIO.items():
            if not isinstance(scenario.get(name), types):
                raise ScenarioValidationError(
                    f"{where}.{name}: must be {types.__name__}, "
                    f"got {type(scenario.get(name)).__name__}",
                    path=f"{where}.{name}",
                )
    return record


def deterministic_view(record: dict) -> dict:
    """The manifest minus run-specific provenance.

    This is what the golden fixtures pin and what the serial-vs-parallel
    identity test compares byte-for-byte.
    """
    validate_campaign_manifest(record)
    view = {
        key: record[key]
        for key in ("schema", "campaign", "spec", "grid_shape", "scenarios")
    }
    return json.loads(json.dumps(view, sort_keys=True, allow_nan=False))


def write_manifest(record: dict, path: Union[str, Path]) -> Path:
    """Validate and write one manifest as pretty sorted JSON."""
    validate_campaign_manifest(record)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return path

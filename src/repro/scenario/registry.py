"""The component registry: every scenario dimension resolves by name.

Nine namespaces mirror the scenario dimensions::

    workload x cache x partitioner x selection x layer-selection
             x adversary x chaos x sampler x engine

Components self-register where they are defined via the
:func:`register_component` decorator, so a new cache policy (or
partitioner, adversary, ...) becomes spec-addressable the moment its
module is imported — and the registry contract test
(``tests/test_scenario_registry.py``) fails with a named diff when a
concrete subclass forgets the decorator.

This module is deliberately a *leaf*: it imports nothing from the
component packages (they import *it*), so decorating ``repro.cache.lru``
with ``@register_component("cache", "lru")`` cannot create an import
cycle.  :func:`discover` performs the reverse edge lazily, importing
every component package so all decorators have run before a spec is
resolved.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from ..exceptions import ScenarioValidationError

__all__ = [
    "NAMESPACES",
    "RegistryEntry",
    "ComponentRegistry",
    "REGISTRY",
    "register_component",
    "discover",
]

#: The scenario dimensions, in spec order.
NAMESPACES: Tuple[str, ...] = (
    "workload",
    "cache",
    "partitioner",
    "selection",
    "layer-selection",
    "adversary",
    "chaos",
    "sampler",
    "engine",
)

#: Modules imported by :func:`discover` so every self-registration
#: decorator has run.  New component packages append themselves here.
DISCOVER_MODULES: Tuple[str, ...] = (
    "repro.workload",
    "repro.cache",
    "repro.cluster",
    "repro.adversary",
    "repro.chaos",
    "repro.obs.trace",
    "repro.scenario.engines",
)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component.

    Attributes
    ----------
    namespace, name:
        Where and how the component resolves (``("cache", "lru")``).
    factory:
        The class (or callable) that produces the component.
    example:
        Minimal extra params that make the component constructible in a
        small scenario context — either a dict or a callable
        ``ctx -> dict`` — used by the registry contract test and
        ``repro scenario list --examples``.  ``None`` means the
        component needs no params beyond the injected context.
    builder:
        Optional override ``builder(ctx, **params) -> object`` replacing
        the namespace's default construction convention (see
        :mod:`repro.scenario.build`).
    """

    namespace: str
    name: str
    factory: Callable
    example: Optional[Union[dict, Callable]] = field(default=None, compare=False)
    builder: Optional[Callable] = field(default=None, compare=False)

    def example_params(self, ctx) -> dict:
        """Materialise the minimal example params for ``ctx``."""
        if self.example is None:
            return {}
        if callable(self.example):
            return dict(self.example(ctx))
        return dict(self.example)


class ComponentRegistry:
    """Name -> component resolution across the scenario namespaces."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, RegistryEntry]] = {
            ns: {} for ns in NAMESPACES
        }

    def register(
        self,
        namespace: str,
        name: str,
        factory: Callable,
        example: Optional[Union[dict, Callable]] = None,
        builder: Optional[Callable] = None,
    ) -> RegistryEntry:
        """Register ``factory`` under ``namespace``/``name``.

        Re-registering the *same* factory is a no-op (module reloads);
        a different factory under a taken name is an error.
        """
        self._check_namespace(namespace, path=namespace)
        if not name or not isinstance(name, str):
            raise ScenarioValidationError(
                f"{namespace}: component name must be a non-empty string, "
                f"got {name!r}",
                path=namespace,
            )
        existing = self._entries[namespace].get(name)
        if existing is not None and existing.factory is not factory:
            raise ScenarioValidationError(
                f"{namespace}.{name}: already registered to "
                f"{existing.factory!r}; refusing to rebind to {factory!r}",
                path=f"{namespace}.{name}",
            )
        entry = RegistryEntry(
            namespace=namespace,
            name=name,
            factory=factory,
            example=example,
            builder=builder,
        )
        self._entries[namespace][name] = entry
        return entry

    def get(self, namespace: str, name: str, path: str = "") -> RegistryEntry:
        """Resolve one component; unknown names fail with the choices."""
        self._check_namespace(namespace, path=path or namespace)
        try:
            return self._entries[namespace][name]
        except KeyError:
            where = path or f"{namespace}.kind"
            raise ScenarioValidationError(
                f"{where}: unknown {namespace} {name!r}; "
                f"choose from {sorted(self._entries[namespace])}",
                path=where,
            ) from None

    def names(self, namespace: str) -> Tuple[str, ...]:
        """Registered names in one namespace, sorted."""
        self._check_namespace(namespace, path=namespace)
        return tuple(sorted(self._entries[namespace]))

    def entries(self, namespace: str) -> Tuple[RegistryEntry, ...]:
        """Registered entries in one namespace, sorted by name."""
        return tuple(
            self._entries[namespace][name] for name in self.names(namespace)
        )

    def namespaces(self) -> Tuple[str, ...]:
        """All namespaces, in spec order."""
        return NAMESPACES

    def factories(self, namespace: str) -> Tuple[Callable, ...]:
        """The registered factories of one namespace (contract test)."""
        return tuple(entry.factory for entry in self.entries(namespace))

    def _check_namespace(self, namespace: str, path: str) -> None:
        if namespace not in self._entries:
            raise ScenarioValidationError(
                f"{path}: unknown namespace {namespace!r}; "
                f"choose from {list(NAMESPACES)}",
                path=path,
            )


#: The process-wide registry every decorator and spec resolver uses.
REGISTRY = ComponentRegistry()


def register_component(
    namespace: str,
    name: str,
    example: Optional[Union[dict, Callable]] = None,
    builder: Optional[Callable] = None,
):
    """Class decorator: make a component resolvable by ``name``.

    >>> @register_component("cache", "my-policy")     # doctest: +SKIP
    ... class MyPolicyCache(EvictingCache): ...
    """

    def decorate(factory: Callable) -> Callable:
        REGISTRY.register(
            namespace, name, factory, example=example, builder=builder
        )
        return factory

    return decorate


_discovered = False


def discover() -> ComponentRegistry:
    """Import every component package so all registrations have run."""
    global _discovered
    if not _discovered:
        for module in DISCOVER_MODULES:
            importlib.import_module(module)
        _discovered = True
    return REGISTRY

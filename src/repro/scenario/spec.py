"""Typed, versioned scenario and campaign specs.

A *scenario* is one fully-specified experiment: the system under test
plus one component choice per registry namespace (workload or adversary,
cache, partitioner, selection, chaos, trace, engine) and the campaign
knobs (trials, queries, seed, workers).  A *campaign* is a base scenario plus
a sweep grid — dotted paths mapped to value lists — that expands into
the cross product of concrete scenarios.

Both formats carry an explicit schema version (``scenario: 1`` /
``campaign: 1``) and hard-fail on drift, mirroring
:mod:`repro.perf.schema`.  Every validation error is a
:class:`~repro.exceptions.ScenarioValidationError` whose message starts
with the dotted path of the offending field, so a typo in a 40-line
YAML file points at ``sweep.cache.kind[2]``, not a stack trace.

Specs load from and dump to YAML and JSON.  PyYAML is an optional
dependency: JSON always works, and the YAML entry points raise a clear
error when the library is absent.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError, ScenarioValidationError

try:  # pragma: no cover - exercised both ways across environments
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None

__all__ = [
    "SPEC_VERSION",
    "ComponentSpec",
    "ScenarioSpec",
    "CampaignSpec",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "dumps_spec",
]

#: Spec format version, shared by scenario and campaign files.  Bump on
#: any incompatible change and teach the loaders about the migration.
SPEC_VERSION = 1

_SCENARIO_KEYS = frozenset(
    {
        "scenario",
        "name",
        "system",
        "workload",
        "adversary",
        "cache",
        "partitioner",
        "selection",
        "chaos",
        "trace",
        "engine",
        "trials",
        "queries",
        "seed",
        "workers",
    }
)

_SYSTEM_KEYS = frozenset({"n", "m", "c", "d", "rate", "node_capacity"})

_CAMPAIGN_KEYS = frozenset({"campaign", "name", "base", "sweep"})


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require_mapping(value: object, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScenarioValidationError(
            f"{path}: expected a mapping, got {type(value).__name__}",
            path=path,
        )
    return value


def _require_int(value: object, path: str, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioValidationError(
            f"{path}: expected an integer, got {value!r}", path=path
        )
    if minimum is not None and value < minimum:
        raise ScenarioValidationError(
            f"{path}: must be >= {minimum}, got {value}", path=path
        )
    return value


def _require_number(value: object, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioValidationError(
            f"{path}: expected a number, got {value!r}", path=path
        )
    return float(value)


def _require_str(value: object, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise ScenarioValidationError(
            f"{path}: expected a non-empty string, got {value!r}", path=path
        )
    return value


def _check_keys(data: Mapping, allowed: frozenset, path: str) -> None:
    for key in data:
        if not isinstance(key, str):
            raise ScenarioValidationError(
                f"{_join(path, str(key))}: keys must be strings, got {key!r}",
                path=_join(path, str(key)),
            )
        if key not in allowed:
            where = _join(path, key)
            raise ScenarioValidationError(
                f"{where}: unknown key {key!r}; "
                f"choose from {sorted(allowed)}",
                path=where,
            )


def _check_version(data: Mapping, key: str, path: str) -> None:
    version = data.get(key)
    if version != SPEC_VERSION:
        where = _join(path, key)
        raise ScenarioValidationError(
            f"{where}: unsupported {key} schema {version!r} "
            f"(this build reads {key} schema {SPEC_VERSION})",
            path=where,
        )


def _plain_params(value: object, path: str) -> object:
    """Recursively check a component param value is plain JSON-able data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [
            _plain_params(item, f"{path}[{i}]") for i, item in enumerate(value)
        ]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ScenarioValidationError(
                    f"{path}: mapping keys must be strings, got {key!r}",
                    path=path,
                )
            out[key] = _plain_params(item, _join(path, key))
        return out
    raise ScenarioValidationError(
        f"{path}: unsupported value {value!r} "
        f"(specs hold plain JSON data only)",
        path=path,
    )


@dataclass(frozen=True)
class ComponentSpec:
    """One component choice: a registry ``kind`` plus its parameters.

    In spec files a component section is either a bare string (the kind,
    no params) or a mapping with a ``kind`` key and the params inline::

        cache: lru
        cache: {kind: tinylfu, inner: lru, sample_size: 50000}
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_data(cls, data: object, path: str) -> "ComponentSpec":
        if isinstance(data, str):
            return cls(kind=_require_str(data, path))
        mapping = _require_mapping(data, path)
        if "kind" not in mapping:
            raise ScenarioValidationError(
                f"{path}: component section needs a 'kind' key "
                f"(or be a bare string), got keys {sorted(mapping)}",
                path=path,
            )
        kind = _require_str(mapping["kind"], _join(path, "kind"))
        params = {
            key: _plain_params(value, _join(path, key))
            for key, value in mapping.items()
            if key != "kind"
        }
        return cls(kind=kind, params=params)

    def to_data(self) -> Union[str, dict]:
        """Spec-file form: bare string without params, mapping with."""
        if not self.params:
            return self.kind
        return {"kind": self.kind, **self.params}


def _component(
    data: Mapping,
    key: str,
    path: str = "",
    default: Optional[str] = None,
) -> Optional[ComponentSpec]:
    if key in data:
        if data[key] is None:
            raise ScenarioValidationError(
                f"{_join(path, key)}: component section must not be null "
                f"(omit the key instead)",
                path=_join(path, key),
            )
        return ComponentSpec.from_data(data[key], _join(path, key))
    if default is not None:
        return ComponentSpec(kind=default)
    return None


def _system_from_data(data: object, path: str) -> SystemParameters:
    mapping = _require_mapping(data, path)
    _check_keys(mapping, _SYSTEM_KEYS, path)
    for key in ("n", "m", "c", "d"):
        if key not in mapping:
            raise ScenarioValidationError(
                f"{path}: missing required key {key!r}", path=path
            )
    kwargs = {
        "n": _require_int(mapping["n"], _join(path, "n")),
        "m": _require_int(mapping["m"], _join(path, "m")),
        "c": _require_int(mapping["c"], _join(path, "c")),
        "d": _require_int(mapping["d"], _join(path, "d")),
    }
    if "rate" in mapping:
        kwargs["rate"] = _require_number(mapping["rate"], _join(path, "rate"))
    if mapping.get("node_capacity") is not None:
        kwargs["node_capacity"] = _require_number(
            mapping["node_capacity"], _join(path, "node_capacity")
        )
    try:
        return SystemParameters(**kwargs)
    except ConfigurationError as exc:
        raise ScenarioValidationError(f"{path}: {exc}", path=path) from exc


def _system_to_data(params: SystemParameters) -> dict:
    data = {
        "n": params.n,
        "m": params.m,
        "c": params.c,
        "d": params.d,
        "rate": params.rate,
    }
    if params.node_capacity is not None:
        data["node_capacity"] = params.node_capacity
    return data


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified, runnable experiment.

    Exactly one of ``workload`` (a key distribution queried as-is) and
    ``adversary`` (a strategy that *derives* its distribution from the
    public system parameters) must be set — they are the two ways the
    paper fills the query stream.
    """

    name: str
    system: SystemParameters
    workload: Optional[ComponentSpec] = None
    adversary: Optional[ComponentSpec] = None
    cache: ComponentSpec = field(default_factory=lambda: ComponentSpec("perfect"))
    partitioner: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("random-table")
    )
    selection: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("least-loaded")
    )
    chaos: Optional[ComponentSpec] = None
    trace: Optional[ComponentSpec] = None
    engine: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("monte-carlo")
    )
    trials: int = 5
    queries: int = 20_000
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        _require_str(self.name, "name")
        if (self.workload is None) == (self.adversary is None):
            raise ScenarioValidationError(
                "workload: exactly one of 'workload' and 'adversary' "
                "must be set",
                path="workload",
            )
        _require_int(self.trials, "trials", minimum=1)
        _require_int(self.queries, "queries", minimum=1)
        _require_int(self.seed, "seed")
        _require_int(self.workers, "workers", minimum=0)

    @classmethod
    def from_dict(cls, data: object, path: str = "") -> "ScenarioSpec":
        """Build and validate a spec from its plain-data form."""
        mapping = _require_mapping(data, path or "scenario")
        _check_keys(mapping, _SCENARIO_KEYS, path)
        _check_version(mapping, "scenario", path)
        for key in ("name", "system"):
            if key not in mapping:
                raise ScenarioValidationError(
                    f"{path or 'scenario'}: missing required key {key!r}",
                    path=path or "scenario",
                )
        kwargs = {
            "name": _require_str(mapping["name"], _join(path, "name")),
            "system": _system_from_data(mapping["system"], _join(path, "system")),
            "workload": _component(mapping, "workload", path),
            "adversary": _component(mapping, "adversary", path),
            "cache": _component(mapping, "cache", path, default="perfect"),
            "partitioner": _component(
                mapping, "partitioner", path, default="random-table"
            ),
            "selection": _component(
                mapping, "selection", path, default="least-loaded"
            ),
            "chaos": _component(mapping, "chaos", path),
            "trace": _component(mapping, "trace", path),
            "engine": _component(mapping, "engine", path, default="monte-carlo"),
        }
        if "trials" in mapping:
            kwargs["trials"] = _require_int(
                mapping["trials"], _join(path, "trials"), minimum=1
            )
        if "queries" in mapping:
            kwargs["queries"] = _require_int(
                mapping["queries"], _join(path, "queries"), minimum=1
            )
        if "seed" in mapping:
            kwargs["seed"] = _require_int(mapping["seed"], _join(path, "seed"))
        if "workers" in mapping:
            kwargs["workers"] = _require_int(
                mapping["workers"], _join(path, "workers"), minimum=0
            )
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """Plain-data form; ``from_dict(to_dict())`` is the identity."""
        data: Dict[str, object] = {
            "scenario": SPEC_VERSION,
            "name": self.name,
            "system": _system_to_data(self.system),
        }
        if self.workload is not None:
            data["workload"] = self.workload.to_data()
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_data()
        data["cache"] = self.cache.to_data()
        data["partitioner"] = self.partitioner.to_data()
        data["selection"] = self.selection.to_data()
        if self.chaos is not None:
            data["chaos"] = self.chaos.to_data()
        if self.trace is not None:
            data["trace"] = self.trace.to_data()
        data["engine"] = self.engine.to_data()
        data["trials"] = self.trials
        data["queries"] = self.queries
        data["seed"] = self.seed
        data["workers"] = self.workers
        return data

    def components(self) -> Dict[str, Optional[ComponentSpec]]:
        """The spec's component choice per registry namespace."""
        return {
            "workload": self.workload,
            "adversary": self.adversary,
            "cache": self.cache,
            "partitioner": self.partitioner,
            "selection": self.selection,
            "chaos": self.chaos,
            # The trace section resolves through the sampler namespace.
            "sampler": self.trace,
            "engine": self.engine,
        }

    def with_override(self, dotted: str, value: object) -> "ScenarioSpec":
        """Copy with one dotted-path field replaced (sweep expansion).

        Routes through the plain-data form so every override re-runs the
        full validation — a sweep cannot produce a spec that ``load``
        would reject.
        """
        data = self.to_dict()
        _apply_override(data, dotted, value, where=f"sweep.{dotted}")
        return ScenarioSpec.from_dict(data)


def _apply_override(data: dict, dotted: str, value: object, where: str) -> None:
    parts = dotted.split(".")
    if not all(parts):
        raise ScenarioValidationError(
            f"{where}: malformed sweep path {dotted!r}", path=where
        )
    if parts[0] in ("scenario", "name"):
        raise ScenarioValidationError(
            f"{where}: sweep paths must not override {parts[0]!r}",
            path=where,
        )
    node = data
    for i, part in enumerate(parts[:-1]):
        child = node.get(part)
        if isinstance(child, str) and part in (
            "workload", "adversary", "cache", "partitioner", "selection",
            "chaos", "trace", "engine",
        ):
            # Bare-string component shorthand: expand so params can land.
            child = {"kind": child}
            node[part] = child
        if not isinstance(child, dict):
            missing = ".".join(parts[: i + 1])
            raise ScenarioValidationError(
                f"{where}: path {dotted!r} does not resolve "
                f"({missing!r} is not a section of the base scenario)",
                path=where,
            )
        node = child
    node[parts[-1]] = value


@dataclass(frozen=True)
class CampaignSpec:
    """A base scenario plus a sweep grid.

    ``sweep`` maps dotted scenario paths (``cache.kind``, ``system.d``,
    ``adversary.x``) to value lists; :meth:`expand` yields the cross
    product in deterministic order — sweep paths sorted, values in file
    order — with each concrete scenario named
    ``<base>/<path>=<value>/...``.
    """

    name: str
    base: ScenarioSpec
    sweep: Dict[str, Tuple[object, ...]] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: object) -> "CampaignSpec":
        mapping = _require_mapping(data, "campaign")
        _check_keys(mapping, _CAMPAIGN_KEYS, "")
        _check_version(mapping, "campaign", "")
        for key in ("name", "base"):
            if key not in mapping:
                raise ScenarioValidationError(
                    f"campaign: missing required key {key!r}", path="campaign"
                )
        name = _require_str(mapping["name"], "name")
        base_data = dict(_require_mapping(mapping["base"], "base"))
        base_data.setdefault("scenario", SPEC_VERSION)
        base_data.setdefault("name", name)
        base = ScenarioSpec.from_dict(base_data, path="base")
        sweep: Dict[str, Tuple[object, ...]] = {}
        if "sweep" in mapping:
            sweep_map = _require_mapping(mapping["sweep"], "sweep")
            for dotted, values in sweep_map.items():
                where = _join("sweep", str(dotted))
                dotted = _require_str(dotted, where)
                if not isinstance(values, (list, tuple)) or not values:
                    raise ScenarioValidationError(
                        f"{where}: expected a non-empty list of values, "
                        f"got {values!r}",
                        path=where,
                    )
                sweep[dotted] = tuple(
                    _plain_params(v, f"{where}[{i}]")
                    for i, v in enumerate(values)
                )
        spec = cls(name=name, base=base, sweep=sweep)
        # Fail fast on unresolvable paths / invalid combinations.
        spec.expand()
        return spec

    def to_dict(self) -> dict:
        base = self.base.to_dict()
        base.pop("scenario", None)
        data: Dict[str, object] = {
            "campaign": SPEC_VERSION,
            "name": self.name,
            "base": base,
        }
        if self.sweep:
            data["sweep"] = {
                dotted: list(values) for dotted, values in self.sweep.items()
            }
        return data

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        """Values per sweep axis, in sorted-path order."""
        return tuple(len(self.sweep[p]) for p in sorted(self.sweep))

    def expand(self) -> List[ScenarioSpec]:
        """The concrete scenarios of the sweep grid, in deterministic order."""
        if not self.sweep:
            return [replace(self.base, name=self.name)]
        paths = sorted(self.sweep)
        scenarios = []
        for combo in itertools.product(*(self.sweep[p] for p in paths)):
            spec = self.base
            label_parts = []
            for dotted, value in zip(paths, combo):
                spec = spec.with_override(dotted, value)
                label_parts.append(f"{dotted}={value}")
            scenarios.append(
                replace(spec, name=f"{self.name}/" + "/".join(label_parts))
            )
        return scenarios


def _parse_text(text: str, fmt: str, source: str) -> object:
    if fmt == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioValidationError(
                f"{source}: not valid JSON: {exc}", path=source
            ) from exc
    if fmt == "yaml":
        if _yaml is None:
            raise ScenarioValidationError(
                f"{source}: PyYAML is not installed; use JSON specs or "
                f"install pyyaml",
                path=source,
            )
        try:
            return _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ScenarioValidationError(
                f"{source}: not valid YAML: {exc}", path=source
            ) from exc
    raise ScenarioValidationError(
        f"{source}: unknown spec format {fmt!r}; use 'yaml' or 'json'",
        path=source,
    )


def _format_for(path: Path) -> str:
    return "json" if path.suffix.lower() == ".json" else "yaml"


def _spec_from_data(
    data: object, source: str
) -> Union[ScenarioSpec, CampaignSpec]:
    mapping = _require_mapping(data, source)
    if "campaign" in mapping:
        return CampaignSpec.from_dict(mapping)
    if "scenario" in mapping:
        return ScenarioSpec.from_dict(mapping)
    raise ScenarioValidationError(
        f"{source}: spec needs a 'scenario: {SPEC_VERSION}' or "
        f"'campaign: {SPEC_VERSION}' version key",
        path=source,
    )


def loads_spec(
    text: str, fmt: str = "yaml", source: str = "<string>"
) -> Union[ScenarioSpec, CampaignSpec]:
    """Parse a scenario or campaign spec from a string."""
    return _spec_from_data(_parse_text(text, fmt, source), source)


def load_spec(path: Union[str, Path]) -> Union[ScenarioSpec, CampaignSpec]:
    """Load a spec file; ``.json`` parses as JSON, anything else as YAML."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioValidationError(
            f"{path}: cannot read spec file: {exc}", path=str(path)
        ) from exc
    return loads_spec(text, fmt=_format_for(path), source=str(path))


def dumps_spec(
    spec: Union[ScenarioSpec, CampaignSpec], fmt: str = "yaml"
) -> str:
    """Serialise a spec to YAML (default) or JSON text."""
    data = spec.to_dict()
    if fmt == "json":
        return json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n"
    if fmt == "yaml":
        if _yaml is None:
            raise ScenarioValidationError(
                "PyYAML is not installed; dump as JSON instead", path="<dump>"
            )
        return _yaml.safe_dump(data, sort_keys=False, default_flow_style=False)
    raise ScenarioValidationError(
        f"unknown spec format {fmt!r}; use 'yaml' or 'json'", path="<dump>"
    )


def dump_spec(
    spec: Union[ScenarioSpec, CampaignSpec], path: Union[str, Path]
) -> Path:
    """Write a spec file next to :func:`load_spec`'s format rules."""
    path = Path(path)
    path.write_text(dumps_spec(spec, fmt=_format_for(path)))
    return path

"""Execute scenarios and sweep campaigns.

:func:`run_scenario` takes one validated :class:`ScenarioSpec` through
its engine; :func:`run_campaign` expands a :class:`CampaignSpec`'s
sweep grid and runs every concrete scenario, assembling the
schema-versioned manifest (:mod:`repro.scenario.manifest`) and
optionally the comparative HTML report (:mod:`repro.scenario.report`).

Scenarios run sequentially — each engine already parallelises its own
trials through :class:`repro.sim.parallel.ParallelExecutor`, and
nesting process pools would oversubscribe — and results are
bit-identical for every worker count, which the golden determinism
suite pins per fixture.

``REPRO_BENCH_SMOKE=1`` caps every scenario at 3 trials × 2000 queries,
the same escape hatch the perf harness uses, so CI smoke jobs finish in
seconds regardless of what a spec asks for.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .build import BuildContext
from .manifest import campaign_manifest, write_manifest
from .registry import REGISTRY, discover
from .report import write_campaign_html
from .spec import CampaignSpec, ScenarioSpec

__all__ = [
    "ScenarioOutcome",
    "CampaignResult",
    "run_scenario",
    "run_campaign",
]

#: Smoke-mode caps (trials, queries) under ``REPRO_BENCH_SMOKE``.
_SMOKE_TRIALS = 3
_SMOKE_QUERIES = 2_000


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")


def _apply_smoke(spec: ScenarioSpec) -> ScenarioSpec:
    if not _smoke():
        return spec
    return replace(
        spec,
        trials=min(spec.trials, _SMOKE_TRIALS),
        queries=min(spec.queries, _SMOKE_QUERIES),
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed scenario.

    ``stats`` is the engine's plain-data summary (what manifests and
    golden fixtures hold); ``result`` the engine's native aggregate
    (:class:`~repro.types.LoadReport` or
    :class:`~repro.sim.batch.EventCampaign`) for callers that need the
    full per-trial series.  ``trace`` is the merged
    :class:`~repro.obs.trace.FlightRecorder` when the spec carried a
    ``trace:`` section (``None`` otherwise) — the CLI writes its JSONL
    export and renders the forensics dashboard from it.
    """

    spec: ScenarioSpec
    stats: dict
    result: object
    trace: object = None


def run_scenario(
    spec: ScenarioSpec,
    workers: Optional[int] = None,
) -> ScenarioOutcome:
    """Run one scenario through its engine.

    ``workers`` overrides the spec's worker count (the CLI flag); the
    results are identical either way, only wall-clock changes.
    """
    discover()
    spec = _apply_smoke(spec)
    entry = REGISTRY.get("engine", spec.engine.kind, path="engine.kind")
    ctx = BuildContext(params=spec.system, seed=spec.seed)
    out = entry.factory(
        spec,
        ctx,
        spec.workers if workers is None else workers,
        **spec.engine.params,
    )
    # Engines return (stats, result) — plus the merged flight recorder
    # as an optional third element when the spec enables tracing.
    stats, result = out[0], out[1]
    trace = out[2] if len(out) > 2 else None
    return ScenarioOutcome(spec=spec, stats=stats, result=result, trace=trace)


@dataclass(frozen=True)
class CampaignResult:
    """One executed campaign: the grid's outcomes plus the manifest."""

    campaign: CampaignSpec
    outcomes: Tuple[ScenarioOutcome, ...]
    manifest: dict
    manifest_path: Optional[Path] = None
    report_path: Optional[Path] = None

    @property
    def scenarios(self) -> int:
        """Number of concrete scenarios executed."""
        return len(self.outcomes)

    def describe(self) -> str:
        """Multi-line campaign summary for terminals."""
        shape = self.manifest["grid_shape"]
        grid = " x ".join(str(k) for k in shape) if shape else "1"
        lines = [
            f"campaign {self.campaign.name}: {self.scenarios} scenario(s), "
            f"grid {grid}"
        ]
        for outcome in self.outcomes:
            stats = outcome.stats
            worst = stats.get("worst_case")
            worst_part = f" worst_case={worst:.4g}" if worst is not None else ""
            lines.append(
                f"  {outcome.spec.name}: engine={stats.get('engine')}"
                f"{worst_part}"
            )
        if self.manifest_path is not None:
            lines.append(f"manifest: {self.manifest_path}")
        if self.report_path is not None:
            lines.append(f"report: {self.report_path}")
        return "\n".join(lines)


def run_campaign(
    campaign: CampaignSpec,
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, Path]] = None,
    progress=None,
) -> CampaignResult:
    """Expand and execute a sweep campaign.

    With ``out_dir`` set, the manifest (``<name>.manifest.json``) and
    HTML report (``<name>.html``) are written there.  ``progress`` is an
    optional ``callable(index, total, spec)`` hook the CLI uses for
    per-scenario lines.
    """
    scenarios = campaign.expand()
    outcomes: List[ScenarioOutcome] = []
    for i, spec in enumerate(scenarios):
        if progress is not None:
            progress(i, len(scenarios), spec)
        outcomes.append(run_scenario(spec, workers=workers))
    effective_workers = (
        workers if workers is not None else campaign.base.workers
    )
    manifest = campaign_manifest(
        campaign,
        [outcome.spec for outcome in outcomes],
        [outcome.stats for outcome in outcomes],
        workers=effective_workers,
    )
    manifest_path = report_path = None
    if out_dir is not None:
        out_dir = Path(out_dir)
        safe = campaign.name.replace("/", "_")
        manifest_path = write_manifest(
            manifest, out_dir / f"{safe}.manifest.json"
        )
        report_path = write_campaign_html(manifest, out_dir / f"{safe}.html")
    return CampaignResult(
        campaign=campaign,
        outcomes=tuple(outcomes),
        manifest=manifest,
        manifest_path=manifest_path,
        report_path=report_path,
    )

"""Table I of the paper as a validated, immutable parameter object.

========  =============================================================
Symbol    Meaning
========  =============================================================
``n``     number of back-end nodes
``m``     number of (key, value) items stored in the system
``c``     number of items cached at the front end
``d``     replication factor (nodes able to serve each item)
``R``     sustainable aggregate query rate offered by the client(s)
``r_i``   max query rate supported by node *i* (optional, uniform here)
========  =============================================================

The paper's assumptions (Section II-B) are encoded as constructor
validation: ``d <= n`` (a replica group must fit in the cluster),
``c <= m`` (cannot cache more items than exist), and all counts positive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = ["SystemParameters"]


@dataclass(frozen=True)
class SystemParameters:
    """The cluster-plus-cache system of Figure 1.

    Parameters
    ----------
    n:
        Number of back-end nodes.
    m:
        Number of distinct (key, value) items served.
    c:
        Front-end cache capacity in items (``0 <= c <= m``).
    d:
        Replication factor: each item can be served by ``d`` distinct
        nodes (``1 <= d <= n``).  ``d = 1`` recovers the unreplicated
        setting of Fan et al. (SoCC'11).
    rate:
        Aggregate client query rate ``R`` in queries/second.
    node_capacity:
        Optional uniform per-node capacity ``r_i``.  ``None`` means
        capacity is not modelled (the analytic setting of the paper).

    Examples
    --------
    The paper's simulated system (Section IV):

    >>> params = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
    >>> params.even_split
    100.0
    """

    n: int
    m: int
    c: int
    d: int
    rate: float = 1.0
    node_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"need at least one node, got n={self.n}")
        if self.m < 1:
            raise ConfigurationError(f"need at least one item, got m={self.m}")
        if not 0 <= self.c <= self.m:
            raise ConfigurationError(
                f"cache size must satisfy 0 <= c <= m, got c={self.c}, m={self.m}"
            )
        if not 1 <= self.d <= self.n:
            raise ConfigurationError(
                f"replication factor must satisfy 1 <= d <= n, got d={self.d}, n={self.n}"
            )
        if self.rate < 0:
            raise ConfigurationError(f"rate must be non-negative, got {self.rate}")
        if self.node_capacity is not None and self.node_capacity <= 0:
            raise ConfigurationError(
                f"node_capacity must be positive when given, got {self.node_capacity}"
            )

    @property
    def even_split(self) -> float:
        """``R / n`` — per-node load if the workload spread perfectly.

        This is the baseline of Definition 1; an attack gain is the
        most-loaded node's rate divided by this quantity.
        """
        return self.rate / self.n

    @property
    def uncached_items(self) -> int:
        """``m - c`` — items that must be served by the back end."""
        return self.m - self.c

    @property
    def replicated(self) -> bool:
        """True when ``d >= 2`` (the regime this paper adds over [18])."""
        return self.d >= 2

    def with_cache(self, c: int) -> "SystemParameters":
        """Return a copy with cache size ``c`` (used by cache-size sweeps)."""
        return replace(self, c=c)

    def with_nodes(self, n: int) -> "SystemParameters":
        """Return a copy with ``n`` nodes (used by cluster-size sweeps)."""
        return replace(self, n=n)

    def with_replication(self, d: int) -> "SystemParameters":
        """Return a copy with replication factor ``d``."""
        return replace(self, d=d)

    def describe(self) -> str:
        """One-line human-readable summary used in experiment headers."""
        cap = "uncapped" if self.node_capacity is None else f"{self.node_capacity:g} qps"
        return (
            f"n={self.n} nodes, m={self.m} items, c={self.c} cached, "
            f"d={self.d} replicas, R={self.rate:g} qps, node capacity {cap}"
        )

"""Theorem 1 and the optimal adversarial access pattern (Section III-A).

The adversary expresses an attack as a query distribution
``S = (p_1, ..., p_m)`` over the ``m`` keys, listed in non-increasing
popularity so the front end caches keys ``0 .. c-1``.  Theorem 1 says:
whenever two *uncached* keys ``i < j`` satisfy ``h - p_i >= p_j > 0``
(with ``h`` the common probability of the cached keys), shifting
``delta = min(h - p_i, p_j)`` of mass from ``j`` to ``i`` cannot decrease
the expected maximum load.  Iterating this improvement step converges to
the canonical form of Eq. (4):

    p_1 = ... = p_c = h = p_{c+1} = ... = p_{x-1},   p_x in (0, h],
    p_{x+1} = ... = p_m = 0.

Maximising back-end traffic further forces ``h`` as small as the ordering
constraint allows, ``h = 1/x``, i.e. the *uniform distribution over a
prefix of x keys* — exactly what the paper simulates ("x different keys
are queried at the same rate").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DistributionError
from .notation import SystemParameters

__all__ = [
    "AdversarialPattern",
    "canonical_pattern",
    "uniform_prefix_pattern",
    "optimal_pattern",
    "is_canonical",
    "theorem1_step",
    "run_theorem1_to_fixed_point",
]

_ATOL = 1e-12


@dataclass(frozen=True)
class AdversarialPattern:
    """A query distribution over the key space, with cache-aware views.

    Attributes
    ----------
    probs:
        Probability of each key ``0 .. m-1`` (non-increasing).
    cache_size:
        The public cache size ``c`` the pattern was designed against.
    """

    probs: np.ndarray
    cache_size: int

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise DistributionError("pattern needs a non-empty 1-D probability vector")
        if np.any(probs < -_ATOL):
            raise DistributionError("probabilities must be non-negative")
        if not math.isclose(float(probs.sum()), 1.0, abs_tol=1e-9):
            raise DistributionError(
                f"probabilities must sum to 1, got {float(probs.sum())!r}"
            )
        if np.any(np.diff(probs) > _ATOL):
            raise DistributionError(
                "keys must be listed in non-increasing popularity order"
            )
        if not 0 <= self.cache_size <= probs.size:
            raise DistributionError(
                f"cache_size must be in [0, m], got {self.cache_size}"
            )
        object.__setattr__(self, "probs", np.clip(probs, 0.0, None))

    @property
    def m(self) -> int:
        """Size of the key space."""
        return int(self.probs.size)

    @property
    def x(self) -> int:
        """Number of keys queried with non-zero probability."""
        return int(np.count_nonzero(self.probs > _ATOL))

    @property
    def h(self) -> float:
        """Common probability of the cached (most popular) keys.

        For ``c = 0`` this is the probability of the most popular key,
        which plays the same ceiling role in Theorem 1.
        """
        return float(self.probs[0])

    @property
    def cached_fraction(self) -> float:
        """Fraction of queries absorbed by a perfect cache of size ``c``."""
        return float(self.probs[: self.cache_size].sum())

    @property
    def backend_fraction(self) -> float:
        """Fraction of queries that reach the back-end nodes."""
        return 1.0 - self.cached_fraction

    def uncached_probs(self) -> np.ndarray:
        """Probabilities of the keys that miss the cache (may be empty)."""
        return self.probs[self.cache_size :]


def canonical_pattern(m: int, x: int, cache_size: int, h: Optional[float] = None) -> AdversarialPattern:
    """Build the Eq. (4) canonical pattern: ``x - 1`` keys at ``h``, a
    remainder key, zeros after.

    Parameters
    ----------
    m, x, cache_size:
        Key-space size, number of queried keys, public cache size.
    h:
        Common probability of the first ``x - 1`` keys.  Must satisfy
        ``1/x <= h <= 1/(x-1)`` so the remainder ``1 - (x-1) h`` lies in
        ``(0, h]`` (for ``x = 1``, ``h`` is forced to 1).  ``None`` picks
        the load-maximising value ``1/x`` (uniform over ``x`` keys).
    """
    if not 1 <= x <= m:
        raise DistributionError(f"need 1 <= x <= m, got x={x}, m={m}")
    if x == 1:
        probs = np.zeros(m)
        probs[0] = 1.0
        return AdversarialPattern(probs, cache_size)
    if h is None:
        h = 1.0 / x
    if not (1.0 / x - _ATOL <= h <= 1.0 / (x - 1) + _ATOL):
        raise DistributionError(
            f"h must lie in [1/x, 1/(x-1)] = [{1.0/x:.6g}, {1.0/(x-1):.6g}], got {h:.6g}"
        )
    probs = np.zeros(m)
    probs[: x - 1] = h
    probs[x - 1] = max(0.0, 1.0 - (x - 1) * h)
    return AdversarialPattern(probs, cache_size)


def uniform_prefix_pattern(m: int, x: int, cache_size: int) -> AdversarialPattern:
    """Uniform distribution over the first ``x`` of ``m`` keys.

    This is the pattern the paper's simulations use and the fixed point
    of Theorem 1 with the smallest possible cache absorption.
    """
    return canonical_pattern(m, x, cache_size, h=None)


def optimal_pattern(params: SystemParameters, x: int) -> AdversarialPattern:
    """The load-maximising pattern for an adversary querying ``x`` keys.

    Combines Theorem 1 (canonical prefix form) with the minimal cache
    share (``h = 1/x``).  Choosing the best ``x`` itself is the job of
    :func:`repro.core.cases.plan_best_attack`.
    """
    return uniform_prefix_pattern(params.m, x, params.c)


def is_canonical(pattern: AdversarialPattern, atol: float = 1e-9) -> bool:
    """Check whether ``pattern`` has the Eq. (4) fixed-point form.

    The first ``x - 1`` queried keys share the top probability ``h``, the
    ``x``-th carries the remainder in ``(0, h]``, and all later keys are
    zero (zero-tail is guaranteed by the sortedness invariant).
    """
    x = pattern.x
    if x <= 1:
        return True
    probs = pattern.probs
    h = probs[0]
    head_equal = bool(np.allclose(probs[: x - 1], h, atol=atol))
    remainder_ok = bool(probs[x - 1] <= h + atol)
    return head_equal and remainder_ok


def theorem1_step(pattern: AdversarialPattern) -> Optional[AdversarialPattern]:
    """Apply one improvement step of Theorem 1, or return ``None`` at a
    fixed point.

    Finds the most popular uncached key ``i`` with ``p_i < h`` and the
    least popular key ``j > i`` with ``p_j > 0``, then moves
    ``delta = min(h - p_i, p_j)`` of probability from ``j`` to ``i``.
    The theorem guarantees the expected maximum back-end load does not
    decrease (validated empirically in the test suite).
    """
    probs = pattern.probs.copy()
    c = pattern.cache_size
    h = pattern.h
    uncached = probs[c:]
    below = np.nonzero(uncached < h - _ATOL)[0]
    if below.size == 0:
        return None
    i = int(below[0]) + c
    positive = np.nonzero(probs > _ATOL)[0]
    j = int(positive[-1])
    if j <= i:
        return None
    delta = min(h - probs[i], probs[j])
    if delta <= _ATOL:
        return None
    probs[i] += delta
    probs[j] -= delta
    probs = np.sort(probs)[::-1]
    return AdversarialPattern(probs, c)


def run_theorem1_to_fixed_point(
    pattern: AdversarialPattern, max_steps: int = 1_000_000
) -> Tuple[AdversarialPattern, int]:
    """Iterate :func:`theorem1_step` until no improvement remains.

    Returns the fixed point and the number of steps taken.  Each step
    either zeroes a key or tops one up to ``h``, so the process needs at
    most ``2 m`` steps; ``max_steps`` is a safety valve.
    """
    steps = 0
    current = pattern
    while steps < max_steps:
        nxt = theorem1_step(current)
        if nxt is None:
            return current, steps
        current = nxt
        steps += 1
    raise DistributionError(f"Theorem 1 iteration did not converge in {max_steps} steps")

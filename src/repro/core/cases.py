"""The Case 1 / Case 2 analysis: how many keys should the adversary query?

From the normalized bound (Eq. (10))

    gain(x) <= 1 + (1 - c + n k) / (x - 1),

the sign of ``1 - c + n k`` splits the world in two:

Case 1 (``c < n k + 1`` — the cache is too small).
    The bound *decreases* in ``x``, so the adversary maximises gain by
    querying as few keys as possible while still bypassing the cache:
    ``x = c + 1``.  The resulting gain exceeds 1 — an effective attack
    always exists.

Case 2 (``c >= n k + 1`` — the cache is provisioned per the paper).
    The bound *increases* in ``x`` but never reaches 1, so the
    adversary's best move is to query the whole key space ``x = m`` and
    even then the gain stays <= 1: provable DDoS prevention.

This is the paper's headline departure from the unreplicated analysis of
[18], where an optimal interior ``x*`` exists and attacks are always
effective (see :mod:`repro.core.baseline_socc11`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError
from .bounds import fold_constant_k, normalized_max_load_bound
from .notation import SystemParameters

__all__ = [
    "critical_cache_size",
    "which_case",
    "optimal_query_count",
    "AttackPlan",
    "plan_best_attack",
]


def critical_cache_size(n: int, d: int, k: Optional[float] = None, k_prime: float = 0.0) -> int:
    """Smallest cache size that lands the system in Case 2.

    Solves ``1 - c + n k <= 0`` for integer ``c``:
    ``c* = ceil(n k + 1) = ceil(n (log log n / log d + k') + 1)``.

    For the paper's figure parameters (``n = 1000``, folded ``k = 1.2``)
    this is 1201 entries — independent of the number of items ``m``.
    """
    if k is None:
        k = fold_constant_k(n, d, k_prime)
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    return int(math.ceil(n * k + 1.0))


def which_case(params: SystemParameters, k: Optional[float] = None, k_prime: float = 0.0) -> int:
    """Return 1 or 2: which branch of the analysis the system is in."""
    return 1 if params.c < critical_cache_size(params.n, params.d, k, k_prime) else 2


def optimal_query_count(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = 0.0
) -> int:
    """The bound-maximising number of keys for the adversary to query.

    Case 1: ``x = c + 1`` (smallest cache-bypassing attack).
    Case 2: ``x = m`` (query the entire key space).

    A degenerate corner: with ``c + 1 > m`` the whole key space fits in
    the cache and no back-end attack exists; ``m`` is returned, and the
    resulting gain is 0.
    """
    if which_case(params, k, k_prime) == 1:
        return min(params.c + 1, params.m)
    return params.m


@dataclass(frozen=True)
class AttackPlan:
    """The adversary's bound-optimal plan against a known ``(n, m, c, d)``.

    Attributes
    ----------
    x:
        Number of keys to query (uniformly, per Theorem 1).
    case:
        Which analysis branch applied (1: effective attack exists,
        2: provably prevented).
    gain_bound:
        Eq. (10) evaluated at ``x`` — the highest gain the adversary can
        hope for.
    effective:
        Whether ``gain_bound`` exceeds 1 (Definition 2 applied to the
        bound).
    critical_cache:
        The Case-2 threshold ``c*`` for this ``(n, d, k)``.
    """

    x: int
    case: int
    gain_bound: float
    effective: bool
    critical_cache: int

    def describe(self) -> str:
        """Human-readable plan summary for reports and examples."""
        outcome = "can be effective" if self.effective else "provably prevented"
        return (
            f"Case {self.case}: query x={self.x} keys uniformly; "
            f"gain bound {self.gain_bound:.3f} ({outcome}); "
            f"critical cache size c*={self.critical_cache}"
        )


def plan_best_attack(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = 0.0
) -> AttackPlan:
    """Produce the adversary's optimal plan and its predicted outcome.

    This is the function an attacker *with only public knowledge*
    (``n, m, c, d``) would run; the simulators in :mod:`repro.sim` then
    check the prediction against randomized executions.
    """
    case = which_case(params, k, k_prime)
    x = optimal_query_count(params, k, k_prime)
    if x <= params.c or x < 2:
        # Entire queried set is cached: the back end sees nothing.
        gain = 0.0
    else:
        gain = normalized_max_load_bound(params, x, k, k_prime)
    return AttackPlan(
        x=x,
        case=case,
        gain_bound=gain,
        effective=gain > 1.0,
        critical_cache=critical_cache_size(params.n, params.d, k, k_prime),
    )

"""Cache-vs-replication tradeoff planning (an operator extension).

The paper treats the replication factor ``d`` as given and sizes the
cache: ``c*(d) = n (log log n / log d + k') + 1``.  But an operator who
controls both knobs faces a real tradeoff:

- raising ``d`` shrinks the required cache (``1 / log d``) but costs
  ``(d - 1) * m`` extra stored replicas and their write amplification;
- raising ``c`` costs front-end memory (and is bounded by what still
  fits alongside the load balancer in fast memory).

Given unit costs for the two resources this module enumerates the
provably-safe ``(c, d)`` frontier and picks the cheapest point — the
kind of planning the paper's conclusion gestures at ("system designers
and managers can always protect their clusters using a small O(n) fast
front-end cache") made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .cases import critical_cache_size

__all__ = ["ResourceCosts", "DefenseOption", "DefensePlan", "plan_defense"]


@dataclass(frozen=True)
class ResourceCosts:
    """Unit costs for the two protection resources.

    Parameters
    ----------
    cache_entry:
        Cost of one front-end cache entry (fast memory is expensive:
        the paper wants the cache "small enough to fit in the L3 cache
        of a fast CPU").
    replica_item:
        Cost of storing one extra replica of one item (disk/SSD plus
        write amplification), paid ``(d - 1) * m`` times.
    """

    cache_entry: float = 1.0
    replica_item: float = 0.001

    def __post_init__(self) -> None:
        if self.cache_entry <= 0 or self.replica_item < 0:
            raise ConfigurationError(
                "cache_entry cost must be positive and replica_item non-negative"
            )


@dataclass(frozen=True)
class DefenseOption:
    """One provably-safe point on the (c, d) frontier."""

    d: int
    required_cache: int
    cache_cost: float
    replication_cost: float

    @property
    def total_cost(self) -> float:
        """Combined cost of this option."""
        return self.cache_cost + self.replication_cost

    def describe(self) -> str:
        """Human-readable row."""
        return (
            f"d={self.d}: cache {self.required_cache} entries "
            f"(cost {self.cache_cost:g}) + replication cost "
            f"{self.replication_cost:g} = {self.total_cost:g}"
        )


@dataclass(frozen=True)
class DefensePlan:
    """Result of :func:`plan_defense`: the frontier and its optimum."""

    options: Tuple[DefenseOption, ...]
    best: DefenseOption

    def describe(self) -> str:
        """Multi-line frontier summary with the optimum marked."""
        lines = []
        for option in self.options:
            marker = " <== cheapest" if option is self.best else ""
            lines.append(option.describe() + marker)
        return "\n".join(lines)


def plan_defense(
    n: int,
    m: int,
    costs: ResourceCosts = ResourceCosts(),
    d_candidates: Sequence[int] = (2, 3, 4, 5, 6),
    k_prime: float = 1.0,
    max_cache: Optional[int] = None,
) -> DefensePlan:
    """Choose the cheapest provably-DDoS-proof ``(c, d)`` combination.

    Parameters
    ----------
    n, m:
        Cluster size and item count.
    costs:
        Unit costs; the tradeoff's slope.
    d_candidates:
        Replication factors to consider (``d >= 2`` — the ``d = 1``
        world has no prevention theorem at all, see
        :mod:`repro.core.baseline_socc11`).
    k_prime:
        Theta(1) remainder used in the cache bound.
    max_cache:
        Optional hard ceiling on the front-end cache (fast-memory
        budget); options needing more are excluded.

    Raises
    ------
    ConfigurationError
        If no candidate satisfies the constraints.
    """
    if n < 1 or m < 1:
        raise ConfigurationError("need n >= 1 and m >= 1")
    options = []
    for d in sorted(set(d_candidates)):
        if d < 2:
            raise ConfigurationError(f"prevention requires d >= 2, got candidate {d}")
        if d > n:
            continue
        required = critical_cache_size(n, d, k_prime=k_prime)
        # A cache can never usefully exceed the key space.
        required = min(required, m)
        if max_cache is not None and required > max_cache:
            continue
        options.append(
            DefenseOption(
                d=d,
                required_cache=required,
                cache_cost=required * costs.cache_entry,
                replication_cost=(d - 1) * m * costs.replica_item,
            )
        )
    if not options:
        raise ConfigurationError(
            "no (c, d) combination satisfies the constraints; raise max_cache "
            "or extend d_candidates"
        )
    best = min(options, key=lambda option: option.total_cost)
    return DefensePlan(options=tuple(options), best=best)

"""Definitions 1 and 2: attack gain and attack effectiveness.

Definition 1 (Attack Gain).  Given offered rate ``R`` and ``n`` back-end
nodes, the attack gain of a DDoS attempt is the normalized workload of
the most loaded node: ``E[L_max] / (R/n)``.

Definition 2 (Effectiveness).  An attack is *effective* when its gain
exceeds 1.0 — i.e. the adversary pushed some node beyond the load it
would carry if traffic spread perfectly — and *ineffective* otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import AnalysisError
from ..types import LoadReport, LoadVector

__all__ = [
    "EFFECTIVENESS_THRESHOLD",
    "attack_gain",
    "is_effective",
    "AttackAssessment",
    "classify_attack",
]

#: The gain above which Definition 2 calls an attack effective.
EFFECTIVENESS_THRESHOLD = 1.0


def attack_gain(max_load: float, rate: float, n: int) -> float:
    """Definition 1: ``max_load / (rate / n)``.

    Parameters
    ----------
    max_load:
        Observed (or bounded) load of the most loaded node, queries/sec.
    rate:
        Aggregate offered rate ``R``.
    n:
        Number of back-end nodes.
    """
    if n < 1:
        raise AnalysisError(f"need at least one node, got n={n}")
    if rate < 0 or max_load < 0:
        raise AnalysisError("rates must be non-negative")
    if rate == 0:
        return 0.0
    return max_load / (rate / n)


def is_effective(gain: float) -> bool:
    """Definition 2: an attack is effective iff its gain exceeds 1.0."""
    return gain > EFFECTIVENESS_THRESHOLD


@dataclass(frozen=True)
class AttackAssessment:
    """Verdict on a measured (or bounded) attack.

    Attributes
    ----------
    gain:
        The attack gain used for the verdict (worst case over trials when
        built from a :class:`~repro.types.LoadReport`).
    effective:
        Definition 2 verdict on ``gain``.
    mean_gain, trials:
        Supplementary statistics when trial data was available.
    saturates:
        Whether ``gain`` pushes the most loaded node beyond its capacity,
        when a capacity is known (``None`` = capacity not modelled).
    """

    gain: float
    effective: bool
    mean_gain: Optional[float] = None
    trials: Optional[int] = None
    saturates: Optional[bool] = None

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        verdict = "EFFECTIVE" if self.effective else "ineffective"
        extra = ""
        if self.mean_gain is not None and self.trials is not None:
            extra = f" (mean {self.mean_gain:.3f} over {self.trials} trials)"
        return f"attack gain {self.gain:.3f} -> {verdict}{extra}"


def classify_attack(
    observed: "LoadReport | LoadVector",
    node_capacity: Optional[float] = None,
) -> AttackAssessment:
    """Assess an observed outcome per Definitions 1 and 2.

    Accepts either a single-trial :class:`~repro.types.LoadVector` or a
    multi-trial :class:`~repro.types.LoadReport`; for the latter the
    paper's convention (worst case over trials) decides effectiveness.
    """
    if isinstance(observed, LoadVector):
        gain = observed.normalized_max
        mean_gain = None
        trials = None
        n = observed.n_nodes
        rate = observed.total_rate
    elif isinstance(observed, LoadReport):
        gain = observed.worst_case
        mean_gain = observed.mean
        trials = observed.trials
        n = observed.n_nodes
        rate = observed.total_rate
    else:
        raise AnalysisError(f"cannot classify {type(observed).__name__}")
    saturates: Optional[bool] = None
    if node_capacity is not None:
        saturates = gain * (rate / n) > node_capacity
    return AttackAssessment(
        gain=gain,
        effective=is_effective(gain),
        mean_gain=mean_gain,
        trials=trials,
        saturates=saturates,
    )

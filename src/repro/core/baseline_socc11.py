"""The unreplicated baseline: Fan, Lim, Andersen & Kaminsky (SoCC'11).

*Small Cache, Big Effect* — reference [18] of the paper — analyses the
same front-end-cache architecture **without replication** (``d = 1``).
Keys then land on nodes by plain one-choice balls-into-bins, whose
heavily-loaded maximum occupancy is (Raab & Steger 1998)

    M/N + sqrt(2 M ln N / N) * (1 + o(1)),

a *polynomially* larger excess than the d-choice ``log log N / log d``.
The consequences, which the Secure Cache Provision paper contrasts
against (end of Section III-B):

1. the adversary's gain bound has an interior maximiser ``x*`` — a
   continuous function of ``c`` and ``n`` — rather than the endpoint
   choice (``c + 1`` or ``m``) of the replicated case; and
2. for any fixed cache size there are cluster sizes at which the
   adversary is effective; no O(n)-cache prevention theorem holds, the
   cache instead buys *provable load balancing* (bounded, not <= 1,
   normalized load).

This module implements that baseline so the contrast can be plotted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .notation import SystemParameters

__all__ = [
    "one_choice_key_bound",
    "expected_max_load_bound",
    "normalized_max_load_bound",
    "optimal_query_count",
    "BaselinePlan",
    "plan_best_attack",
]


def one_choice_key_bound(balls: int, bins: int) -> float:
    """Raab-Steger heavily-loaded bound on one-choice max occupancy.

    ``balls/bins + sqrt(2 * balls * ln(bins) / bins)`` — the leading
    terms for ``balls >> bins ln bins``.  For small systems the square
    root still gives a usable (if loose) estimate, which is all the
    baseline comparison needs.
    """
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if balls == 0 or bins == 1:
        return float(balls)
    return balls / bins + math.sqrt(2.0 * balls * math.log(bins) / bins)


def expected_max_load_bound(params: SystemParameters, x: int) -> float:
    """SoCC'11 analogue of Eq. (8): ``E[L_max]`` bound with ``d = 1``.

    The replication factor of ``params`` is ignored — this function
    answers "what if the same system ran unreplicated?", which is how
    the paper uses the baseline.
    """
    _validate_x(params, x)
    if x <= params.c:
        return 0.0
    per_key_rate = params.rate / (x - 1)
    return one_choice_key_bound(x - params.c, params.n) * per_key_rate


def normalized_max_load_bound(params: SystemParameters, x: int) -> float:
    """Normalized (attack gain) form of the unreplicated bound.

    ``(x - c)/(x - 1) + n * sqrt(2 (x - c) ln n / n) / (x - 1)``.
    """
    if params.rate == 0:
        return 0.0
    return expected_max_load_bound(params, x) / params.even_split


def optimal_query_count(params: SystemParameters) -> int:
    """The interior maximiser ``x*`` of the unreplicated gain bound.

    Unlike the replicated case there is no closed endpoint answer: the
    gain rises, peaks at an ``x*`` that grows with ``c`` and ``n``, then
    decays.  We locate it by a log-spaced coarse scan over the integer
    domain ``[c + 1, m]`` followed by an exact scan of the bracketing
    window — robust and fast for every realistic parameter range.
    """
    lo, hi = params.c + 1, params.m
    if lo > hi:
        return params.m
    if lo < 2:
        lo = 2
    if hi < lo:
        return hi
    grid = np.unique(
        np.clip(
            np.round(np.geomspace(lo, hi, num=min(512, hi - lo + 1))).astype(int), lo, hi
        )
    )
    gains = [normalized_max_load_bound(params, int(x)) for x in grid]
    best_idx = int(np.argmax(gains))
    left = int(grid[max(0, best_idx - 1)])
    right = int(grid[min(len(grid) - 1, best_idx + 1)])
    # Exact scan of the bracket (bounded window keeps this cheap).
    window = range(left, right + 1)
    if right - left > 4096:
        window = np.unique(
            np.round(np.linspace(left, right, num=4097)).astype(int)
        ).tolist()
    best_x, best_gain = left, -math.inf
    for x in window:
        g = normalized_max_load_bound(params, int(x))
        if g > best_gain:
            best_x, best_gain = int(x), g
    return best_x


@dataclass(frozen=True)
class BaselinePlan:
    """Best unreplicated attack plan, mirroring
    :class:`repro.core.cases.AttackPlan` for the d = 1 baseline."""

    x: int
    gain_bound: float
    effective: bool

    def describe(self) -> str:
        """Human-readable summary."""
        outcome = "effective" if self.effective else "ineffective"
        return (
            f"SoCC'11 baseline (d=1): query x*={self.x} keys uniformly; "
            f"gain bound {self.gain_bound:.3f} ({outcome})"
        )


def plan_best_attack(params: SystemParameters) -> BaselinePlan:
    """Best attack against the unreplicated system.

    For every realistic ``(n, c)`` the resulting gain bound exceeds 1 —
    the SoCC'11 setting offers load *balancing*, not prevention — which
    is exactly the contrast the replication paper draws.
    """
    x = optimal_query_count(params)
    if x <= params.c or x < 2:
        gain = 0.0
    else:
        gain = normalized_max_load_bound(params, x)
    return BaselinePlan(x=x, gain_bound=gain, effective=gain > 1.0)


def _validate_x(params: SystemParameters, x: int) -> None:
    if not 1 <= x <= params.m:
        raise ConfigurationError(
            f"the adversary can query between 1 and m={params.m} keys, got x={x}"
        )
    if x < 2:
        raise ConfigurationError("the baseline bound requires x >= 2")

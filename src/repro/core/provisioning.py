"""Cache provisioning: the operator-facing side of the paper's result.

The paper's conclusion for cluster operators: a front-end cache of

    c >= n * (log log n / log d + k') + 1  =  O(n log log n / log d)

entries makes every adversarial access pattern ineffective, *independent
of the number of items served*; and because ``log log n / log d < 2`` for
every realistic deployment (``n < 1e5``, ``d >= 3``), an ``O(n)`` cache
suffices.  This module turns that statement into a provisioning API:
given a cluster, how big a cache — and how much per-node headroom — do I
need to be provably DDoS-proof?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError
from .bounds import expected_max_load_bound, fold_constant_k
from .cases import critical_cache_size, plan_best_attack
from .notation import SystemParameters

__all__ = [
    "DEFAULT_K_PRIME",
    "required_cache_size",
    "is_provably_protected",
    "min_node_capacity",
    "ProvisioningReport",
    "recommend",
]

#: Conservative default for the Theta(1) remainder ``k'`` of the
#: Berenbrink et al. bound.  Empirical calibration (see
#: ``repro.ballsbins.occupancy.calibrate_k_prime``) finds ``k'`` well
#: below 1 across the paper's parameter ranges; 1.0 keeps the
#: recommendation on the safe side.  The paper's own figures use the
#: *folded* constant ``k = 1.2`` for n=1000, d=3.
DEFAULT_K_PRIME = 1.0


def required_cache_size(
    n: int, d: int, k: Optional[float] = None, k_prime: float = DEFAULT_K_PRIME
) -> int:
    """Smallest cache size guaranteeing Case 2 (provable prevention).

    Either pass the folded constant ``k`` directly (e.g. an empirically
    calibrated value such as the paper's 1.2) or let it be computed as
    ``log log n / log d + k_prime``.
    """
    return critical_cache_size(n, d, k=k, k_prime=k_prime)


def is_provably_protected(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = DEFAULT_K_PRIME
) -> bool:
    """True when ``params.c`` meets the Case-2 threshold.

    The corner where the cache covers the whole key space (``c >= m``)
    is trivially protected regardless of the threshold.
    """
    if params.c >= params.m:
        return True
    return params.c >= required_cache_size(params.n, params.d, k=k, k_prime=k_prime)


def min_node_capacity(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = DEFAULT_K_PRIME
) -> float:
    """Per-node capacity ``r_i`` above which no node ever saturates.

    Section III-B closes with: if each node's capacity exceeds
    ``E[L_max]`` under the adversary's best plan, the attacker can never
    saturate any node with high probability.  This returns that bound
    (in queries/second) for the adversary's optimal ``x``.
    """
    plan = plan_best_attack(params, k=k, k_prime=k_prime)
    if plan.x <= params.c or plan.x < 2:
        return 0.0
    return expected_max_load_bound(params, plan.x, k=k, k_prime=k_prime)


@dataclass(frozen=True)
class ProvisioningReport:
    """Everything an operator needs to provision the front end.

    Attributes
    ----------
    params:
        The system the report was computed for.
    k:
        The folded constant used.
    required_cache:
        Case-2 threshold ``c*``.
    protected:
        Whether the system's current cache meets it.
    worst_gain_bound:
        Eq. (10) at the adversary's best ``x`` for the current cache.
    min_capacity:
        Per-node qps needed to survive the worst plan (0 when the cache
        absorbs everything).
    cache_to_nodes_ratio:
        ``c* / n`` — the paper's "small cache" claim made concrete: for
        realistic clusters this stays below ~3 entries per node.
    """

    params: SystemParameters
    k: float
    required_cache: int
    protected: bool
    worst_gain_bound: float
    min_capacity: float

    @property
    def cache_to_nodes_ratio(self) -> float:
        """Required cache entries per back-end node."""
        return self.required_cache / self.params.n

    def describe(self) -> str:
        """Multi-line human-readable provisioning summary."""
        status = "PROTECTED" if self.protected else "VULNERABLE"
        lines = [
            f"system: {self.params.describe()}",
            f"folded constant k = {self.k:.4f}",
            f"required cache size c* = {self.required_cache} entries "
            f"({self.cache_to_nodes_ratio:.2f} per node)",
            f"current cache c = {self.params.c} -> {status}",
            f"worst-case gain bound at current cache: {self.worst_gain_bound:.3f}",
            f"per-node capacity needed: {self.min_capacity:.1f} qps "
            f"(even split would be {self.params.even_split:.1f} qps)",
        ]
        return "\n".join(lines)


def recommend(
    params: SystemParameters, k: Optional[float] = None, k_prime: float = DEFAULT_K_PRIME
) -> ProvisioningReport:
    """Produce a :class:`ProvisioningReport` for ``params``.

    Examples
    --------
    >>> from repro.core import SystemParameters
    >>> report = recommend(SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5), k=1.2)
    >>> report.required_cache
    1201
    >>> report.protected
    False
    """
    folded = fold_constant_k(params.n, params.d, k_prime) if k is None else k
    if folded < 0:
        raise ConfigurationError(f"folded constant k must be non-negative, got {folded}")
    plan = plan_best_attack(params, k=k, k_prime=k_prime)
    return ProvisioningReport(
        params=params,
        k=folded,
        required_cache=required_cache_size(params.n, params.d, k=k, k_prime=k_prime),
        protected=is_provably_protected(params, k=k, k_prime=k_prime),
        worst_gain_bound=plan.gain_bound,
        min_capacity=min_node_capacity(params, k=k, k_prime=k_prime),
    )

"""The paper's primary contribution: adversary analysis and cache bounds.

This subpackage is a direct, executable transcription of Section III of
*Secure Cache Provision* (ICDCS Workshops 2013):

- :mod:`repro.core.notation` — Table I as a validated parameter object.
- :mod:`repro.core.bounds` — the throughput bound, Eqs. (5)-(10).
- :mod:`repro.core.strategy` — Theorem 1 and the optimal access pattern.
- :mod:`repro.core.attack_gain` — Definitions 1 and 2.
- :mod:`repro.core.cases` — the Case 1 / Case 2 analysis and the optimal
  number of queried keys.
- :mod:`repro.core.provisioning` — the O(n log log n / log d) cache-size
  bound and provisioning helpers.
- :mod:`repro.core.baseline_socc11` — the unreplicated baseline analysis
  of Fan et al. (SoCC'11), reference [18] of the paper.
"""

from .notation import SystemParameters
from .bounds import (
    balls_in_bins_key_bound,
    expected_max_load_bound,
    fold_constant_k,
    normalized_max_load_bound,
)
from .strategy import (
    AdversarialPattern,
    canonical_pattern,
    is_canonical,
    optimal_pattern,
    theorem1_step,
)
from .attack_gain import AttackAssessment, attack_gain, classify_attack, is_effective
from .cases import AttackPlan, critical_cache_size, optimal_query_count, plan_best_attack
from .provisioning import (
    ProvisioningReport,
    is_provably_protected,
    min_node_capacity,
    required_cache_size,
    recommend,
)
from .tradeoff import DefenseOption, DefensePlan, ResourceCosts, plan_defense
from .heterogeneous import (
    CapacityAudit,
    NodeMargin,
    audit_capacities,
    utilization_equalizing_bound,
)
from . import baseline_socc11

__all__ = [
    "ResourceCosts",
    "DefenseOption",
    "DefensePlan",
    "plan_defense",
    "NodeMargin",
    "CapacityAudit",
    "audit_capacities",
    "utilization_equalizing_bound",
    "SystemParameters",
    "balls_in_bins_key_bound",
    "expected_max_load_bound",
    "fold_constant_k",
    "normalized_max_load_bound",
    "AdversarialPattern",
    "canonical_pattern",
    "is_canonical",
    "optimal_pattern",
    "theorem1_step",
    "AttackAssessment",
    "attack_gain",
    "classify_attack",
    "is_effective",
    "AttackPlan",
    "critical_cache_size",
    "optimal_query_count",
    "plan_best_attack",
    "ProvisioningReport",
    "is_provably_protected",
    "min_node_capacity",
    "required_cache_size",
    "recommend",
    "baseline_socc11",
]

"""Heterogeneous node capacities — relaxing the uniform-capacity story.

The paper closes Section III with: "if the capacity r_i of each node is
larger than E[L_max], then with high probability the adversary will
never saturate any node."  With *uniform* capacity that is one number;
real clusters mix hardware generations.  Two results packaged here:

1. **Audit** (:func:`audit_capacities`): under random partitioning the
   adversary cannot aim at the weak nodes (the mapping is opaque), so
   every node faces the same worst-case load bound ``E[L_max]`` — the
   cluster is safe iff its *weakest* node clears the bound.  The audit
   reports each node's margin and the saturation-prone set.

2. **Capacity-aware placement** (:func:`utilization_equalizing_bound`):
   if the system pins keys to the least *utilized* (load/capacity)
   replica instead of the least loaded — implemented as
   :class:`repro.cluster.selection.LeastUtilizedKeyPinning` — node ``i``
   carries approximately the ``r_i / sum(r)`` share of the load, and the
   relevant check becomes per-node: ``share_i * total + slack`` vs
   ``r_i``.  This converts dead headroom on big nodes into protection
   for small ones; the helper quantifies the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .bounds import expected_max_load_bound, fold_constant_k
from .cases import plan_best_attack
from .notation import SystemParameters

__all__ = [
    "NodeMargin",
    "CapacityAudit",
    "audit_capacities",
    "utilization_equalizing_bound",
]


@dataclass(frozen=True)
class NodeMargin:
    """One node's standing against the worst-case load bound."""

    node_id: int
    capacity: float
    worst_load_bound: float

    @property
    def margin(self) -> float:
        """``capacity - bound``; negative means saturable."""
        return self.capacity - self.worst_load_bound

    @property
    def safe(self) -> bool:
        """Whether this node survives the worst planned attack."""
        return self.margin >= 0


@dataclass(frozen=True)
class CapacityAudit:
    """Cluster-wide capacity audit under the best adversarial plan."""

    margins: Tuple[NodeMargin, ...]
    worst_load_bound: float
    plan_x: int

    @property
    def safe(self) -> bool:
        """True when every node clears the bound."""
        return all(margin.safe for margin in self.margins)

    @property
    def at_risk(self) -> Tuple[int, ...]:
        """Node ids that an attack could saturate."""
        return tuple(m.node_id for m in self.margins if not m.safe)

    @property
    def weakest_margin(self) -> float:
        """Smallest capacity-minus-bound across the cluster."""
        return min(m.margin for m in self.margins)

    def describe(self) -> str:
        """One-line audit verdict."""
        if self.safe:
            return (
                f"SAFE: all {len(self.margins)} nodes clear the worst-case "
                f"load bound {self.worst_load_bound:.1f} qps "
                f"(weakest margin {self.weakest_margin:.1f})"
            )
        return (
            f"AT RISK: {len(self.at_risk)} node(s) below the worst-case "
            f"load bound {self.worst_load_bound:.1f} qps: {self.at_risk[:10]}"
        )


def audit_capacities(
    params: SystemParameters,
    capacities: Sequence[float],
    k: Optional[float] = None,
    k_prime: float = 1.0,
) -> CapacityAudit:
    """Audit per-node capacities against the adversary's best plan.

    Randomized partitioning is opaque to the attacker, so weak nodes
    cannot be singled out — but by the same token they cannot be
    *spared*: the worst-case bound applies to every node alike, and the
    cluster is only as safe as its weakest member.
    """
    capacities = np.asarray(capacities, dtype=float)
    if capacities.shape != (params.n,):
        raise ConfigurationError(
            f"need one capacity per node: expected {params.n}, got {capacities.size}"
        )
    if np.any(capacities <= 0):
        raise ConfigurationError("capacities must be positive")
    plan = plan_best_attack(params, k=k, k_prime=k_prime)
    if plan.x <= params.c or plan.x < 2:
        bound = 0.0
    else:
        bound = expected_max_load_bound(params, plan.x, k=k, k_prime=k_prime)
    margins = tuple(
        NodeMargin(node_id=i, capacity=float(r), worst_load_bound=bound)
        for i, r in enumerate(capacities)
    )
    return CapacityAudit(margins=margins, worst_load_bound=bound, plan_x=plan.x)


def utilization_equalizing_bound(
    params: SystemParameters,
    capacities: Sequence[float],
    k: Optional[float] = None,
    k_prime: float = 1.0,
) -> np.ndarray:
    """Per-node worst-case load under capacity-proportional placement.

    With utilization-equalizing selection
    (:class:`repro.cluster.selection.LeastUtilizedKeyPinning`) node ``i``
    attracts load in proportion to ``r_i``, so its worst-case share is

        bound_i = (r_i / mean(r)) * (R_backend / n) + slack,

    where the slack is the same d-choice excess as the uniform case
    (one extra key's rate times the folded constant).  Returns the
    length-``n`` vector of per-node bounds; compare elementwise against
    ``capacities`` to check safety.  The uniform-capacity case
    degenerates exactly to Eq. (8).
    """
    capacities = np.asarray(capacities, dtype=float)
    if capacities.shape != (params.n,):
        raise ConfigurationError(
            f"need one capacity per node: expected {params.n}, got {capacities.size}"
        )
    if np.any(capacities <= 0):
        raise ConfigurationError("capacities must be positive")
    plan = plan_best_attack(params, k=k, k_prime=k_prime)
    if plan.x <= params.c or plan.x < 2:
        return np.zeros(params.n)
    x = plan.x
    per_key_rate = params.rate / (x - 1)
    backend_rate = (x - params.c) * per_key_rate
    if k is None:
        k = fold_constant_k(params.n, params.d, k_prime)
    shares = capacities / capacities.mean()
    return shares * (backend_rate / params.n) + k * per_key_rate

"""The throughput bound of Section III-B, Eqs. (5)-(10).

Derivation recap
----------------
Under the optimal adversarial pattern (Theorem 1) the adversary queries
``x`` keys; the ``c`` cached ones are absorbed by the front end, leaving
``x - c`` *uncached* keys for the back end.  Keys are randomly partitioned
and each is ultimately served by one of ``d`` randomly chosen nodes, so
the key -> node placement is the classic *balls into bins with the power
of d choices* process.  For ``M >> N`` balls into ``N`` bins, Berenbrink,
Czumaj, Steger and Voecking (STOC'00) prove the max occupancy is, with
high probability,

    M/N + log log N / log d  +/-  Theta(1).                       (5)

With ``M = x - c`` balls and ``N = n`` bins, each key queried at rate at
most ``R/(x-1)``, the expected maximum node load obeys

    E[L_max] <= [ (x-c)/n + k ] * R/(x-1),                        (7)-(8)

where ``k = log log n / log d + k'`` folds the Theta(1) into a constant
``k'``.  Dividing by the even-split load ``R/n`` gives the *normalized*
bound the figures plot:

    E[L_max] / (R/n) <= 1 + (1 - c + n k) / (x - 1).              (10)

The paper's figures use the folded constant ``k = 1.2`` for ``n = 1000``,
``d = 3``; :func:`fold_constant_k` computes ``k`` from ``(n, d, k')`` and
:data:`PAPER_K` records the figure value.
"""

from __future__ import annotations

import math
from typing import Optional

from ..exceptions import ConfigurationError
from .notation import SystemParameters

__all__ = [
    "PAPER_K",
    "DEFAULT_CALIBRATED_K_PRIME",
    "loglog_over_logd",
    "fold_constant_k",
    "balls_in_bins_key_bound",
    "distcache_max_load_bound",
    "expected_max_load_bound",
    "normalized_max_load_bound",
]

#: Folded constant ``k`` used for every figure in the paper
#: (stated below Eq. (10) for Fig. 3: "we set k = 1.2").
PAPER_K = 1.2

#: Theta(1) remainder calibrated against *this* substrate's exact
#: d-choice process (``repro.ballsbins.occupancy.calibrate_k_prime``
#: measures worst-case k' in [0.24, 0.61] across the paper's parameter
#: ranges; 0.75 adds safety).  ``fold_constant_k(n, d,
#: DEFAULT_CALIBRATED_K_PRIME)`` yields a bound our simulations never
#: violate, whereas the paper's folded k = 1.2 under-covers the true
#: gap (log log 1000 / log 3 alone is already 1.76) — see
#: EXPERIMENTS.md for the discussion.
DEFAULT_CALIBRATED_K_PRIME = 0.75


def loglog_over_logd(n: int, d: int) -> float:
    """Return ``log log n / log d``, the d-choice occupancy excess.

    Natural logarithms, matching the Berenbrink et al. statement.  For
    ``d = 1`` the d-choice theory does not apply (``log 1 = 0``) and a
    :class:`ConfigurationError` is raised — use
    :mod:`repro.core.baseline_socc11` for the unreplicated case.
    ``n <= e`` would make ``log log n`` negative or undefined; the excess
    term is clamped at 0 there since a one- or two-node system trivially
    has occupancy ``M/N + O(1)``.
    """
    if d < 2:
        raise ConfigurationError(
            "log log n / log d requires d >= 2; use baseline_socc11 for d = 1"
        )
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if n <= math.e:
        return 0.0
    return max(0.0, math.log(math.log(n)) / math.log(d))


def fold_constant_k(n: int, d: int, k_prime: float = 0.0) -> float:
    """Return ``k = log log n / log d + k'`` (the constant in Eq. (10)).

    ``k'`` absorbs the Theta(1) of the balls-into-bins bound; the paper
    calibrates the whole ``k`` to 1.2 for its figures.  Use
    :func:`repro.ballsbins.occupancy.calibrate_k_prime` to measure ``k'``
    empirically for other ``(n, d)``.
    """
    return loglog_over_logd(n, d) + k_prime


def balls_in_bins_key_bound(balls: int, bins: int, d: int, k_prime: float = 0.0) -> float:
    """Eq. (6): bound on the number of keys landing on any single node.

    ``balls = x - c`` uncached keys into ``bins = n`` nodes with the power
    of ``d`` choices: ``balls/bins + log log bins / log d + k'``.
    """
    if balls < 0:
        raise ConfigurationError(f"balls must be non-negative, got {balls}")
    if bins < 1:
        raise ConfigurationError(f"bins must be positive, got {bins}")
    if balls == 0:
        return 0.0
    return balls / bins + fold_constant_k(bins, d, k_prime)


def distcache_max_load_bound(
    hits: int, shards: int, keys: int, k_prime: float = 0.0
) -> float:
    """DistCache per-layer max-load bound on hits served by any one shard.

    DistCache (Liu et al., NSDI'19) gives every key one candidate shard
    per layer via *independent* hashes and routes each query to the
    less-loaded candidate — the power-of-two-choices process Eq. (6)
    analyses, with the layer's ``shards`` as the bins, the ``keys``
    distinct hot keys as the balls, and ``d = 2`` fixed by the two
    candidate layers.  Mirroring the step from Eq. (6) to Eq. (7), the
    key-count bound converts to a load bound by the mean per-key hit
    rate ``hits / keys``::

        shard_max <= [keys/shards + k(shards, 2, k')] * hits/keys
                   = hits/shards + k * hits/keys

    A single-shard layer trivially serves every hit, so the bound
    collapses to ``hits`` exactly (no Theta(1) slack); a layer that
    served nothing gets 0.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    if hits < 0 or keys < 0:
        raise ConfigurationError("hits and keys must be non-negative")
    if hits == 0 or keys == 0:
        return 0.0
    if shards == 1:
        return float(hits)
    k = fold_constant_k(shards, 2, k_prime)
    return hits / shards + k * (hits / keys)


def expected_max_load_bound(
    params: SystemParameters,
    x: int,
    k: Optional[float] = None,
    k_prime: float = 0.0,
) -> float:
    """Eq. (8): bound on ``E[L_max]`` in queries/second.

    Parameters
    ----------
    params:
        The system under attack.
    x:
        Number of distinct keys the adversary queries; must exceed the
        cache size (otherwise every query hits the cache and the bound
        is trivially 0) and cannot exceed the key space ``m``.
    k:
        The folded constant of Eq. (10).  When ``None`` it is computed
        as ``log log n / log d + k_prime``.
    k_prime:
        The Theta(1) remainder, only used when ``k is None``.
    """
    _validate_x(params, x)
    if x <= params.c:
        return 0.0
    if k is None:
        k = fold_constant_k(params.n, params.d, k_prime)
    per_key_rate = params.rate / (x - 1)
    keys_per_node = (x - params.c) / params.n + k
    return keys_per_node * per_key_rate


def normalized_max_load_bound(
    params: SystemParameters,
    x: int,
    k: Optional[float] = None,
    k_prime: float = 0.0,
) -> float:
    """Eq. (10): bound on the attack gain ``E[L_max] / (R/n)``.

    Equals ``1 + (1 - c + n k) / (x - 1)``; the sign of ``1 - c + n k``
    decides between Case 1 (effective attacks exist) and Case 2 (provable
    prevention) — see :mod:`repro.core.cases`.
    """
    _validate_x(params, x)
    if x <= params.c:
        return 0.0
    if k is None:
        k = fold_constant_k(params.n, params.d, k_prime)
    return 1.0 + (1.0 - params.c + params.n * k) / (x - 1)


def _validate_x(params: SystemParameters, x: int) -> None:
    if not 1 <= x <= params.m:
        raise ConfigurationError(
            f"the adversary can query between 1 and m={params.m} keys, got x={x}"
        )
    if x < 2:
        # The bound divides by (x - 1); a single-key attack is handled by
        # the cases module directly (it is either fully cached or a single
        # hot key on one node).
        raise ConfigurationError("the bound of Eq. (10) requires x >= 2")

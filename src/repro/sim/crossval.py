"""Cross-engine validation: placement model vs queueing model.

The Monte-Carlo engine is the paper's model; the event-driven engine is
the closest thing this repository has to ground truth.  Agreement
between them on the normalized max load is the repository's internal
consistency check, packaged here as a library call so tests, benches
and users run the identical procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError
from ..workload.adversarial import AdversarialDistribution
from .analytic import simulate_uniform_attack
from .batch import run_event_campaign

__all__ = ["CrossValidation", "cross_validate"]


@dataclass(frozen=True)
class CrossValidation:
    """Agreement report between the two engines at one attack width."""

    x: int
    analytic_mean: float
    eventsim_mean: float
    eventsim_std: float
    drop_rate: float

    @property
    def relative_gap(self) -> float:
        """``|analytic - eventsim| / analytic`` (0 when both are 0)."""
        if self.analytic_mean == 0:
            return 0.0 if self.eventsim_mean == 0 else float("inf")
        return abs(self.analytic_mean - self.eventsim_mean) / self.analytic_mean

    def agrees(self, tolerance: float = 0.25) -> bool:
        """Whether the engines agree within ``tolerance`` relative gap."""
        return self.relative_gap <= tolerance

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"x={self.x}: analytic {self.analytic_mean:.3f} vs "
            f"event-driven {self.eventsim_mean:.3f} "
            f"(gap {100 * self.relative_gap:.1f}%, drops {self.drop_rate:.4f})"
        )


def cross_validate(
    params: SystemParameters,
    x: int,
    analytic_trials: int = 20,
    event_trials: int = 4,
    queries_per_trial: int = 40_000,
    seed: Optional[int] = None,
    workers: int = 1,
) -> CrossValidation:
    """Run the x-key uniform attack through both engines and compare.

    Keeps the event-engine inputs modest by default; raise
    ``queries_per_trial`` when per-node rates need tighter confidence
    (roughly ``20 * rate / n`` queries per node is a good floor).
    ``workers`` parallelises the trials of both engines (``0`` = one
    process per CPU) without changing any result.
    """
    if not 1 <= x <= params.m:
        raise ConfigurationError(f"need 1 <= x <= m={params.m}, got x={x}")
    analytic = simulate_uniform_attack(
        params, x, trials=analytic_trials, seed=seed, workers=workers
    ).mean
    campaign = run_event_campaign(
        params,
        AdversarialDistribution(params.m, x),
        trials=event_trials,
        n_queries=queries_per_trial,
        seed=seed,
        workers=workers,
    )
    gains = campaign.load_report.normalized_max_per_trial
    drops = [result.drop_rate for result in campaign.results]
    return CrossValidation(
        x=x,
        analytic_mean=float(analytic),
        eventsim_mean=float(np.mean(gains)),
        eventsim_std=float(np.std(gains)),
        drop_rate=float(np.mean(drops)),
    )

"""Request-level event-driven simulation of the whole Figure-1 system.

Where the Monte-Carlo engine computes steady-state placements, this
engine replays individual requests through a *real* cache policy, a
partitioned cluster and per-node queues with capacities — so saturation,
drops and latency become observable rather than inferred.  The
cross-validation bench (``benchmarks/bench_eventsim.py``) confirms both
engines agree on the paper's headline quantity (the normalized max
load) within sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..cache.base import Cache
from ..cache.perfect import PerfectCache
from ..chaos.config import ChaosConfig
from ..chaos.schedule import NodeStateTracker
from ..cluster.cluster import Cluster
from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError, SimulationError
from ..obs.tracer import as_tracer
from ..rng import RngFactory
from ..types import LoadVector
from ..workload.distributions import KeyDistribution
from . import kernel as _kernel
from .engine import EventScheduler
from .queueing import NodeServer
from .requests import Request

__all__ = ["EventDrivenSimulator", "EventSimResult"]


def _latency_stats(latencies: np.ndarray) -> Tuple[float, float, float, float]:
    """``(mean, p50, p95, p99)`` of a latency sample (``nan`` when empty)."""
    if not latencies.size:
        nan = float("nan")
        return nan, nan, nan, nan
    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    return float(latencies.mean()), float(p50), float(p95), float(p99)


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven run.

    Attributes
    ----------
    duration:
        Time span covered by the arrivals (seconds).
    frontend_hits, backend_queries:
        Requests absorbed by the cache vs sent to nodes.
    served, dropped:
        Per-node outcome counts.
    arrival_loads:
        Per-node *offered* rates (arrivals/duration) — comparable to the
        Monte-Carlo engine's load vectors.
    normalized_max:
        Max offered node rate over ``R/n`` — the attack gain realised.
    drop_rate:
        Dropped back-end requests / back-end requests.
    latency_mean, latency_p50, latency_p95, latency_p99:
        Back-end response-time statistics (``nan`` when nothing was
        served).
    cache_hit_rate:
        Front-end hit fraction over the run.
    unavailable, stale_hits:
        Fault-injection outcomes (always 0 without ``chaos``): requests
        whose every replica was down when retries ran out, and the
        subset the front end answered stale.
    retries, failovers:
        Redispatch attempts scheduled by the retry policy, and the ones
        that landed on a surviving replica.
    crash_lost:
        Requests lost from node queues at crash instants (a subset of
        ``dropped``).
    failure_events:
        Schedule events applied during the run (0 without ``chaos``).
    """

    duration: float
    frontend_hits: int
    backend_queries: int
    served: np.ndarray
    dropped: np.ndarray
    arrival_loads: LoadVector
    normalized_max: float
    drop_rate: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cache_hit_rate: float
    unavailable: int = 0
    stale_hits: int = 0
    retries: int = 0
    failovers: int = 0
    crash_lost: int = 0
    failure_events: int = 0

    def describe(self) -> str:
        """Human-readable summary block."""
        lines = [
            f"duration {self.duration:.3f}s, cache hit rate {self.cache_hit_rate:.3f}",
            f"back-end queries {self.backend_queries}, drop rate {self.drop_rate:.4f}",
            f"normalized max offered load {self.normalized_max:.3f}",
            (
                f"latency mean {self.latency_mean*1e3:.2f}ms, "
                f"p50 {self.latency_p50*1e3:.2f}ms, "
                f"p95 {self.latency_p95*1e3:.2f}ms, "
                f"p99 {self.latency_p99*1e3:.2f}ms"
            ),
        ]
        if self.failure_events:
            lines.append(
                f"chaos: {self.failure_events} failure events, "
                f"{self.retries} retries ({self.failovers} failovers), "
                f"{self.unavailable} unavailable "
                f"({self.stale_hits} served stale), "
                f"{self.crash_lost} lost to crashes"
            )
        return "\n".join(lines)


class EventDrivenSimulator:
    """Replay a query stream through cache -> cluster -> node queues.

    Parameters
    ----------
    params:
        System parameters; ``params.node_capacity`` (or
        ``node_capacity``) sets each node's service rate.  The paper's
        capacity story needs one: default is ``4 R / n`` — 4x headroom
        over a perfectly even split.
    distribution:
        The access pattern to replay.
    cache:
        Front-end policy; defaults to the paper's perfect cache pinned
        to the distribution's true top-``c``.
    cluster:
        Back-end; defaults to a random-table-partitioned cluster with a
        private seed.
    routing:
        How a replica is picked per request: ``"pin"`` (each key is
        pinned to the group member with fewest pinned keys at first
        sight — the theory model), ``"random"`` (uniform per query) or
        ``"least-outstanding"`` (per query, the group member with the
        shortest queue — what smart load-balancing proxies do).
    queue_limit, service:
        Forwarded to every :class:`~repro.sim.queueing.NodeServer`.
    seed:
        Root seed for arrivals, routing and the cluster secret.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; each :meth:`run`
        publishes deterministic counters (per-node forwarded / served /
        shed, cache hits/misses per policy, event counts) and simulated
        latency histograms.  The default ``None`` records nothing and
        leaves the run byte-identical to an uninstrumented one.
    tracer:
        Optional :class:`repro.obs.Tracer` recording wall-clock phase
        spans (``workload-gen`` -> ``event-loop`` -> ``report``).
    monitor:
        Optional :class:`repro.obs.LoadMonitor`; each :meth:`run` feeds
        it every request on the simulated clock (``begin_run`` ->
        ``record_request`` per arrival -> ``finalize``), producing
        sliding-window telemetry, the streaming gain estimate and
        alerts.  Like ``metrics``, ``None`` records nothing and leaves
        the run byte-identical to an unmonitored one.
    trace:
        Optional :class:`repro.obs.FlightRecorder`; each :meth:`run`
        captures a causal trace record per hash-sampled request (key,
        prefix bucket, client, replica group, node, cache-tree path,
        queue wait, service time, chaos annotations) into the
        recorder's bounded ring and feeds its streaming attack
        attribution engine.  The sampler is keyed-hash based and draws
        nothing from the engine RNG streams, so ``None`` (the default)
        and tracing-on runs produce bit-identical results, metrics and
        monitor telemetry.
    chaos:
        Optional :class:`repro.chaos.ChaosConfig`.  When set, each run
        replays a failure schedule (explicit, or synthesised per trial
        from the ``(seed, trial)`` stream): crashed nodes lose their
        queues and reject traffic, the front end fails over across
        surviving replicas under the config's
        :class:`~repro.chaos.RetryPolicy`, and requests with no
        surviving replica are counted unavailable (optionally served
        stale).  ``None`` keeps the run byte-identical to the pre-chaos
        engine — the default-off contract the observability sinks keep.
    engine:
        ``"legacy"`` (default) replays requests one event at a time
        through the binary-heap scheduler; ``"fast"`` routes runs
        through the batched struct-of-arrays kernel
        (:mod:`repro.sim.kernel`) whenever the configuration allows it
        — static cache residency, pin/random routing, no chaos — and
        falls back to the legacy loop otherwise.  Both engines are
        bit-identical in results, metrics, monitor telemetry and RNG
        consumption; :attr:`last_engine` records which path the most
        recent :meth:`run` actually took.
    """

    def __init__(
        self,
        params: SystemParameters,
        distribution: KeyDistribution,
        cache: Optional[Cache] = None,
        cluster: Optional[Cluster] = None,
        routing: str = "pin",
        queue_limit: int = 64,
        service: str = "deterministic",
        node_capacity: Optional[float] = None,
        seed: Optional[int] = None,
        metrics=None,
        tracer=None,
        monitor=None,
        trace=None,
        chaos: Optional[ChaosConfig] = None,
        engine: str = "legacy",
    ) -> None:
        if distribution.m != params.m:
            raise ConfigurationError(
                f"distribution covers {distribution.m} keys, system serves {params.m}"
            )
        if routing not in ("pin", "random", "least-outstanding"):
            raise ConfigurationError(f"unknown routing {routing!r}")
        if engine not in ("legacy", "fast"):
            raise ConfigurationError(f"unknown engine {engine!r}")
        if params.rate <= 0:
            raise ConfigurationError("event-driven simulation needs a positive rate")
        self._params = params
        self._distribution = distribution
        self._routing = routing
        self._factory = RngFactory(seed)
        if cache is None:
            cache = PerfectCache.from_distribution(
                distribution.probabilities(), params.c
            )
        self._cache = cache
        if cluster is None:
            cluster = Cluster(
                n=params.n, d=params.d, m=params.m,
                seed=None if seed is None else seed + 1,
            )
        if cluster.n != params.n or cluster.d != params.d:
            raise ConfigurationError("cluster does not match params (n or d differ)")
        self._cluster = cluster
        capacity = node_capacity
        if capacity is None:
            capacity = params.node_capacity
        if capacity is None:
            capacity = 4.0 * params.rate / params.n
        self._capacity = capacity
        self._queue_limit = queue_limit
        self._service = service
        self._pins: Dict[int, int] = {}
        self._pin_counts = np.zeros(params.n, dtype=np.int64)
        self._metrics = metrics
        self._tracer = tracer
        self._monitor = monitor if monitor is not None and monitor.enabled else None
        self._trace = trace if trace is not None and trace.enabled else None
        if chaos is not None and not isinstance(chaos, ChaosConfig):
            raise ConfigurationError(
                f"chaos must be a ChaosConfig or None, got {type(chaos).__name__}"
            )
        self._chaos = chaos
        self._engine = engine
        #: Which path the most recent :meth:`run` took: ``"fast"`` when
        #: the batched kernel ran, ``"legacy"`` otherwise (including
        #: fast-engine runs that fell back).  ``None`` before any run.
        self.last_engine: Optional[str] = None

    @property
    def cache(self) -> Cache:
        """The front-end cache instance (inspect stats after a run)."""
        return self._cache

    @property
    def cluster(self) -> Cluster:
        """The back-end cluster."""
        return self._cluster

    @property
    def engine(self) -> str:
        """The engine this simulator was configured with."""
        return self._engine

    def _publish_run_metrics(
        self,
        n_queries: int,
        frontend_hits: int,
        backend: int,
        node_arrivals: np.ndarray,
        served: np.ndarray,
        dropped: np.ndarray,
        latencies: np.ndarray,
    ) -> None:
        """Flush one run's deterministic counters into the registry.

        Everything recorded here derives from simulated state (event
        counts and simulated clock latencies), so the values are
        identical regardless of wall-clock, host or worker count.
        """
        metrics = self._metrics
        metrics.counter("requests_total").inc(n_queries)
        metrics.counter("frontend_hits_total").inc(frontend_hits)
        metrics.counter("backend_queries_total").inc(backend)
        self._cache.publish_metrics(metrics)
        for node in range(self._params.n):
            label = str(node)
            if node_arrivals[node]:
                metrics.counter("node_forwarded_total", node=label).inc(
                    int(node_arrivals[node])
                )
            if served[node]:
                metrics.counter("node_served_total", node=label).inc(int(served[node]))
            if dropped[node]:
                metrics.counter("node_shed_total", node=label).inc(int(dropped[node]))
        if latencies.size:
            metrics.histogram("backend_latency_seconds").observe_many(latencies.tolist())

    def _route(
        self, key: int, servers, gen: np.random.Generator
    ) -> int:
        group = self._cluster.replica_group(key)
        if self._routing == "random":
            return int(group[int(gen.integers(0, group.size))])
        if self._routing == "least-outstanding":
            outstanding = [servers[int(node)].outstanding for node in group]
            return int(group[int(np.argmin(outstanding))])
        # "pin": sticky key -> node assignment, least pinned at first sight.
        pinned = self._pins.get(key)
        if pinned is None:
            counts = self._pin_counts[group]
            pinned = int(group[int(np.argmin(counts))])
            self._pins[key] = pinned
            self._pin_counts[pinned] += 1
        return pinned

    def run(self, n_queries: int, trial: int = 0) -> EventSimResult:
        """Replay ``n_queries`` Poisson arrivals; returns the result.

        ``trial`` selects an independent randomness stream so repeated
        runs of the same simulator are statistically independent.

        With ``engine="fast"`` the run goes through the batched kernel
        when :func:`repro.sim.kernel.supports` allows it; the result is
        bit-identical either way.
        """
        if n_queries < 1:
            raise SimulationError(f"need at least one query, got {n_queries}")
        if self._engine == "fast" and _kernel.supports(self):
            self.last_engine = "fast"
            return _kernel.run_fast(self, n_queries, trial)
        self.last_engine = "legacy"
        return self._run_legacy(n_queries, trial)

    def _run_legacy(self, n_queries: int, trial: int) -> EventSimResult:
        """The per-event scheduler path (also the fast engine's fallback)."""
        params = self._params
        tracer = as_tracer(self._tracer)
        arrivals_gen = self._factory.generator("eventsim-arrivals", trial=trial)
        routing_gen = self._factory.generator("eventsim-routing", trial=trial)
        with tracer.span("workload-gen"):
            keys = self._distribution.sample(n_queries, rng=arrivals_gen)
            gaps = arrivals_gen.exponential(1.0 / params.rate, size=n_queries)
            times = np.cumsum(gaps)
            duration = float(times[-1])

        scheduler = EventScheduler(metrics=self._metrics)
        servers = [
            NodeServer(
                node_id=i,
                service_rate=self._capacity,
                queue_limit=self._queue_limit,
                service=self._service,
                rng=self._factory.generator("eventsim-service", trial=trial * params.n + i),
            )
            for i in range(params.n)
        ]

        frontend_hits = 0
        backend = 0
        node_arrivals = np.zeros(params.n, dtype=np.int64)
        monitor = self._monitor
        chaos = self._chaos
        tracker: Optional[NodeStateTracker] = None
        schedule = None
        chaos_stats = {
            "unavailable": 0, "stale_hits": 0, "retries": 0,
            "failovers": 0, "events": 0,
        }
        fetched_keys: Set[int] = set()
        if chaos is not None:
            schedule = chaos.schedule_for(
                params.n, duration,
                rng=self._factory.generator("chaos-schedule", trial=trial),
            )
            tracker = NodeStateTracker(params.n)
        # A non-degenerate cache tree attributes each hit to the
        # (layer, shard) that served it; a degenerate (1-layer/1-shard)
        # tree declares no layers, so its monitor stream stays
        # byte-identical to the flat path — the differential contract.
        tree = (
            self._cache
            if getattr(self._cache, "HIERARCHICAL", False) else None
        )
        layered = tree is not None and not tree.degenerate
        if monitor is not None:
            monitor.begin_run(
                trial=trial, n=params.n, rate=params.rate,
                chaos=chaos is not None,
                layers=tree.widths if layered else None,
            )
        # The trace sampler is keyed-hash based (no RNG draws), so none
        # of this perturbs the arrival/routing/service streams above.
        recorder = self._trace
        trace_mask = None
        if recorder is not None:
            recorder.begin_run(
                trial=trial, m=params.m, chaos=chaos is not None,
                client_map=self._distribution.client_map(),
                group_of=self._cluster.replica_group,
            )
            trace_mask = recorder.sample_mask(keys)

        def make_failure_event(event):
            def fire(sched: EventScheduler, now: float) -> None:
                changed = tracker.apply(event)
                if not changed:
                    return
                chaos_stats["events"] += 1
                server = servers[event.node]
                if event.kind == "crash":
                    server.crash(now)
                    if monitor is not None:
                        monitor.record_node_event(now, event.node, up=False)
                elif event.kind == "recover":
                    server.recover(now)
                    if monitor is not None:
                        monitor.record_node_event(now, event.node, up=True)
                elif event.kind == "slow":
                    server.set_rate_factor(event.factor)
                else:
                    server.set_rate_factor(1.0)

            return fire

        def chaos_dispatch(
            sched: EventScheduler, now: float, key: int, t0: float,
            attempt: int, tried: Tuple[int, ...],
            traced: bool = False, index: int = 0,
        ) -> None:
            policy = chaos.retry
            if attempt == 1:
                node: Optional[int] = self._route(key, servers, routing_gen)
            else:
                # Having timed out, the front end asks membership for a
                # surviving replica it has not tried yet (group order:
                # deterministic, no extra RNG draws).
                node = None
                for cand in self._cluster.replica_group(key):
                    cand = int(cand)
                    if cand not in tried and tracker.is_up(cand):
                        node = cand
                        break
            if node is not None and tracker.is_up(node):
                node_arrivals[node] += 1
                if monitor is not None:
                    monitor.record_request(now, key, node)
                trace_rec = (
                    recorder.record_backend(now, key, index, node, attempts=attempt)
                    if traced else None
                )
                servers[node].arrive(
                    sched, Request(key=key, arrival_time=t0, trace=trace_rec)
                )
                fetched_keys.add(key)
                if attempt > 1:
                    chaos_stats["failovers"] += 1
                return
            exhausted = attempt >= policy.max_attempts
            if node is not None:
                tried = tried + (node,)
                exhausted = exhausted or len(tried) >= self._cluster.d
            if node is None or exhausted:
                chaos_stats["unavailable"] += 1
                if chaos.serve_stale and key in fetched_keys:
                    chaos_stats["stale_hits"] += 1
                if monitor is not None:
                    monitor.record_unavailable(now, key)
                if traced:
                    recorder.record_unavailable(now, key, index, attempts=attempt)
                return
            chaos_stats["retries"] += 1
            sched.schedule(
                now + policy.delay(attempt),
                lambda s, t: chaos_dispatch(
                    s, t, key, t0, attempt + 1, tried, traced, index
                ),
            )

        def make_arrival(key: int, t: float, traced: bool = False, index: int = 0):
            def fire(sched: EventScheduler, now: float) -> None:
                nonlocal frontend_hits, backend
                if self._cache.access(int(key)):
                    frontend_hits += 1
                    if monitor is not None:
                        if layered:
                            layer, shard = self._cache.last_hit
                            monitor.record_request(
                                now, int(key), layer=layer, shard=shard
                            )
                        else:
                            monitor.record_request(now, int(key))
                    if traced:
                        if layered:
                            layer, shard = self._cache.last_hit
                            recorder.record_hit(
                                now, int(key), index, layer=layer, shard=shard
                            )
                        else:
                            recorder.record_hit(now, int(key), index)
                    return
                backend += 1
                if tracker is not None:
                    chaos_dispatch(sched, now, int(key), now, 1, (), traced, index)
                    return
                node = self._route(int(key), servers, routing_gen)
                node_arrivals[node] += 1
                if monitor is not None:
                    monitor.record_request(now, int(key), node)
                trace_rec = (
                    recorder.record_backend(now, int(key), index, node)
                    if traced else None
                )
                servers[node].arrive(
                    sched, Request(key=int(key), arrival_time=now, trace=trace_rec)
                )

            return fire

        with tracer.span("event-loop"):
            if schedule is not None:
                # Failure events are scheduled first so that at equal
                # timestamps a crash lands before the colliding arrival
                # (the scheduler breaks ties by insertion order).
                for event in schedule:
                    scheduler.schedule(float(event.time), make_failure_event(event))
            if trace_mask is None:
                for key, t in zip(keys.tolist(), times.tolist()):
                    scheduler.schedule(float(t), make_arrival(key, float(t)))
            else:
                for index, (key, t) in enumerate(
                    zip(keys.tolist(), times.tolist())
                ):
                    scheduler.schedule(
                        float(t),
                        make_arrival(
                            key, float(t), bool(trace_mask[index]), index
                        ),
                    )
            scheduler.run()

        with tracer.span("report"):
            served = np.array([s.served for s in servers], dtype=np.int64)
            dropped = np.array([s.dropped for s in servers], dtype=np.int64)
            latencies = np.concatenate(
                [np.asarray(s.latencies) for s in servers]
            ) if served.sum() else np.empty(0)
            arrival_loads = LoadVector(
                loads=node_arrivals.astype(float) / duration, total_rate=params.rate
            )
            crash_lost = int(sum(s.crash_lost for s in servers))
            if self._metrics is not None:
                self._publish_run_metrics(
                    n_queries, frontend_hits, backend,
                    node_arrivals, served, dropped, latencies,
                )
                if chaos is not None:
                    metrics = self._metrics
                    metrics.counter("chaos_failure_events_total").inc(
                        chaos_stats["events"]
                    )
                    metrics.counter("chaos_retries_total").inc(chaos_stats["retries"])
                    metrics.counter("chaos_failovers_total").inc(
                        chaos_stats["failovers"]
                    )
                    metrics.counter("chaos_unavailable_total").inc(
                        chaos_stats["unavailable"]
                    )
                    metrics.counter("chaos_stale_hits_total").inc(
                        chaos_stats["stale_hits"]
                    )
                    metrics.counter("chaos_crash_lost_total").inc(crash_lost)
            suspects = None
            attribution_alerts = None
            if recorder is not None:
                trace_summary = recorder.finalize(duration)
                if trace_summary is not None:
                    suspects = trace_summary["suspects"]
                    attribution_alerts = trace_summary["alerts"]
            if monitor is not None:
                monitor.finalize(
                    duration,
                    suspects=suspects,
                    attribution_alerts=attribution_alerts,
                )
        latency_mean, latency_p50, latency_p95, latency_p99 = _latency_stats(
            latencies
        )
        return EventSimResult(
            duration=duration,
            frontend_hits=frontend_hits,
            backend_queries=backend,
            served=served,
            dropped=dropped,
            arrival_loads=arrival_loads,
            normalized_max=arrival_loads.normalized_max,
            drop_rate=float(dropped.sum() / backend) if backend else 0.0,
            latency_mean=latency_mean,
            latency_p50=latency_p50,
            latency_p95=latency_p95,
            latency_p99=latency_p99,
            cache_hit_rate=frontend_hits / n_queries,
            unavailable=chaos_stats["unavailable"],
            stale_hits=chaos_stats["stale_hits"],
            retries=chaos_stats["retries"],
            failovers=chaos_stats["failovers"],
            crash_lost=crash_lost,
            failure_events=chaos_stats["events"],
        )

"""Batched struct-of-arrays event kernel (``engine="fast"``).

The legacy scheduler pays interpreter overhead per event: one closure
allocation and one heap operation per arrival and per completion, plus a
Python cache lookup and routing call per request.  For the common
measurement configuration — a static front-end cache, stateless-enough
routing and no fault injection — every one of those decisions is known
before the first event fires, so this kernel resolves them in bulk:

- **hit/miss** — one vectorized membership test of the sampled key
  stream against the cache's fixed resident set;
- **routing** — replica groups gathered per unique key, pin assignments
  resolved in first-appearance order (mutating the simulator's sticky
  pin state exactly like the legacy path), random picks drawn as one
  ``integers(0, d, size=n_miss)`` batch;
- **service times** — one ``standard_exponential`` batch per node
  (scaled by ``1/rate``), consumed in service-start order;
- **queueing** — per node, a tight loop over primitive floats applying
  the single-server FIFO recurrence ``start = max(t, dep_prev)``,
  ``dep = start + s`` with drop-on-full admission.

The per-node loop stays in Python on purpose: the departure recurrence
is sequential, and evaluating it with the same scalar float operations
as :class:`~repro.sim.queueing.NodeServer` is what keeps the kernel
**bit-identical** to the legacy engine — the vectorized closed form
(``np.maximum.accumulate``) is algebraically equal but not IEEE-754
identical.  Identity holds for results, metrics exports, monitor
telemetry and RNG stream consumption; ``tests/test_kernel_differential.py``
pins it per configuration and the golden eventsim fixture pins it
against history.

Configurations the batch transform cannot express fall back to the
legacy scheduler (see :func:`supports`): caches whose residency mutates
per access (LRU family), least-outstanding routing (depends on live
queue depths), and chaos schedules (node state changes mid-run).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..obs.tracer import as_tracer
from ..types import LoadVector
from .queueing import DEFAULT_LATENCY_SAMPLE_LIMIT

__all__ = ["supports", "run_fast"]


def supports(sim) -> bool:
    """Whether the batched kernel can replay ``sim`` exactly.

    Requires a statically-resident cache (hit/miss precomputable), pin
    or random routing (resolvable without live queue state) and no
    chaos schedule (no mid-run node state changes).

    Hierarchical caches are rejected outright, *before* the residency
    check: a :class:`~repro.cache.tree.CacheTree` of perfect caches
    reports ``STATIC_RESIDENCY`` per shard, but residency migrates
    between layers on every miss and hits must be attributed to a
    (layer, shard) pair — the single-resident-set precomputation would
    silently honor only the edge layer.
    """
    return (
        sim._chaos is None
        and sim._routing in ("pin", "random")
        and not getattr(sim._cache, "HIERARCHICAL", False)
        and getattr(sim._cache, "STATIC_RESIDENCY", False)
    )


def _static_hits(cache, keys: np.ndarray) -> np.ndarray:
    """Vectorized hit mask against a static cache's resident set."""
    if cache.capacity == 0 or len(cache) == 0:
        return np.zeros(keys.shape, dtype=bool)
    resident = np.fromiter(cache.keys(), dtype=np.int64)
    return np.isin(keys, resident)


def _route_batch(
    sim, miss_keys: np.ndarray, routing_gen: np.random.Generator
) -> np.ndarray:
    """Target node per backend miss, consuming RNG like the legacy path.

    Both modes resolve replica groups once per *unique* key.  Random
    routing draws its uniform picks as one batch — element-for-element
    the same stream a per-request ``integers(0, d)`` loop consumes.
    Pin routing replays the legacy first-sight rule (least-pinned group
    member wins, lowest index on ties) over unique keys in order of
    first appearance, mutating the simulator's persistent pin state so
    later runs on the same instance see identical stickiness.
    """
    cluster = sim._cluster
    if sim._routing == "random":
        unique, inverse = np.unique(miss_keys, return_inverse=True)
        groups = cluster.partitioner.replica_groups(unique)
        draws = routing_gen.integers(0, cluster.d, size=miss_keys.size)
        return np.asarray(groups[inverse, draws], dtype=np.int64)
    # "pin"
    unique, first_idx, inverse = np.unique(
        miss_keys, return_index=True, return_inverse=True
    )
    pins = sim._pins
    pin_counts = sim._pin_counts
    unseen = [
        (int(first_idx[i]), int(unique[i]))
        for i in range(unique.size)
        if int(unique[i]) not in pins
    ]
    if unseen:
        unseen.sort()
        new_keys = np.array([key for _, key in unseen], dtype=np.int64)
        groups = cluster.partitioner.replica_groups(new_keys)
        for key, group in zip(new_keys.tolist(), groups):
            counts = pin_counts[group]
            pinned = int(group[int(np.argmin(counts))])
            pins[key] = pinned
            pin_counts[pinned] += 1
    assigned = np.fromiter(
        (pins[int(key)] for key in unique), dtype=np.int64, count=unique.size
    )
    return assigned[inverse]


def _fifo_drain(
    arrival_times: List[float],
    service_times,
    queue_limit: int,
    sample_limit: int = DEFAULT_LATENCY_SAMPLE_LIMIT,
    trace_out: Optional[List[Optional[Tuple[float, float]]]] = None,
) -> Tuple[int, int, List[float]]:
    """Single-server FIFO with a bounded queue, as scalar float math.

    ``service_times`` is either a float (deterministic service) or a
    list indexed by admission order (pre-drawn exponential samples).
    Returns ``(served, dropped, latency_samples)``.  The recurrence and
    the drop rule mirror :class:`~repro.sim.queueing.NodeServer` under
    the legacy scheduler, including the tie semantics: an arrival at
    exactly a departure time still finds the request in the system,
    because the scheduler fires arrivals (scheduled first) before
    completions at equal timestamps — hence the strict ``<`` when
    advancing the departed pointer.

    ``trace_out`` (flight-recorder runs only) collects one entry per
    arrival in order: ``(service_start, departure)`` for admitted
    requests, ``None`` for drops.  ``start`` and ``dep`` here are the
    same scalar float expressions :class:`~repro.sim.queueing.NodeServer`
    evaluates, so traced ``wait``/``service`` match the legacy engine
    bit-for-bit.
    """
    constant = isinstance(service_times, float)
    departures: List[float] = []
    latencies: List[float] = []
    record = latencies.append
    depart = departures.append
    admitted = 0
    departed = 0
    dropped = 0
    in_system_cap = queue_limit + 1
    for t in arrival_times:
        while departed < admitted and departures[departed] < t:
            departed += 1
        if admitted - departed >= in_system_cap:
            dropped += 1
            if trace_out is not None:
                trace_out.append(None)
            continue
        start = departures[admitted - 1] if admitted > departed else t
        service = service_times if constant else service_times[admitted]
        dep = start + service
        depart(dep)
        admitted += 1
        if len(latencies) < sample_limit:
            record(dep - t)
        if trace_out is not None:
            trace_out.append((start, dep))
    return admitted, dropped, latencies


def run_fast(sim, n_queries: int, trial: int):
    """One batched run; drop-in replacement for the legacy event loop.

    Consumes the same RNG streams in the same order as the legacy
    scheduler and returns a bit-identical
    :class:`~repro.sim.eventsim.EventSimResult`.  Callers must have
    checked :func:`supports` first.
    """
    from .eventsim import EventSimResult, _latency_stats

    params = sim._params
    n = params.n
    tracer = as_tracer(sim._tracer)
    arrivals_gen = sim._factory.generator("eventsim-arrivals", trial=trial)
    routing_gen = sim._factory.generator("eventsim-routing", trial=trial)
    with tracer.span("workload-gen"):
        keys = sim._distribution.sample(n_queries, rng=arrivals_gen)
        gaps = arrivals_gen.exponential(1.0 / params.rate, size=n_queries)
        times = np.cumsum(gaps)
        duration = float(times[-1])

    monitor = sim._monitor
    if monitor is not None:
        monitor.begin_run(trial=trial, n=n, rate=params.rate, chaos=False)
    # Trace sampling is keyed-hash based: no RNG draws, so the arrival /
    # routing / service streams above stay byte-identical with it on.
    recorder = sim._trace
    trace_mask = None
    if recorder is not None:
        recorder.begin_run(
            trial=trial, m=params.m, chaos=False,
            client_map=sim._distribution.client_map(),
            group_of=sim._cluster.replica_group,
        )
        trace_mask = recorder.sample_mask(keys)

    with tracer.span("event-loop"):
        with tracer.span("kernel-resolve"):
            hit_mask = _static_hits(sim._cache, keys)
            frontend_hits = int(hit_mask.sum())
            backend = n_queries - frontend_hits
            stats = sim._cache.stats
            stats.hits += frontend_hits
            stats.misses += backend
            if backend:
                miss_mask = ~hit_mask
                nodes = _route_batch(sim, keys[miss_mask], routing_gen)
                miss_times = times[miss_mask]
                node_arrivals = np.bincount(nodes, minlength=n).astype(np.int64)
            else:
                nodes = np.empty(0, dtype=np.int64)
                miss_times = np.empty(0)
                node_arrivals = np.zeros(n, dtype=np.int64)
        if monitor is not None:
            with tracer.span("kernel-monitor"):
                node_iter = iter(nodes.tolist())
                record = monitor.record_request
                for t, key, hit in zip(
                    times.tolist(), keys.tolist(), hit_mask.tolist()
                ):
                    if hit:
                        record(t, key)
                    else:
                        record(t, key, next(node_iter))
        with tracer.span("kernel-queues"):
            served = np.zeros(n, dtype=np.int64)
            dropped = np.zeros(n, dtype=np.int64)
            per_node_latencies: List[List[float]] = []
            node_details: List[Optional[List]] = [None] * n
            if backend:
                order = np.argsort(nodes, kind="stable")
                sorted_times = miss_times[order]
                bounds = np.searchsorted(nodes[order], np.arange(n + 1))
                exponential = sim._service == "exponential"
                mean_service = 1.0 / sim._capacity
                for node in range(n):
                    lo, hi = int(bounds[node]), int(bounds[node + 1])
                    if lo == hi:
                        continue
                    if exponential:
                        service_gen = sim._factory.generator(
                            "eventsim-service", trial=trial * n + node
                        )
                        service = (
                            mean_service
                            * service_gen.standard_exponential(hi - lo)
                        ).tolist()
                    else:
                        service = mean_service
                    detail: Optional[List] = (
                        [] if recorder is not None else None
                    )
                    node_served, node_dropped, latencies = _fifo_drain(
                        sorted_times[lo:hi].tolist(), service,
                        sim._queue_limit, trace_out=detail,
                    )
                    node_details[node] = detail
                    served[node] = node_served
                    dropped[node] = node_dropped
                    if latencies:
                        per_node_latencies.append(latencies)
        if recorder is not None:
            with tracer.span("kernel-trace"):
                # Replay only the sampled stream positions, in global
                # arrival order — the same emission order the legacy
                # scheduler produces.
                if backend:
                    miss_index = np.cumsum(miss_mask) - 1
                    ranks = np.empty(backend, dtype=np.int64)
                    ranks[order] = np.arange(backend, dtype=np.int64)
                    local_ranks = ranks - bounds[nodes]
                for i in np.flatnonzero(trace_mask).tolist():
                    t = float(times[i])
                    key = int(keys[i])
                    if hit_mask[i]:
                        recorder.record_hit(t, key, i)
                        continue
                    pos = int(miss_index[i])
                    node = int(nodes[pos])
                    rec = recorder.record_backend(t, key, i, node)
                    detail = node_details[node][int(local_ranks[pos])]
                    if detail is None:
                        rec["status"] = "dropped"
                    else:
                        start, dep = detail
                        rec["wait"] = start - t
                        rec["service"] = dep - start

    with tracer.span("report"):
        total_served = int(served.sum())
        latencies_arr = (
            np.concatenate([np.asarray(lat) for lat in per_node_latencies])
            if total_served
            else np.empty(0)
        )
        arrival_loads = LoadVector(
            loads=node_arrivals.astype(float) / duration, total_rate=params.rate
        )
        metrics = sim._metrics
        if metrics is not None:
            # The legacy scheduler flushes its event counters once per
            # run: every arrival plus one completion per served request
            # fired, and the queue drained.
            metrics.counter("events_fired_total").inc(n_queries + total_served)
            metrics.gauge("events_pending").set(0)
            sim._publish_run_metrics(
                n_queries, frontend_hits, backend,
                node_arrivals, served, dropped, latencies_arr,
            )
        suspects = None
        attribution_alerts = None
        if recorder is not None:
            trace_summary = recorder.finalize(duration)
            if trace_summary is not None:
                suspects = trace_summary["suspects"]
                attribution_alerts = trace_summary["alerts"]
        if monitor is not None:
            monitor.finalize(
                duration,
                suspects=suspects,
                attribution_alerts=attribution_alerts,
            )

    latency_mean, latency_p50, latency_p95, latency_p99 = _latency_stats(
        latencies_arr
    )
    return EventSimResult(
        duration=duration,
        frontend_hits=frontend_hits,
        backend_queries=backend,
        served=served,
        dropped=dropped,
        arrival_loads=arrival_loads,
        normalized_max=arrival_loads.normalized_max,
        drop_rate=float(dropped.sum() / backend) if backend else 0.0,
        latency_mean=latency_mean,
        latency_p50=latency_p50,
        latency_p95=latency_p95,
        latency_p99=latency_p99,
        cache_hit_rate=frontend_hits / n_queries,
    )

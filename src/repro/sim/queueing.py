"""Per-node FIFO queueing with finite buffers and drops.

Each back-end node is a single server with service rate ``r_i`` (the
paper's per-node capacity), a bounded FIFO queue, and a drop-on-full
admission rule — the simplest model in which "saturating a node" has an
observable meaning: latency explodes, then requests are lost.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import as_generator
from .engine import EventScheduler
from .requests import Request

__all__ = ["DEFAULT_LATENCY_SAMPLE_LIMIT", "NodeServer"]

RngLike = Union[None, int, np.random.Generator]

#: Default cap on retained latency samples per node (uniform head
#: sample); shared with the batched kernel so both engines truncate at
#: the same point.
DEFAULT_LATENCY_SAMPLE_LIMIT = 100_000


class NodeServer:
    """A single back-end node: one server, bounded FIFO queue.

    Parameters
    ----------
    node_id:
        Dense node id (for reporting).
    service_rate:
        Capacity ``r_i`` in queries/second.
    queue_limit:
        Max requests waiting (excluding the one in service); arrivals
        beyond it are dropped.
    service:
        ``"deterministic"`` (service time exactly ``1/r_i``, an M/D/1
        queue under Poisson arrivals) or ``"exponential"`` (M/M/1).
    latency_sample_limit:
        Cap on retained latency samples (uniform head sample) so long
        runs stay memory-bounded.
    """

    __slots__ = (
        "node_id",
        "service_rate",
        "queue_limit",
        "_service",
        "_rng",
        "_queue",
        "_in_service",
        "_latency_sample_limit",
        "down",
        "_epoch",
        "_rate_factor",
        "arrivals",
        "served",
        "dropped",
        "crash_lost",
        "busy_time",
        "latencies",
        "_service_started",
    )

    def __init__(
        self,
        node_id: int,
        service_rate: float,
        queue_limit: int = 64,
        service: str = "deterministic",
        rng: RngLike = None,
        latency_sample_limit: int = DEFAULT_LATENCY_SAMPLE_LIMIT,
    ) -> None:
        if service_rate <= 0:
            raise ConfigurationError(f"service_rate must be positive, got {service_rate}")
        if queue_limit < 0:
            raise ConfigurationError(f"queue_limit must be non-negative, got {queue_limit}")
        if service not in ("deterministic", "exponential"):
            raise ConfigurationError(
                f"service must be 'deterministic' or 'exponential', got {service!r}"
            )
        self.node_id = node_id
        self.service_rate = service_rate
        self.queue_limit = queue_limit
        self._service = service
        self._rng = as_generator(rng, f"node-server-{node_id}")
        self._queue: Deque[Request] = deque()
        self._in_service: Optional[Request] = None
        self._latency_sample_limit = latency_sample_limit
        # Fault-injection state (repro.chaos): a down node rejects
        # arrivals; crashing bumps the epoch so the stale completion
        # event already in the scheduler becomes a no-op.
        self.down = False
        self._epoch = 0
        self._rate_factor = 1.0
        # statistics
        self.arrivals = 0
        self.served = 0
        self.dropped = 0
        self.crash_lost = 0
        self.busy_time = 0.0
        self.latencies: List[float] = []
        self._service_started = 0.0

    @property
    def outstanding(self) -> int:
        """Requests on this node right now (queued + in service)."""
        return len(self._queue) + (1 if self._in_service is not None else 0)

    def arrive(self, scheduler: EventScheduler, request: Request) -> bool:
        """Offer a request at the current simulation time.

        Returns False (and counts a drop) when the queue is full.
        """
        self.arrivals += 1
        if self.down:
            self.dropped += 1
            if request.trace is not None:
                request.trace["status"] = "dropped"
            return False
        if self._in_service is None:
            self._begin_service(scheduler, request, scheduler.now)
            return True
        if len(self._queue) >= self.queue_limit:
            self.dropped += 1
            if request.trace is not None:
                request.trace["status"] = "dropped"
            return False
        self._queue.append(request)
        return True

    def crash(self, now: float) -> int:
        """Hard-fail the node: everything queued or in service is lost.

        Returns the number of requests lost.  The pending completion
        event stays in the scheduler but fires into a newer epoch, so
        it is ignored; :meth:`recover` brings the node back empty.
        """
        self._epoch += 1
        lost = len(self._queue)
        for request in self._queue:
            if request.trace is not None:
                request.trace["status"] = "lost"
        self._queue.clear()
        if self._in_service is not None:
            lost += 1
            if self._in_service.trace is not None:
                self._in_service.trace["status"] = "lost"
            self.busy_time += now - self._service_started
            self._in_service = None
        self.dropped += lost
        self.crash_lost += lost
        self.down = True
        return lost

    def recover(self, now: float) -> None:
        """Bring a crashed node back online (empty queue, idle server)."""
        del now
        self.down = False

    def set_rate_factor(self, factor: float) -> None:
        """Scale future service times by ``1/factor`` (slow-node state).

        The request currently in service keeps its already-scheduled
        completion time; only subsequent services see the new rate.
        """
        if factor <= 0:
            raise ConfigurationError(f"rate factor must be positive, got {factor}")
        self._rate_factor = factor

    def _service_time(self) -> float:
        rate = self.service_rate * self._rate_factor
        if self._service == "deterministic":
            return 1.0 / rate
        return float(self._rng.exponential(1.0 / rate))

    def _begin_service(
        self, scheduler: EventScheduler, request: Request, start: float
    ) -> None:
        self._in_service = request
        self._service_started = start
        # The scheduled epoch rides in the heap entry: if the node
        # crashes before the event fires, the epoch bump turns the stale
        # completion into a no-op without allocating a closure per
        # served request.
        scheduler.schedule(
            start + self._service_time(), self._on_complete, (self._epoch,)
        )

    def _on_complete(
        self, scheduler: EventScheduler, time: float, epoch: int
    ) -> None:
        if epoch == self._epoch:
            self._complete(scheduler, time)

    def _complete(self, scheduler: EventScheduler, time: float) -> None:
        request = self._in_service
        self._in_service = None
        self.served += 1
        self.busy_time += time - self._service_started
        if request.trace is not None:
            # Same scalar float expressions as the batched kernel's FIFO
            # recurrence, so traced wait/service match bit-for-bit.
            request.trace["wait"] = self._service_started - request.arrival_time
            request.trace["service"] = time - self._service_started
        if len(self.latencies) < self._latency_sample_limit:
            self.latencies.append(time - request.arrival_time)
        if self._queue:
            self._begin_service(scheduler, self._queue.popleft(), time)

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the server spent busy."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.busy_time / duration)

"""Multi-trial campaigns for the event-driven engine.

The Monte-Carlo engine has :func:`repro.sim.runner.run_trials`; this is
the queueing-engine counterpart.  Each trial replays an independent
arrival stream through a *fresh* cache and the same (secretly seeded)
cluster topology, then the campaign aggregates the operational metrics
the paper's analytic model cannot produce: drop rates, latency tails and
hit-rate distributions, alongside the usual normalized-max-load report.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.notation import SystemParameters
from ..exceptions import SimulationError
from ..obs.tracer import as_tracer
from ..types import LoadReport
from ..workload.distributions import KeyDistribution
from .eventsim import EventDrivenSimulator, EventSimResult
from .parallel import ParallelExecutor

__all__ = ["EventCampaign", "run_event_campaign"]


@dataclass(frozen=True)
class EventCampaign:
    """Aggregate of repeated event-driven runs of one configuration.

    Attributes
    ----------
    load_report:
        Normalized-max-load per trial, shaped like the Monte-Carlo
        engine's output so the two are directly comparable.
    results:
        The raw per-trial results (for anything not pre-aggregated).
    """

    load_report: LoadReport
    results: Tuple[EventSimResult, ...]

    @property
    def trials(self) -> int:
        """Number of runs aggregated."""
        return len(self.results)

    @property
    def mean_drop_rate(self) -> float:
        """Average back-end drop rate across trials."""
        return float(np.mean([r.drop_rate for r in self.results]))

    @property
    def worst_drop_rate(self) -> float:
        """Worst single-trial drop rate."""
        return float(np.max([r.drop_rate for r in self.results]))

    @property
    def mean_hit_rate(self) -> float:
        """Average front-end hit rate across trials."""
        return float(np.mean([r.cache_hit_rate for r in self.results]))

    @property
    def worst_p99_latency(self) -> float:
        """Worst per-trial p99 back-end latency (seconds; nan-safe)."""
        values = [r.latency_p99 for r in self.results]
        finite = [v for v in values if v == v]
        return float(np.max(finite)) if finite else float("nan")

    @property
    def total_failure_events(self) -> int:
        """Fault-injection events applied across all trials (0 = no chaos)."""
        return int(sum(r.failure_events for r in self.results))

    @property
    def total_unavailable(self) -> int:
        """Requests across all trials whose every replica was down."""
        return int(sum(r.unavailable for r in self.results))

    def describe(self) -> str:
        """Multi-line campaign summary."""
        lines = [
            f"{self.trials} event-driven trials",
            f"normalized max load: worst {self.load_report.worst_case:.3f}, "
            f"mean {self.load_report.mean:.3f}",
            f"cache hit rate (mean): {self.mean_hit_rate:.3f}",
            f"drop rate: mean {self.mean_drop_rate:.4f}, "
            f"worst {self.worst_drop_rate:.4f}",
            f"worst p99 latency: {self.worst_p99_latency * 1e3:.2f} ms",
        ]
        if self.total_failure_events:
            retries = sum(r.retries for r in self.results)
            failovers = sum(r.failovers for r in self.results)
            stale = sum(r.stale_hits for r in self.results)
            lines.append(
                f"chaos: {self.total_failure_events} failure events, "
                f"{retries} retries ({failovers} failovers), "
                f"{self.total_unavailable} unavailable ({stale} served stale)"
            )
        return "\n".join(lines)


def _event_campaign_trial(
    gen,
    trial: int,
    params: SystemParameters,
    distribution: KeyDistribution,
    n_queries: int,
    seed: Optional[int],
    cache_factory: Optional[Callable[[], object]],
    simulator_kwargs: dict,
    metrics=None,
    monitor=None,
    trace=None,
) -> EventSimResult:
    """One campaign trial (top-level, so process pools can pickle it).

    The event engine derives its randomness from ``(seed, trial)``
    internally — a fresh simulator and cache per trial, exactly like the
    serial loop — so the executor-provided ``gen`` goes unused and the
    campaign stays bit-identical across worker counts.

    Stateful inputs are deep-copied per trial for the same reason: a
    scan distribution's cursor or a selection policy's counters would
    otherwise advance across trials in whatever order the executor
    happens to run them (all of them serially, a worker's share when
    parallel), making results depend on the worker count.  Every trial
    therefore starts from the caller's initial state.

    ``metrics`` / ``monitor`` / ``trace`` are the per-trial registry,
    monitor and flight recorder the executor provides when the campaign
    is instrumented; the simulator publishes into them and the executor
    merges the snapshots in trial order.
    """
    del gen
    distribution = copy.deepcopy(distribution)
    if simulator_kwargs.get("cluster") is not None:
        simulator_kwargs = dict(simulator_kwargs)
        simulator_kwargs["cluster"] = copy.deepcopy(simulator_kwargs["cluster"])
    cache = cache_factory() if cache_factory is not None else None
    sim = EventDrivenSimulator(
        params, distribution, cache=cache, seed=seed, metrics=metrics,
        monitor=monitor, trace=trace, **simulator_kwargs
    )
    return sim.run(n_queries, trial=trial)


def run_event_campaign(
    params: SystemParameters,
    distribution: KeyDistribution,
    trials: int = 5,
    n_queries: int = 20_000,
    seed: Optional[int] = None,
    cache_factory: Optional[Callable[[], object]] = None,
    workers: int = 1,
    metrics=None,
    tracer=None,
    monitor=None,
    trace=None,
    **simulator_kwargs,
) -> EventCampaign:
    """Run ``trials`` independent event-driven replays and aggregate.

    Parameters
    ----------
    params, distribution:
        The system and access pattern (see
        :class:`~repro.sim.eventsim.EventDrivenSimulator`).
    trials, n_queries:
        Campaign size; each trial draws an independent arrival stream.
    cache_factory:
        Builds a *fresh* cache per trial (stateful policies must not
        leak warmth between trials).  ``None`` uses the per-simulator
        default (the perfect cache).  Must be picklable when
        ``workers > 1``.
    workers:
        Worker processes (``0`` = one per CPU, default ``1`` = serial);
        with an explicit ``seed`` the results are identical for every
        value — see :mod:`repro.sim.parallel`.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  Each trial records
        into a fresh per-trial registry (inside the worker when
        parallel) and the snapshots are merged here in trial order, so
        the aggregate values are identical for every ``workers`` value.
    tracer:
        Optional :class:`repro.obs.Tracer`; records campaign-level
        wall-clock spans (``trials`` -> ``aggregate``) in this process.
    monitor:
        Optional :class:`repro.obs.LoadMonitor`.  Each trial runs under
        a fresh per-trial monitor built from ``monitor.config`` (inside
        the worker when parallel); window, alert and run-summary records
        merge back here strictly in trial order, so the event log is
        identical for every ``workers`` value.  The campaign emits the
        single manifest record up front.
    trace:
        Optional :class:`repro.obs.FlightRecorder`.  Each trial runs
        under a fresh per-trial recorder built from ``trace.config`` and
        the campaign seed (inside the worker when parallel); trace
        records, suspects and attribution alerts merge back here
        strictly in trial order, so the exported trace JSONL is
        bit-identical for every ``workers`` value.
    simulator_kwargs:
        Forwarded to every :class:`EventDrivenSimulator` (routing,
        node_capacity, queue_limit, service, cluster...).
    """
    if trials < 1:
        raise SimulationError(f"need at least one trial, got {trials}")
    tracer = as_tracer(tracer)
    if monitor is not None and monitor.enabled:
        monitor.emit_manifest(
            engine="event-driven",
            trials=trials,
            n_queries=n_queries,
            seed=seed,
            distribution=distribution.name,
            n=params.n,
            rate=params.rate,
        )
    with tracer.span("event-campaign"):
        with tracer.span("trials"):
            with ParallelExecutor(workers=workers) as executor:
                results = executor.map_trials(
                    _event_campaign_trial,
                    trials,
                    seed=seed,
                    label="event-campaign",
                    args=(
                        params, distribution, n_queries, seed, cache_factory,
                        simulator_kwargs,
                    ),
                    pass_trial=True,
                    metrics=metrics,
                    monitor=monitor,
                    trace=trace,
                )
        with tracer.span("aggregate"):
            gains = np.array(
                [outcome.normalized_max for outcome in results], dtype=float
            )
            report = LoadReport(
                normalized_max_per_trial=gains,
                total_rate=params.rate,
                n_nodes=params.n,
                metadata={
                    "engine": "event-driven",
                    "n_queries": n_queries,
                    "distribution": distribution.name,
                },
            )
            if metrics is not None:
                metrics.counter("event_campaign_trials_total").inc(trials)
                metrics.histogram("trial_normalized_max").observe_many(gains.tolist())
    return EventCampaign(load_report=report, results=tuple(results))

"""Discrete-event core: a time-ordered event scheduler."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..exceptions import SimulationError

__all__ = ["EventScheduler"]

#: An event callback receives the scheduler and the firing time.
EventCallback = Callable[["EventScheduler", float], None]


class EventScheduler:
    """Minimal binary-heap event scheduler.

    Events fire in non-decreasing time order; ties break by insertion
    order (a monotone sequence number), which keeps runs deterministic.
    Callbacks may schedule further events, including at the current
    time.
    """

    def __init__(self, metrics=None) -> None:
        self._heap: List[Tuple[float, int, EventCallback, tuple]] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        # Optional repro.obs.MetricsRegistry; counters are flushed once
        # per run() call, never inside the event loop.
        self._metrics = metrics

    @property
    def now(self) -> float:
        """Current simulation time (last fired event's time)."""
        return self._now

    @property
    def pending(self) -> int:
        """Events waiting in the queue."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events fired so far."""
        return self._processed

    def schedule(
        self, time: float, callback: EventCallback, args: tuple = ()
    ) -> None:
        """Enqueue ``callback(scheduler, time, *args)`` to fire at ``time``.

        ``args`` lets hot callers pass per-event state (an epoch, a
        request) as a plain tuple riding in the heap entry instead of
        allocating a closure per event.

        Scheduling in the past is a logic error and raises immediately —
        silently reordering time would corrupt queueing statistics.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}: simulation time is already {self._now:.6f}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            Stop before firing any event later than this time (the event
            stays queued).
        max_events:
            Safety valve against runaway feedback loops.

        Returns the number of events fired by this call.
        """
        fired = 0
        while self._heap:
            time, _, callback, args = self._heap[0]
            if until is not None and time > until:
                break
            if max_events is not None and fired >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}; runaway event loop?")
            heapq.heappop(self._heap)
            self._now = time
            callback(self, time, *args)
            fired += 1
            self._processed += 1
        if self._metrics is not None:
            self._metrics.counter("events_fired_total").inc(fired)
            self._metrics.gauge("events_pending").set(len(self._heap))
        return fired

"""Request-level records for the event-driven simulator."""

from __future__ import annotations

from typing import Optional

__all__ = ["Request"]


class Request:
    """One client query as seen by the back end.

    Attributes
    ----------
    key:
        Queried key.
    arrival_time:
        When the query reached the system (seconds since trial start).
    trace:
        Live causal-trace record (:mod:`repro.obs.trace`) for sampled
        requests, or ``None``.  The queue layer completes it in place
        (``wait`` / ``service``, or a terminal ``status``) when the
        request's fate is known.
    """

    __slots__ = ("key", "arrival_time", "trace")

    def __init__(
        self, key: int, arrival_time: float, trace: Optional[dict] = None
    ) -> None:
        self.key = key
        self.arrival_time = arrival_time
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Request(key={self.key!r}, arrival_time={self.arrival_time!r})"

"""Request-level records for the event-driven simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request"]


@dataclass(frozen=True)
class Request:
    """One client query as seen by the back end.

    Attributes
    ----------
    key:
        Queried key.
    arrival_time:
        When the query reached the system (seconds since trial start).
    """

    __slots__ = ("key", "arrival_time")

    key: int
    arrival_time: float

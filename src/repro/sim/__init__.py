"""Simulation engines.

Two complementary engines drive every experiment:

- :mod:`repro.sim.analytic` — the Monte-Carlo placement simulator that
  mirrors the paper's own methodology (random replica groups, per-key
  steady-state rates, max over trials).  Fast enough for the full
  n=1000 / m=1e5 / 200-trial figures.
- :mod:`repro.sim.eventsim` — a request-level discrete-event simulator
  with real cache policies, per-node queues, capacities and drops, used
  to validate that the placement model's conclusions survive contact
  with queueing dynamics.
"""

from .config import SimulationConfig
from .analytic import (
    MonteCarloSimulator,
    best_achievable_gain,
    simulate_distribution,
    simulate_uniform_attack,
)
from .parallel import ParallelExecutor, resolve_workers
from .runner import run_trials
from .engine import EventScheduler
from .queueing import NodeServer
from .eventsim import EventDrivenSimulator, EventSimResult
from .crossval import CrossValidation, cross_validate
from .batch import EventCampaign, run_event_campaign

__all__ = [
    "EventCampaign",
    "run_event_campaign",
    "SimulationConfig",
    "MonteCarloSimulator",
    "simulate_uniform_attack",
    "simulate_distribution",
    "best_achievable_gain",
    "ParallelExecutor",
    "resolve_workers",
    "run_trials",
    "EventScheduler",
    "NodeServer",
    "EventDrivenSimulator",
    "EventSimResult",
    "CrossValidation",
    "cross_validate",
]

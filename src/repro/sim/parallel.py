"""Parallel trial execution over a process pool, deterministically seeded.

Every Monte-Carlo campaign in this repository is embarrassingly
parallel: trials are independent by construction, because each one draws
from its own ``RngFactory(seed).generator(label, trial=t)`` stream.  The
:class:`ParallelExecutor` exploits exactly that structure — workers
derive the *same* per-trial generators the serial loop would have built,
so a parallel run with a given seed produces bit-identical results to a
serial run, regardless of worker count, chunking or scheduling order.

Requirements on tasks
---------------------
A task handed to :meth:`ParallelExecutor.map_trials` must be a
*spawn-safe picklable callable*: a top-level function, a bound method of
a picklable object, or a :func:`functools.partial` over either.  Plain
``lambda``\\ s work for serial execution (``workers=1``) but cannot cross
a process boundary; the executor raises a :class:`SimulationError` with
that diagnosis up front rather than letting the pool fail obscurely.

Start method
------------
The default multiprocessing context is ``fork`` where the platform
offers it (workers inherit the parent's imports — near-zero startup) and
``spawn`` otherwise.  Tasks must stay spawn-safe either way: nothing may
depend on inherited process state, since the same code must run on
platforms where ``spawn`` is the only option.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..obs.metrics import MetricsRegistry
from ..obs.monitor import LoadMonitor, MonitorConfig
from ..obs.trace import FlightRecorder, TraceConfig
from ..rng import RngFactory

__all__ = ["ParallelExecutor", "resolve_workers", "resolve_seed"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request to a concrete positive count.

    ``None`` and ``1`` mean serial execution; ``0`` means one worker per
    available CPU; any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise SimulationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return int(workers)


def resolve_seed(seed: Optional[int]) -> int:
    """Pin ``seed`` down to a concrete integer.

    ``None`` draws fresh OS entropy — once, in the parent — so that
    every worker (and the serial fallback) derives the same per-trial
    streams within one campaign, and the resolved value can be recorded
    for later exact reruns.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    return int(seed)


def _run_chunk(
    task: Callable[..., Any],
    seed: int,
    label: str,
    trial_indices: Sequence[int],
    pass_trial: bool,
    args: Tuple[Any, ...],
    kwargs: Mapping[str, Any],
    collect_metrics: bool = False,
    monitor_config: Optional[MonitorConfig] = None,
    trace_config: Optional[TraceConfig] = None,
) -> List[Any]:
    """Run a contiguous block of trials (top-level: spawn-picklable).

    Rebuilds the :class:`RngFactory` from the resolved seed inside the
    worker, so each trial's generator is exactly the one the serial loop
    would have produced for the same ``(seed, label, trial)`` triple.

    With ``collect_metrics`` the task receives a *fresh*
    :class:`~repro.obs.metrics.MetricsRegistry` per trial as a
    ``metrics=`` keyword; with ``monitor_config`` it likewise receives a
    fresh :class:`~repro.obs.monitor.LoadMonitor` (publishing into that
    same per-trial registry) as a ``monitor=`` keyword; with
    ``trace_config`` it receives a fresh
    :class:`~repro.obs.trace.FlightRecorder` (seeded with the campaign
    seed, so its per-trial hash samplers match the serial loop's) as a
    ``trace=`` keyword.  When any collection is active, each entry of
    the returned list becomes ``(result, registry_snapshot_or_None,
    monitor_snapshot_or_None, trace_snapshot_or_None)``; the caller
    merges snapshots in trial order, which is what makes aggregate
    metrics, monitor output *and* trace output identical across worker
    counts.
    """
    factory = RngFactory(seed)
    collect = (
        collect_metrics or monitor_config is not None or trace_config is not None
    )
    results = []
    for t in trial_indices:
        gen = factory.generator(label, trial=t)
        call_kwargs = dict(kwargs)
        registry = None
        monitor = None
        recorder = None
        if collect_metrics:
            registry = MetricsRegistry()
            call_kwargs["metrics"] = registry
        if monitor_config is not None:
            monitor = LoadMonitor(monitor_config, metrics=registry)
            call_kwargs["monitor"] = monitor
        if trace_config is not None:
            recorder = FlightRecorder(trace_config, seed=seed)
            call_kwargs["trace"] = recorder
        if pass_trial:
            outcome = task(gen, t, *args, **call_kwargs)
        else:
            outcome = task(gen, *args, **call_kwargs)
        if collect:
            results.append(
                (
                    outcome,
                    registry.snapshot() if registry is not None else None,
                    monitor.snapshot() if monitor is not None else None,
                    recorder.snapshot() if recorder is not None else None,
                )
            )
        else:
            results.append(outcome)
    return results


class ParallelExecutor:
    """Fans independent trials out over worker processes.

    Parameters
    ----------
    workers:
        Worker processes: ``1`` (default) runs serially in-process,
        ``0`` uses every available CPU, ``n > 1`` uses exactly ``n``.
    chunk_size:
        Trials dispatched per pool task.  ``None`` picks a size that
        gives each worker a handful of chunks (amortising dispatch
        overhead while keeping the load balanced).
    mp_context:
        Multiprocessing start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  ``None`` picks ``fork`` where available,
        ``spawn`` otherwise.

    The executor is reusable across :meth:`map_trials` calls (the pool
    is created lazily and kept warm) and doubles as a context manager.
    """

    #: Target number of chunks per worker when ``chunk_size`` is unset.
    CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self._workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise SimulationError(f"chunk_size must be positive, got {chunk_size}")
        self._chunk_size = chunk_size
        if mp_context is not None:
            available = multiprocessing.get_all_start_methods()
            if mp_context not in available:
                raise SimulationError(
                    f"unknown start method {mp_context!r}; available: {available}"
                )
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def workers(self) -> int:
        """Resolved worker count (``0`` requests are already expanded)."""
        return self._workers

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (no-op when serial or never used)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            method = self._mp_context
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else "spawn"
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=multiprocessing.get_context(method),
            )
        return self._pool

    def _chunks(self, trials: int) -> List[range]:
        size = self._chunk_size
        if size is None:
            size = max(1, math.ceil(trials / (self._workers * self.CHUNKS_PER_WORKER)))
        return [range(lo, min(trials, lo + size)) for lo in range(0, trials, size)]

    def map_trials(
        self,
        task: Callable[..., Any],
        trials: int,
        seed: Optional[int] = None,
        label: str = "trial",
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        pass_trial: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        monitor: Optional[LoadMonitor] = None,
        trace: Optional[FlightRecorder] = None,
    ) -> List[Any]:
        """Run ``task`` once per trial; results come back in trial order.

        ``task`` is called as ``task(gen, *args, **kwargs)`` — or
        ``task(gen, trial, *args, **kwargs)`` with ``pass_trial=True`` —
        where ``gen`` is the ``(seed, label, trial)`` stream the serial
        loop would have used.  The task must consume only ``gen`` for
        randomness; that is what makes the fan-out order-invariant.

        With ``metrics`` set, the task must additionally accept a
        ``metrics=`` keyword: every trial records into a *fresh*
        per-trial registry (built inside the worker), and the snapshots
        are merged into ``metrics`` in trial order once all trials are
        in.  Because the merge order is the trial order — never the
        completion order — the aggregate metric values are identical
        for every worker count.

        With ``monitor`` set (an enabled
        :class:`~repro.obs.monitor.LoadMonitor`), the task must accept a
        ``monitor=`` keyword: each trial feeds a fresh per-trial monitor
        built from ``monitor.config`` inside the worker, and the monitor
        snapshots merge back via :meth:`LoadMonitor.merge_trial` — again
        strictly in trial order, so event logs and alert streams are
        identical for every worker count.

        With ``trace`` set (an enabled
        :class:`~repro.obs.trace.FlightRecorder`), the task must accept
        a ``trace=`` keyword: each trial feeds a fresh per-trial
        recorder built from ``trace.config`` and the campaign seed
        inside the worker (hash samplers are keyed on ``(seed, trial)``,
        so they admit exactly the requests the serial loop would), and
        recorder snapshots merge back via
        :meth:`FlightRecorder.merge_trial` in trial order — the trace
        JSONL and suspects blocks are bit-identical for every worker
        count.
        """
        if trials < 1:
            raise SimulationError(f"need at least one trial, got {trials}")
        kwargs = dict(kwargs or {})
        seed = resolve_seed(seed)
        # A disabled (null) registry/monitor records nothing, so skip
        # the whole per-trial collection machinery for it as well.
        collect_metrics = metrics is not None and metrics.enabled
        collect_monitor = monitor is not None and monitor.enabled
        monitor_config = monitor.config if collect_monitor else None
        collect_trace = trace is not None and trace.enabled
        trace_config = trace.config if collect_trace else None
        collect = collect_metrics or collect_monitor or collect_trace
        if self._workers == 1 or trials == 1:
            results = _run_chunk(
                task, seed, label, range(trials), pass_trial, args, kwargs,
                collect_metrics, monitor_config, trace_config,
            )
        else:
            try:
                pickle.dumps((task, args, kwargs, monitor_config, trace_config))
            except Exception as exc:
                raise SimulationError(
                    "parallel execution requires the task and its arguments to be "
                    "picklable (a top-level function, a bound method of a picklable "
                    f"object, or a functools.partial over either); got {task!r}: {exc}"
                ) from exc
            pool = self._ensure_pool()
            futures = [
                pool.submit(
                    _run_chunk, task, seed, label, list(chunk), pass_trial,
                    args, kwargs, collect_metrics, monitor_config, trace_config,
                )
                for chunk in self._chunks(trials)
            ]
            results = []
            for future in futures:
                results.extend(future.result())
        if not collect:
            return results
        unwrapped: List[Any] = []
        for outcome, metrics_snapshot, monitor_snapshot, trace_snapshot in results:
            if metrics_snapshot is not None:
                metrics.merge_snapshot(metrics_snapshot)
            if monitor_snapshot is not None:
                monitor.merge_trial(monitor_snapshot)
            if trace_snapshot is not None:
                trace.merge_trial(trace_snapshot)
            unwrapped.append(outcome)
        return unwrapped

"""Multi-trial orchestration: independent seeds, aggregated results."""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from ..exceptions import SimulationError
from ..obs.tracer import as_tracer
from ..types import LoadReport, LoadVector
from .parallel import ParallelExecutor, resolve_seed

__all__ = ["run_trials"]


def run_trials(
    trial_fn: Callable[[np.random.Generator], LoadVector],
    trials: int,
    seed: Optional[int] = None,
    label: str = "trial",
    metadata: Optional[Mapping[str, object]] = None,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
    metrics=None,
    tracer=None,
    monitor=None,
) -> LoadReport:
    """Run ``trial_fn`` under ``trials`` independent RNG streams.

    Parameters
    ----------
    trial_fn:
        Callable producing one :class:`~repro.types.LoadVector` from a
        dedicated generator.  It must consume *only* that generator for
        randomness, so trials stay independent and reproducible.  With
        ``workers > 1`` it must also be picklable (a top-level function,
        bound method or ``functools.partial`` — not a lambda).
    trials:
        Number of repetitions.
    seed:
        Root seed (``None`` draws fresh entropy once; the resolved value
        is recorded in the report metadata for exact reruns).
    label:
        RNG stream namespace; two campaigns with different labels and
        the same seed are independent.
    metadata:
        Attached to the returned report (plus a ``seed`` key).
    workers:
        Worker processes: ``1`` (default) is the serial path, ``0``
        means one per CPU, ``n > 1`` fans trials out over ``n``
        processes.  The results are bit-identical for every value.
    executor:
        Pre-built :class:`~repro.sim.parallel.ParallelExecutor` to
        reuse (e.g. to keep one warm pool across many sweep points);
        overrides ``workers``.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  The campaign
        records per-trial normalized-max histograms and per-node load
        counters from the trial results, which come back in trial order
        regardless of worker count — so the recorded values are
        identical for every ``workers`` value.
    tracer:
        Optional :class:`repro.obs.Tracer`; wall-clock spans for the
        trial fan-out and the aggregation step (this process only).
    monitor:
        Optional :class:`repro.obs.LoadMonitor`.  Each trial's load
        vector becomes one trial-clock window record
        (:meth:`~repro.obs.LoadMonitor.record_trial`) evaluated against
        the alert rules; when the campaign metadata carries an ``x``
        (the attack sweeps do), the Theorem-2 bound is refreshed per
        call.  Recording happens in the parent over the trial-ordered
        results, so monitor output is identical for every ``workers``
        value.
    """
    if trials < 1:
        raise SimulationError(f"need at least one trial, got {trials}")
    seed = resolve_seed(seed)
    tracer = as_tracer(tracer)
    owns_executor = executor is None
    if executor is None:
        executor = ParallelExecutor(workers=workers)
    try:
        with tracer.span("trials"):
            vectors = executor.map_trials(trial_fn, trials, seed=seed, label=label)
    finally:
        if owns_executor:
            executor.close()
    with tracer.span("report"):
        # Results are ordered by trial index, so the configuration check is
        # anchored to trial 0 — never to whichever trial finished first.
        reference = vectors[0]
        normalized = np.empty(trials, dtype=float)
        for t, vector in enumerate(vectors):
            if vector.total_rate != reference.total_rate or vector.n_nodes != reference.n_nodes:
                raise SimulationError(
                    f"trial {t} changed total_rate or n_nodes relative to trial 0; "
                    "each campaign must hold the configuration fixed"
                )
            normalized[t] = vector.normalized_max
        meta = dict(metadata or {})
        meta.setdefault("seed", seed)
        if metrics is not None and metrics.enabled:
            _record_campaign_metrics(metrics, label, vectors, normalized, meta)
        if monitor is not None and monitor.enabled:
            def _as_int(value):
                return int(value) if isinstance(value, (int, np.integer)) else None

            x, c, d = _as_int(meta.get("x")), _as_int(meta.get("c")), _as_int(meta.get("d"))
            eff = meta.get("effective_d")
            effective_d = float(eff) if isinstance(eff, (int, float, np.floating, np.integer)) else None
            for t, vector in enumerate(vectors):
                monitor.record_trial(
                    t, vector, campaign=label, x=x, c=c, d=d,
                    effective_d=effective_d,
                )
    return LoadReport(
        normalized_max_per_trial=normalized,
        total_rate=float(reference.total_rate),
        n_nodes=int(reference.n_nodes),
        metadata=meta,
    )


def _record_campaign_metrics(
    metrics,
    label: str,
    vectors,
    normalized: np.ndarray,
    metadata: Optional[dict] = None,
) -> None:
    """Record one campaign's deterministic aggregates.

    Runs in the parent over the trial-ordered result list, so worker
    count cannot influence any value.  Per-node load counters sum the
    offered load each node saw across trials — the per-node series the
    paper's Theorem 1 bounds.  When the metadata carries the attack
    shape (``x`` keys replicated ``c`` ways), the campaign's total
    balls thrown (``trials * x * c``) lands in a counter so the perf
    profiler can report balls/sec without re-deriving the workload.
    """
    metrics.counter("campaign_trials_total", campaign=label).inc(len(vectors))
    meta = metadata or {}
    x, c = meta.get("x"), meta.get("c")
    if isinstance(x, (int, np.integer)) and isinstance(c, (int, np.integer)):
        metrics.counter("campaign_balls_total", campaign=label).inc(
            len(vectors) * int(x) * int(c)
        )
    histogram = metrics.histogram("trial_normalized_max", campaign=label)
    histogram.observe_many(normalized.tolist())
    node_totals = np.zeros_like(vectors[0].loads, dtype=float)
    for vector in vectors:
        node_totals += vector.loads
    for node, total in enumerate(node_totals.tolist()):
        if total:
            metrics.counter("node_load_sum", node=str(node)).inc(total)

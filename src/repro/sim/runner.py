"""Multi-trial orchestration: independent seeds, aggregated results."""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from ..exceptions import SimulationError
from ..rng import RngFactory
from ..types import LoadReport, LoadVector

__all__ = ["run_trials"]


def run_trials(
    trial_fn: Callable[[np.random.Generator], LoadVector],
    trials: int,
    seed: Optional[int] = None,
    label: str = "trial",
    metadata: Optional[Mapping[str, object]] = None,
) -> LoadReport:
    """Run ``trial_fn`` under ``trials`` independent RNG streams.

    Parameters
    ----------
    trial_fn:
        Callable producing one :class:`~repro.types.LoadVector` from a
        dedicated generator.  It must consume *only* that generator for
        randomness, so trials stay independent and reproducible.
    trials:
        Number of repetitions.
    seed:
        Root seed (``None`` = library default, still reproducible).
    label:
        RNG stream namespace; two campaigns with different labels and
        the same seed are independent.
    metadata:
        Attached verbatim to the returned report.
    """
    if trials < 1:
        raise SimulationError(f"need at least one trial, got {trials}")
    factory = RngFactory(seed)
    normalized = np.empty(trials, dtype=float)
    total_rate: Optional[float] = None
    n_nodes: Optional[int] = None
    for t in range(trials):
        gen = factory.generator(label, trial=t)
        vector = trial_fn(gen)
        if total_rate is None:
            total_rate, n_nodes = vector.total_rate, vector.n_nodes
        elif vector.total_rate != total_rate or vector.n_nodes != n_nodes:
            raise SimulationError(
                "trial_fn changed total_rate or n_nodes between trials; "
                "each campaign must hold the configuration fixed"
            )
        normalized[t] = vector.normalized_max
    return LoadReport(
        normalized_max_per_trial=normalized,
        total_rate=float(total_rate),
        n_nodes=int(n_nodes),
        metadata=dict(metadata or {}),
    )

"""The Monte-Carlo placement simulator — the paper's own methodology.

Section IV describes one simulation run as: pick ``x`` keys, query them
all at the same rate; the ``c`` most popular hit the front-end cache, so
``x - c`` keys reach the back end; each key's replica group is ``d``
random nodes and the key is served by one group member; record the load
of the most loaded node.  Repeat 200 times and report the max.

:func:`simulate_uniform_attack` implements exactly that.
:func:`simulate_distribution` generalises it to any popularity law
(needed for the uniform and Zipf(1.01) series of Figure 4), with the
perfect front-end cache absorbing the distribution's true top-``c``.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Tuple

import numpy as np

from ..ballsbins.allocation import sample_replica_groups
from ..cluster.failures import degrade_groups, sample_failures
from ..cluster.selection import make_selection_policy
from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError, SimulationError
from ..obs.tracer import as_tracer
from ..types import LoadReport, LoadVector
from ..workload.distributions import KeyDistribution
from .config import SimulationConfig
from .runner import run_trials

__all__ = [
    "MonteCarloSimulator",
    "simulate_uniform_attack",
    "simulate_distribution",
    "best_achievable_gain",
]


class MonteCarloSimulator:
    """Reusable facade over the placement simulator.

    Holds a :class:`~repro.sim.config.SimulationConfig` and exposes the
    per-experiment entry points; the module-level functions are
    single-shot conveniences over the same code.
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._selection = make_selection_policy(config.selection)
        if config.chaos is not None and config.selection != "least-loaded":
            raise ConfigurationError(
                "chaos-enabled Monte-Carlo trials re-pin keys over surviving "
                "replicas with the least-loaded rule; "
                f"selection={config.selection!r} is not supported with chaos"
            )

    @property
    def config(self) -> SimulationConfig:
        """The campaign configuration."""
        return self._config

    # -- the paper's experiment -------------------------------------------

    def uniform_attack_trial(
        self, x: int, gen: np.random.Generator
    ) -> LoadVector:
        """One trial of the x-key uniform attack (Section IV, one run)."""
        params = self._config.params
        if not 1 <= x <= params.m:
            raise ConfigurationError(f"need 1 <= x <= m={params.m}, got x={x}")
        tracer = as_tracer(self._config.tracer)
        balls = x - params.c
        if balls <= 0:
            # Every queried key is cached: the back end sees nothing.
            return LoadVector(loads=np.zeros(params.n), total_rate=params.rate)
        # Phase spans are wall-clock and process-local: they record in
        # serial runs; with workers > 1 the worker's tracer copy is
        # discarded (metric determinism is unaffected — spans never
        # touch the registry).
        with tracer.span("workload"):
            rates = self._uncached_rates(x, balls, gen)
        with tracer.span("partition"):
            groups = sample_replica_groups(balls, params.n, params.d, rng=gen)
        with tracer.span("allocation"):
            loads = self._node_loads(groups, rates, gen)
        return LoadVector(loads=loads, total_rate=params.rate)

    def _node_loads(
        self, groups: np.ndarray, rates: np.ndarray, gen: np.random.Generator
    ) -> np.ndarray:
        """Place keys on nodes, degrading groups first when chaos is on.

        The chaos path samples a failure set of the renewal process's
        steady-state size from the *trial's own* generator (so chaos
        campaigns stay bit-identical across worker counts), strips the
        failed nodes from every replica group, and re-runs the greedy
        least-loaded placement over the survivors — unavailable keys
        contribute no load, surviving keys concentrate on fewer nodes.
        """
        params = self._config.params
        chaos = self._config.chaos
        if chaos is None:
            return self._selection.node_loads(groups, rates, params.n, rng=gen)
        failed = sample_failures(
            params.n, chaos.steady_state_failed_fraction, rng=gen
        )
        degraded = degrade_groups(groups, failed, params.n)
        return degraded.least_loaded_loads(rates, params.n)

    def uniform_attack(self, x: int) -> LoadReport:
        """Multi-trial x-key uniform attack; the unit of Figs. 3 and 5.

        The trial callable is a ``partial`` over a bound method (not a
        lambda) so ``workers > 1`` can ship it to worker processes.
        """
        cfg = self._config
        return run_trials(
            partial(_uniform_attack_trial_task, self, x),
            trials=cfg.trials,
            seed=cfg.seed,
            label=f"uniform-attack-x{x}",
            metadata={
                "x": x, "selection": cfg.selection,
                **_param_meta(cfg.params), **_chaos_meta(cfg),
            },
            workers=cfg.workers,
            metrics=cfg.metrics,
            tracer=cfg.tracer,
            monitor=cfg.monitor,
        )

    def _uncached_rates(
        self, x: int, balls: int, gen: np.random.Generator
    ) -> np.ndarray:
        params = self._config.params
        per_key = params.rate / x
        if self._config.exact_rates:
            return np.full(balls, per_key)
        # Finite-batch mode: sample how many of the batch's queries hit
        # each uncached key, then convert counts back to rates.
        batch = self._config.queries_per_trial
        counts = gen.multinomial(batch, np.full(x, 1.0 / x))[params.c :]
        return counts.astype(float) * (params.rate / batch)

    # -- arbitrary popularity laws (Figure 4) ------------------------------

    def distribution_trial(
        self, distribution: KeyDistribution, gen: np.random.Generator
    ) -> LoadVector:
        """One trial under an arbitrary popularity law.

        The perfect front end absorbs the distribution's true top-``c``
        keys; every other positive-rate key becomes a ball with its
        steady-state rate as weight.
        """
        params = self._config.params
        if distribution.m != params.m:
            raise SimulationError(
                f"distribution covers {distribution.m} keys, system serves {params.m}"
            )
        tracer = as_tracer(self._config.tracer)
        with tracer.span("workload"):
            probs = distribution.probabilities()
            cached = distribution.top_keys(params.c)
            uncached_mask = probs > 0
            uncached_mask[cached] = False
            rates = probs[uncached_mask] * params.rate
        balls = int(rates.size)
        if balls == 0:
            return LoadVector(loads=np.zeros(params.n), total_rate=params.rate)
        with tracer.span("partition"):
            groups = sample_replica_groups(balls, params.n, params.d, rng=gen)
        with tracer.span("allocation"):
            loads = self._node_loads(groups, rates, gen)
        return LoadVector(loads=loads, total_rate=params.rate)

    def distribution_attack(self, distribution: KeyDistribution) -> LoadReport:
        """Multi-trial run of an arbitrary access pattern."""
        cfg = self._config
        return run_trials(
            partial(_distribution_trial_task, self, distribution),
            trials=cfg.trials,
            seed=cfg.seed,
            label=f"distribution-{distribution.name}",
            metadata={
                "distribution": distribution.name,
                "selection": cfg.selection,
                **_param_meta(cfg.params),
                **_chaos_meta(cfg),
            },
            workers=cfg.workers,
            metrics=cfg.metrics,
            tracer=cfg.tracer,
            monitor=cfg.monitor,
        )

    # -- the adversary's endpoint choice (Figure 5) -------------------------

    def best_achievable(self) -> Tuple[float, int, LoadReport]:
        """Best worst-case gain over the two candidate attacks.

        Per the case analysis the optimum is an endpoint: ``x = c + 1``
        or ``x = m``.  Returns ``(gain, x, report)`` for the better one,
        mirroring how the paper's Figure 5 search works ("either
        querying a number of keys that is one more than the cache size
        or querying all keys").
        """
        params = self._config.params
        candidates = []
        small = min(params.c + 1, params.m)
        candidates.append(small)
        if params.m != small:
            candidates.append(params.m)
        best: Optional[Tuple[float, int, LoadReport]] = None
        for x in candidates:
            report = self.uniform_attack(x)
            if best is None or report.worst_case > best[0]:
                best = (report.worst_case, x, report)
        return best


def _param_meta(params: SystemParameters) -> dict:
    return {"n": params.n, "m": params.m, "c": params.c, "d": params.d}


def _chaos_meta(cfg: SimulationConfig) -> dict:
    """Chaos provenance for a campaign's report metadata.

    ``effective_d`` is the steady-state mean surviving choice
    ``d * (1 - f)``; :func:`repro.sim.runner.run_trials` forwards it to
    the monitor so chaos campaigns get degraded-bound tracking too.
    """
    if cfg.chaos is None:
        return {}
    fraction = cfg.chaos.steady_state_failed_fraction
    return {
        "failed_fraction": fraction,
        "effective_d": cfg.params.d * (1.0 - fraction),
    }


def _uniform_attack_trial_task(
    sim: "MonteCarloSimulator", x: int, gen: np.random.Generator
) -> LoadVector:
    """Spawn-safe top-level wrapper for the uniform-attack trial."""
    return sim.uniform_attack_trial(x, gen)


def _distribution_trial_task(
    sim: "MonteCarloSimulator", distribution: KeyDistribution, gen: np.random.Generator
) -> LoadVector:
    """Spawn-safe top-level wrapper for the distribution trial."""
    return sim.distribution_trial(distribution, gen)


def simulate_uniform_attack(
    params: SystemParameters,
    x: int,
    trials: int = 200,
    seed: Optional[int] = None,
    selection: str = "least-loaded",
    exact_rates: bool = True,
    workers: int = 1,
    metrics=None,
) -> LoadReport:
    """One-call version of the paper's x-key attack experiment.

    ``metrics`` (an optional :class:`repro.obs.MetricsRegistry`) is
    forwarded to the campaign runner, which records its deterministic
    aggregates in the parent — attaching a registry (e.g. a perf
    profiler's) never changes the report.
    """
    sim = MonteCarloSimulator(
        SimulationConfig(
            params=params,
            trials=trials,
            seed=seed,
            selection=selection,
            exact_rates=exact_rates,
            workers=workers,
            metrics=metrics,
        )
    )
    return sim.uniform_attack(x)


def simulate_distribution(
    params: SystemParameters,
    distribution: KeyDistribution,
    trials: int = 200,
    seed: Optional[int] = None,
    selection: str = "least-loaded",
    workers: int = 1,
) -> LoadReport:
    """One-call version of the arbitrary-pattern experiment (Figure 4)."""
    sim = MonteCarloSimulator(
        SimulationConfig(
            params=params, trials=trials, seed=seed, selection=selection,
            workers=workers,
        )
    )
    return sim.distribution_attack(distribution)


def best_achievable_gain(
    params: SystemParameters,
    trials: int = 200,
    seed: Optional[int] = None,
    selection: str = "least-loaded",
    workers: int = 1,
) -> Tuple[float, int]:
    """Best worst-case gain and the ``x`` achieving it (Figure 5 unit)."""
    sim = MonteCarloSimulator(
        SimulationConfig(
            params=params, trials=trials, seed=seed, selection=selection,
            workers=workers,
        )
    )
    gain, x, _ = sim.best_achievable()
    return gain, x

"""Simulation configuration shared by the engines and experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..chaos.config import ChaosConfig
from ..core.notation import SystemParameters
from ..exceptions import ConfigurationError

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one simulation campaign.

    Parameters
    ----------
    params:
        The system under test.
    trials:
        Independent repetitions; the paper uses 200 and reports the max.
    seed:
        Root seed; every trial derives an independent stream from it.
    selection:
        Replica-selection policy name (see
        :func:`repro.cluster.selection.make_selection_policy`).  The
        theory model — and default — is ``"least-loaded"``.
    exact_rates:
        ``True`` (default) gives every queried key exactly rate ``R/x``
        (the paper's "queried at the same rate"); ``False`` samples a
        finite multinomial batch instead, adding client-side noise.
    queries_per_trial:
        Batch size when ``exact_rates=False``.
    workers:
        Worker processes for trial execution: ``1`` (default) runs
        serially, ``0`` uses every CPU, ``n > 1`` uses exactly ``n``.
        Results are bit-identical for every value (see
        :mod:`repro.sim.parallel`).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` the campaigns record
        into (``None`` = observability off, zero overhead).  Excluded
        from equality/repr: it is a sink, not part of the configuration
        identity.
    tracer:
        Optional :class:`repro.obs.Tracer` for wall-clock phase spans;
        same exclusions as ``metrics``.
    monitor:
        Optional :class:`repro.obs.LoadMonitor` the campaigns feed
        per-trial gain records into (``None`` = online monitoring off);
        same exclusions as ``metrics``.
    chaos:
        Optional :class:`repro.chaos.ChaosConfig`.  The Monte-Carlo
        engine has no clock, so it applies the process's *steady-state*
        down fraction per trial: a failure set is sampled from the
        trial's own stream, replica groups are degraded, and the
        placement re-runs over the survivors.  Unlike the observability
        sinks this IS part of the configuration identity (it changes
        results), so it participates in equality.  ``None`` keeps every
        trial byte-identical to the pre-chaos engine.
    """

    params: SystemParameters
    trials: int = 200
    seed: Optional[int] = None
    selection: str = "least-loaded"
    exact_rates: bool = True
    queries_per_trial: int = 100_000
    workers: int = 1
    metrics: Optional[object] = field(default=None, compare=False, repr=False)
    tracer: Optional[object] = field(default=None, compare=False, repr=False)
    monitor: Optional[object] = field(default=None, compare=False, repr=False)
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError(f"need at least one trial, got {self.trials}")
        if self.queries_per_trial < 1:
            raise ConfigurationError(
                f"queries_per_trial must be positive, got {self.queries_per_trial}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0 (0 = all CPUs), got {self.workers}"
            )
        if self.chaos is not None and not isinstance(self.chaos, ChaosConfig):
            raise ConfigurationError(
                f"chaos must be a ChaosConfig or None, got {type(self.chaos).__name__}"
            )

    def with_workers(self, workers: int) -> "SimulationConfig":
        """Copy with a different worker count (used by the CLI)."""
        return replace(self, workers=workers)

    def with_params(self, params: SystemParameters) -> "SimulationConfig":
        """Copy with a different system (used by sweeps)."""
        return replace(self, params=params)

    def with_trials(self, trials: int) -> "SimulationConfig":
        """Copy with a different trial count (used by quick modes)."""
        return replace(self, trials=trials)

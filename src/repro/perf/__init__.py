"""Performance observability: profiler, bench harness, history, gate.

The layer ISSUE 5 adds on top of :mod:`repro.obs`:

- :mod:`repro.perf.profiler` — deterministic op-counters (merge-in-
  trial-order, bit-identical across worker counts) + wall-clock spans
  + ``tracemalloc`` peak capture, one attachable handle.
- :mod:`repro.perf.harness` — the registry every ``benchmarks/bench_*``
  script registers into; runs each bench with the engine phase in its
  own span (throughput excludes export/serialization time) and emits a
  schema-versioned :class:`~repro.perf.schema.RunManifest`.
- :mod:`repro.perf.history` / :mod:`repro.perf.compare` — append-only
  ``history.jsonl`` store, ``BENCH_<name>.json`` trajectories, and the
  median-of-k regression comparator with tolerance + noise floor.
- :mod:`repro.perf.report` — static HTML report (sparklines, top
  spans, nested-span view) sharing the dashboard machinery.

CLI surface: ``repro perf run|compare|report``.
"""

from .compare import (
    DEFAULT_K,
    DEFAULT_NOISE_FLOOR,
    DEFAULT_TOLERANCE,
    Verdict,
    compare_history,
    render_verdicts,
)
from .harness import (
    BenchResult,
    BenchSpec,
    active_profiler,
    discover,
    get_spec,
    register,
    registered,
    run_suite,
    smoke_mode,
)
from .history import (
    append_manifests,
    default_history_path,
    load_history,
    write_trajectories,
)
from .profiler import NULL_PROFILER, NullProfiler, Profiler, as_profiler
from .report import render_report, write_report
from .schema import (
    SCHEMA_VERSION,
    PerfSchemaError,
    RunManifest,
    git_sha,
    validate_manifest,
)

__all__ = [
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "as_profiler",
    "BenchSpec",
    "BenchResult",
    "register",
    "registered",
    "get_spec",
    "discover",
    "run_suite",
    "active_profiler",
    "smoke_mode",
    "RunManifest",
    "SCHEMA_VERSION",
    "PerfSchemaError",
    "validate_manifest",
    "git_sha",
    "append_manifests",
    "load_history",
    "write_trajectories",
    "default_history_path",
    "Verdict",
    "compare_history",
    "render_verdicts",
    "DEFAULT_K",
    "DEFAULT_TOLERANCE",
    "DEFAULT_NOISE_FLOOR",
    "render_report",
    "write_report",
]

"""Static HTML perf report over the bench history.

One self-contained page (no external assets — same contract as the
monitor dashboard): a summary table of the latest run per bench with an
inline engine-seconds sparkline over its full trajectory, the top spans
across the latest manifests, and a flamegraph-style nested-span view
(indented by slash-separated span path, bar width proportional to time
within each bench).  All layout machinery is shared with
:mod:`repro.obs.dashboard`.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.dashboard import fmt, html_page, html_table, svg_sparkline
from .history import RunManifest, group_by_bench

__all__ = ["render_report", "write_report"]

#: How many spans the cross-bench "top spans" table shows.
TOP_SPANS = 15


def _mode(smoke: bool) -> str:
    return "smoke" if smoke else "full"


def _latest_per_bench(
    manifests: Sequence[RunManifest],
) -> Dict[str, List[RunManifest]]:
    return group_by_bench(manifests)


def _summary_section(groups: Dict[str, List[RunManifest]]) -> List[str]:
    parts = ["<h2>Benchmarks</h2>"]
    if not groups:
        return parts + ["<p>(history is empty)</p>"]
    head = (
        "<tr><th>bench</th><th>mode</th><th>runs</th><th>engine s</th>"
        "<th>export s</th><th>events/s</th><th>balls/s</th>"
        "<th>peak MiB</th><th>ok</th><th>engine-s trajectory</th></tr>"
    )
    rows = []
    for bench, runs in sorted(groups.items()):
        latest = runs[-1]
        spark = svg_sparkline(
            [m.engine_seconds for m in runs], width=180, height=28
        )
        peak = latest.tracemalloc_peak_bytes
        peak_mib = peak / (1024 * 1024) if peak is not None else None
        cells = [
            html.escape(bench),
            _mode(latest.smoke),
            str(len(runs)),
            fmt(latest.engine_seconds),
            fmt(latest.export_seconds),
            fmt(latest.events_per_second, 3),
            fmt(latest.balls_per_second, 3),
            fmt(peak_mib, 3),
            "yes" if latest.ok else "NO",
        ]
        rows.append(
            "<tr>"
            + "".join(f"<td>{c}</td>" for c in cells)
            + f'<td style="text-align:left">{spark}</td></tr>'
        )
    parts.append(
        "<table><thead>" + head + "</thead><tbody>" + "".join(rows)
        + "</tbody></table>"
    )
    return parts


def _top_spans_section(groups: Dict[str, List[RunManifest]]) -> List[str]:
    spans: List[dict] = []
    for bench, runs in groups.items():
        for path, stats in runs[-1].spans.items():
            spans.append(
                {
                    "bench": bench,
                    "span": path,
                    "count": stats.get("count"),
                    "total_seconds": stats.get("total_seconds"),
                    "mean_seconds": stats.get("mean_seconds"),
                    "p95_seconds": stats.get("p95_seconds"),
                }
            )
    spans.sort(key=lambda s: -(s["total_seconds"] or 0.0))
    return [
        f"<h2>Top spans (latest run per bench, top {TOP_SPANS})</h2>",
        html_table(
            spans[:TOP_SPANS],
            ["bench", "span", "count", "total_seconds", "mean_seconds",
             "p95_seconds"],
        ),
    ]


def _span_tree(spans: Dict[str, dict]) -> List[Tuple[int, str, dict]]:
    """Sorted (depth, leaf-name, stats) rows from slash-joined paths."""
    rows = []
    for path in sorted(spans):
        segments = path.split("/")
        rows.append((len(segments) - 1, segments[-1], spans[path]))
    return rows


def _nested_span_section(groups: Dict[str, List[RunManifest]]) -> List[str]:
    parts = ["<h2>Nested spans (latest run per bench)</h2>"]
    any_spans = False
    for bench, runs in sorted(groups.items()):
        latest = runs[-1]
        if not latest.spans:
            continue
        any_spans = True
        total = max(
            (s.get("total_seconds") or 0.0 for s in latest.spans.values()),
            default=0.0,
        ) or 1.0
        parts.append(f"<h3>{html.escape(bench)}</h3>")
        lines = []
        for depth, leaf, stats in _span_tree(latest.spans):
            seconds = stats.get("total_seconds") or 0.0
            bar = max(1, int(round(seconds / total * 320)))
            indent = depth * 18
            lines.append(
                f'<div style="margin-left:{indent}px;white-space:nowrap">'
                f'<span style="display:inline-block;width:{bar}px;height:10px;'
                'background:#2980b9;margin-right:6px;vertical-align:middle">'
                "</span>"
                f"{html.escape(leaf)} — {fmt(seconds)}s × "
                f"{fmt(stats.get('count'))}</div>"
            )
        parts.append("".join(lines))
    if not any_spans:
        parts.append("<p>(no spans recorded)</p>")
    return parts


def render_report(
    manifests: Sequence[RunManifest], title: str = "Perf report"
) -> str:
    """Render the history as a standalone HTML report (a string)."""
    groups = _latest_per_bench(manifests)
    body: List[str] = [
        f'<p class="kv">{len(manifests)} run(s) over {len(groups)} '
        "bench(es); throughput is workload ÷ <em>engine</em> seconds "
        "(export/serialization timed separately)</p>"
    ]
    body.extend(_summary_section(groups))
    body.extend(_top_spans_section(groups))
    body.extend(_nested_span_section(groups))
    return html_page(title, body)


def write_report(
    manifests: Sequence[RunManifest],
    path: Union[str, Path],
    title: Optional[str] = None,
) -> Path:
    """Write :func:`render_report` output to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_report(manifests, title=title or "Perf report"),
        encoding="utf-8",
    )
    return path

"""Schema-versioned run manifests for the unified bench harness.

Every benchmark execution produces one :class:`RunManifest`: what ran
(bench name, config, seed, workers, git SHA), how long the *engine*
phase took (JSON serialization and table rendering are timed separately
— see ``docs/PERFORMANCE.md``), what it processed (events and balls, so
throughput is events/sec and balls/sec over engine time only), the
profiler's deterministic op-counters and wall-clock span aggregates,
and peak memory (``tracemalloc`` peak plus process RSS high-water mark).

Manifests append to ``benchmarks/results/history.jsonl`` (one JSON
object per line) and roll up into the top-level ``BENCH_<name>.json``
trajectory artifacts.  The schema is versioned so the comparator can
hard-fail on records it does not understand instead of silently
producing nonsense verdicts.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..exceptions import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "PerfSchemaError",
    "RunManifest",
    "validate_manifest",
    "git_sha",
    "host_info",
    "peak_rss_bytes",
]

#: Manifest format version.  Bump on any incompatible field change and
#: teach :func:`validate_manifest` about the migration.
SCHEMA_VERSION = 1


class PerfSchemaError(ReproError):
    """A perf manifest (or history line) violates the declared schema."""


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """Current commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def host_info() -> Dict[str, object]:
    """Machine provenance recorded with every manifest."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def peak_rss_bytes() -> Optional[int]:
    """Process RSS high-water mark in bytes (``None`` where unsupported).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so manifests compare across hosts.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


#: Required top-level fields and the types the validator enforces.
_REQUIRED: Dict[str, tuple] = {
    "schema": (int,),
    "bench": (str,),
    "smoke": (bool,),
    "ok": (bool,),
    "timestamp": (int, float),
    "config": (dict,),
    "timings": (dict,),
    "throughput": (dict,),
    "ops": (dict,),
    "spans": (dict,),
    "memory": (dict,),
    "host": (dict,),
}

_REQUIRED_TIMINGS = ("engine_seconds", "export_seconds", "wall_seconds")


@dataclass
class RunManifest:
    """One benchmark execution, ready for the history store.

    ``engine_seconds`` covers only the simulation/kernel work;
    ``export_seconds`` covers rendering and JSON serialization.
    Throughput fields divide workload units by *engine* time, never by
    wall time — the fix ISSUE 5 demands.
    """

    bench: str
    smoke: bool
    ok: bool
    engine_seconds: float
    export_seconds: float
    wall_seconds: float
    config: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    workers: Optional[int] = None
    git_sha: Optional[str] = None
    timestamp: float = field(default_factory=time.time)
    events: Optional[int] = None
    balls: Optional[int] = None
    #: Optional per-engine breakdown for benches that run the same
    #: workload under several engines (``{"legacy": {...}, "fast":
    #: {...}}`` with seconds / events / events_per_second per engine).
    engines: Optional[Dict[str, dict]] = None
    ops: Dict[str, float] = field(default_factory=dict)
    spans: Dict[str, dict] = field(default_factory=dict)
    tracemalloc_peak_bytes: Optional[int] = None
    rss_peak_bytes: Optional[int] = None
    host: Dict[str, object] = field(default_factory=host_info)
    error: Optional[str] = None
    schema: int = SCHEMA_VERSION

    @property
    def events_per_second(self) -> Optional[float]:
        """Events over *engine* seconds (``None`` without a workload)."""
        if self.events is None or self.engine_seconds <= 0:
            return None
        return self.events / self.engine_seconds

    @property
    def balls_per_second(self) -> Optional[float]:
        """Balls over *engine* seconds (``None`` without a workload)."""
        if self.balls is None or self.engine_seconds <= 0:
            return None
        return self.balls / self.engine_seconds

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) manifest; passes the validator."""
        return {
            "schema": self.schema,
            "bench": self.bench,
            "smoke": self.smoke,
            "ok": self.ok,
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "seed": self.seed,
            "workers": self.workers,
            "config": dict(self.config),
            "timings": {
                "engine_seconds": self.engine_seconds,
                "export_seconds": self.export_seconds,
                "wall_seconds": self.wall_seconds,
            },
            "throughput": {
                "events": self.events,
                "balls": self.balls,
                "events_per_second": self.events_per_second,
                "balls_per_second": self.balls_per_second,
            },
            "engines": self.engines,
            "ops": dict(self.ops),
            "spans": {path: dict(stats) for path, stats in self.spans.items()},
            "memory": {
                "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
                "rss_peak_bytes": self.rss_peak_bytes,
            },
            "host": dict(self.host),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RunManifest":
        """Rebuild a manifest from its dict form (validated first)."""
        validate_manifest(record)
        timings = record["timings"]
        throughput = record["throughput"]
        memory = record["memory"]
        return cls(
            bench=record["bench"],
            smoke=record["smoke"],
            ok=record["ok"],
            engine_seconds=float(timings["engine_seconds"]),
            export_seconds=float(timings["export_seconds"]),
            wall_seconds=float(timings["wall_seconds"]),
            config=dict(record["config"]),
            seed=record.get("seed"),
            workers=record.get("workers"),
            git_sha=record.get("git_sha"),
            timestamp=float(record["timestamp"]),
            events=throughput.get("events"),
            balls=throughput.get("balls"),
            engines=record.get("engines"),
            ops=dict(record["ops"]),
            spans={p: dict(s) for p, s in record["spans"].items()},
            tracemalloc_peak_bytes=memory.get("tracemalloc_peak_bytes"),
            rss_peak_bytes=memory.get("rss_peak_bytes"),
            host=dict(record["host"]),
            error=record.get("error"),
            schema=record["schema"],
        )

    def to_json_line(self) -> str:
        """One ``history.jsonl`` line (sorted keys, no trailing spaces)."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)


def validate_manifest(record: object) -> dict:
    """Check one manifest dict against the schema; returns it on success.

    Raises :class:`PerfSchemaError` on any violation — unknown schema
    version, missing field, wrong type, negative timing.  The comparator
    and history loader both route through here, which is what makes
    "hard-fail on schema errors" enforceable in CI.
    """
    if not isinstance(record, dict):
        raise PerfSchemaError(f"manifest must be a dict, got {type(record).__name__}")
    version = record.get("schema")
    if version != SCHEMA_VERSION:
        raise PerfSchemaError(
            f"unsupported manifest schema {version!r} (this build reads "
            f"schema {SCHEMA_VERSION})"
        )
    for name, types in _REQUIRED.items():
        if name not in record:
            raise PerfSchemaError(f"manifest is missing required field {name!r}")
        value = record[name]
        # bool subclasses int, so reject bools wherever a number is
        # expected (and non-bools where a flag is expected).
        type_ok = (
            isinstance(value, bool)
            if types == (bool,)
            else not isinstance(value, bool) and isinstance(value, types)
        )
        if not type_ok:
            raise PerfSchemaError(
                f"manifest field {name!r} must be "
                f"{' or '.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )
    if not record["bench"]:
        raise PerfSchemaError("manifest field 'bench' must be non-empty")
    timings = record["timings"]
    for key in _REQUIRED_TIMINGS:
        value = timings.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise PerfSchemaError(f"timings[{key!r}] must be a number, got {value!r}")
        if value < 0:
            raise PerfSchemaError(f"timings[{key!r}] must be >= 0, got {value!r}")
    return record

"""Regression comparator over the perf history.

For each bench the *current* run is the last history entry and the
*baseline* is the median of up to ``k`` preceding runs (or of a
separate baseline history file, e.g. the committed one in CI).  The
verdict is deliberately conservative — a run only counts as a
regression when it is **both** relatively slower than
``1 + tolerance`` **and** absolutely slower than ``noise_floor``
seconds, so micro-benchmarks jittering by milliseconds cannot page
anyone.  Comparisons never mix smoke and full-scale runs.

Schema violations surface as :class:`~repro.perf.schema.PerfSchemaError`
from the history loader before any verdict is computed; the CLI maps
those to a hard failure even in warn-only mode.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from .history import RunManifest

__all__ = [
    "Verdict",
    "DEFAULT_K",
    "DEFAULT_TOLERANCE",
    "DEFAULT_NOISE_FLOOR",
    "compare_history",
    "render_verdicts",
]

#: Baseline window: median of up to this many preceding runs.
DEFAULT_K = 5
#: Relative slowdown threshold (0.15 == 15% over baseline).
DEFAULT_TOLERANCE = 0.15
#: Absolute slowdown threshold in seconds; deltas below it are noise.
DEFAULT_NOISE_FLOOR = 0.05

#: Manifest timing fields a comparison may target.
_METRICS = ("engine_seconds", "export_seconds", "wall_seconds")


@dataclass
class Verdict:
    """Comparison outcome for one (bench, smoke-mode) series."""

    bench: str
    smoke: bool
    status: str  # "new" | "regression" | "improvement" | "within-noise"
    metric: str
    current: float
    baseline: Optional[float]
    baseline_runs: int
    ratio: Optional[float]
    delta_seconds: Optional[float]

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"

    def describe(self) -> str:
        if self.baseline is None:
            return (
                f"{self.bench} [{_mode(self.smoke)}]: new "
                f"({self.metric}={self.current:.4f}s, no baseline yet)"
            )
        sign = "+" if self.delta_seconds >= 0 else ""
        return (
            f"{self.bench} [{_mode(self.smoke)}]: {self.status} "
            f"({self.metric}={self.current:.4f}s vs baseline "
            f"{self.baseline:.4f}s over {self.baseline_runs} runs, "
            f"{self.ratio:.2f}x, {sign}{self.delta_seconds:.4f}s)"
        )


def _mode(smoke: bool) -> str:
    return "smoke" if smoke else "full"


def _series(
    manifests: Sequence[RunManifest],
) -> Dict[Tuple[str, bool], List[RunManifest]]:
    """Split history into per-(bench, smoke) series, order preserved."""
    series: Dict[Tuple[str, bool], List[RunManifest]] = {}
    for manifest in manifests:
        series.setdefault((manifest.bench, manifest.smoke), []).append(manifest)
    return series


def _metric_value(manifest: RunManifest, metric: str) -> float:
    return float(getattr(manifest, metric))


def compare_history(
    manifests: Sequence[RunManifest],
    baseline_manifests: Optional[Sequence[RunManifest]] = None,
    k: int = DEFAULT_K,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    metric: str = "engine_seconds",
) -> List[Verdict]:
    """Produce one verdict per (bench, smoke) series in ``manifests``.

    With ``baseline_manifests`` (e.g. the committed CI baseline), the
    baseline for each series is the median of the *last* ``k`` matching
    runs in that file; otherwise it is the median of up to ``k`` runs
    preceding the current one in the same history.
    """
    if metric not in _METRICS:
        raise ReproError(
            f"unknown comparison metric {metric!r}; choose from "
            + ", ".join(_METRICS)
        )
    if k < 1:
        raise ReproError(f"k must be >= 1, got {k}")
    baseline_series = (
        _series(baseline_manifests) if baseline_manifests is not None else None
    )
    verdicts: List[Verdict] = []
    for key, runs in sorted(_series(manifests).items()):
        bench, smoke = key
        current = _metric_value(runs[-1], metric)
        if baseline_series is not None:
            window = baseline_series.get(key, [])[-k:]
        else:
            window = runs[:-1][-k:]
        if not window:
            verdicts.append(
                Verdict(
                    bench=bench,
                    smoke=smoke,
                    status="new",
                    metric=metric,
                    current=current,
                    baseline=None,
                    baseline_runs=0,
                    ratio=None,
                    delta_seconds=None,
                )
            )
            continue
        baseline = statistics.median(_metric_value(m, metric) for m in window)
        delta = current - baseline
        ratio = current / baseline if baseline > 0 else float("inf")
        if delta > noise_floor and ratio > 1.0 + tolerance:
            status = "regression"
        elif -delta > noise_floor and (
            baseline > 0 and ratio < 1.0 - tolerance
        ):
            status = "improvement"
        else:
            status = "within-noise"
        verdicts.append(
            Verdict(
                bench=bench,
                smoke=smoke,
                status=status,
                metric=metric,
                current=current,
                baseline=baseline,
                baseline_runs=len(window),
                ratio=ratio,
                delta_seconds=delta,
            )
        )
    return verdicts


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Human-readable comparison table, regressions first."""
    if not verdicts:
        return "perf compare: history is empty (run `repro perf run` first)"
    order = {"regression": 0, "improvement": 1, "within-noise": 2, "new": 3}
    ordered = sorted(
        verdicts, key=lambda v: (order.get(v.status, 9), v.bench, v.smoke)
    )
    lines = [v.describe() for v in ordered]
    regressions = sum(v.is_regression for v in verdicts)
    lines.append(
        f"-- {len(verdicts)} series compared, {regressions} regression(s)"
    )
    return "\n".join(lines)

"""Perf history store: ``history.jsonl`` + ``BENCH_<name>.json`` files.

The history is an append-only JSONL file (one validated manifest per
line) living at ``benchmarks/results/history.jsonl``.  From it the
harness rolls up one top-level ``BENCH_<name>.json`` per benchmark — a
compact trajectory (timestamp, git SHA, engine seconds, throughput,
peak memory per run) that makes the perf story of the repo visible
from the repo root and diffable in review.

Loading is strict: every line must parse as JSON and pass
:func:`~repro.perf.schema.validate_manifest`, so a corrupted or
schema-drifted history hard-fails instead of feeding the comparator
garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .schema import PerfSchemaError, RunManifest

__all__ = [
    "default_history_path",
    "default_trajectory_dir",
    "append_manifests",
    "load_history",
    "trajectory_record",
    "write_trajectories",
    "group_by_bench",
]


def default_history_path() -> Path:
    """``benchmarks/results/history.jsonl`` of this checkout."""
    from .harness import results_dir

    return results_dir() / "history.jsonl"


def default_trajectory_dir() -> Path:
    """Where ``BENCH_<name>.json`` files land (the repo root)."""
    from .harness import bench_dir

    return bench_dir().parent


def append_manifests(
    manifests: Iterable[RunManifest], path: Optional[Path] = None
) -> Path:
    """Append manifests to the history file (creating it if needed)."""
    path = Path(path) if path else default_history_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [m.to_json_line() for m in manifests]
    if lines:
        with path.open("a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
    return path


def load_history(path: Optional[Path] = None) -> List[RunManifest]:
    """Read and validate the full history, in file (= chronological) order.

    Raises :class:`PerfSchemaError` on any malformed line; a missing
    file is simply an empty history.
    """
    path = Path(path) if path else default_history_path()
    if not path.exists():
        return []
    manifests: List[RunManifest] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PerfSchemaError(
                f"{path.name}:{lineno}: invalid JSON ({exc.msg})"
            ) from exc
        try:
            manifests.append(RunManifest.from_dict(record))
        except PerfSchemaError as exc:
            raise PerfSchemaError(f"{path.name}:{lineno}: {exc}") from exc
    return manifests


def group_by_bench(
    manifests: Iterable[RunManifest],
) -> Dict[str, List[RunManifest]]:
    """Group manifests by bench name, preserving chronological order."""
    groups: Dict[str, List[RunManifest]] = {}
    for manifest in manifests:
        groups.setdefault(manifest.bench, []).append(manifest)
    return groups


def trajectory_record(manifest: RunManifest) -> dict:
    """The compact per-run row stored in ``BENCH_<name>.json``."""
    return {
        "timestamp": manifest.timestamp,
        "git_sha": manifest.git_sha,
        "smoke": manifest.smoke,
        "ok": manifest.ok,
        "engine_seconds": manifest.engine_seconds,
        "export_seconds": manifest.export_seconds,
        "wall_seconds": manifest.wall_seconds,
        "events_per_second": manifest.events_per_second,
        "balls_per_second": manifest.balls_per_second,
        "engines": manifest.engines,
        "tracemalloc_peak_bytes": manifest.tracemalloc_peak_bytes,
        "rss_peak_bytes": manifest.rss_peak_bytes,
        "workers": manifest.workers,
        "seed": manifest.seed,
    }


def write_trajectories(
    manifests: Iterable[RunManifest], directory: Optional[Path] = None
) -> List[Path]:
    """Rewrite one ``BENCH_<name>.json`` per bench from full history.

    Idempotent: derived entirely from the manifests handed in, so
    re-running after an append simply extends each trajectory.
    """
    directory = Path(directory) if directory else default_trajectory_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for bench, runs in sorted(group_by_bench(manifests).items()):
        payload = {
            "bench": bench,
            "schema": runs[-1].schema,
            "runs": len(runs),
            "latest": trajectory_record(runs[-1]),
            "trajectory": [trajectory_record(m) for m in runs],
        }
        path = directory / f"BENCH_{bench}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written

"""Unified benchmark harness: one registry, one manifest per run.

Every script under ``benchmarks/`` declares itself with
:func:`register` — a name, a ``run()`` callable producing the payload,
an optional ``render(payload)`` for the human table, an optional
``check(payload)`` asserting the paper's qualitative claims, and an
optional ``workload(payload)`` reporting how many events/balls the
engine phase processed (for throughput).  The harness then owns
everything the scripts used to copy-paste:

- smoke-mode resolution (``REPRO_BENCH_SMOKE=1`` or ``--smoke``);
- artifact emission under ``benchmarks/results/`` with the *same
  filenames as before* (``<name>.txt`` / ``<name>.json``, with the
  ``_smoke`` suffix in smoke mode so committed full-scale artifacts
  survive test runs);
- profiling: the engine phase runs inside its own span, **separate**
  from the export span, so recorded throughput never includes JSON
  serialization or table rendering time;
- the schema-versioned :class:`~repro.perf.schema.RunManifest` and its
  append into ``benchmarks/results/history.jsonl`` plus the top-level
  ``BENCH_<name>.json`` trajectories (``repro perf run`` only — plain
  script runs and pytest wrappers leave history untouched).

A ported bench script is three declarations and two thin wrappers::

    SPEC = register("fig3a", run=_run, check=_check)

    def bench_fig3a(benchmark):
        benchmark.pedantic(lambda: SPEC.execute(raise_on_check=True),
                           rounds=1, iterations=1)

    if __name__ == "__main__":
        raise SystemExit(SPEC.main())
"""

from __future__ import annotations

import importlib
import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ReproError
from .profiler import Profiler
from .schema import RunManifest, git_sha, peak_rss_bytes

__all__ = [
    "BenchSpec",
    "BenchResult",
    "register",
    "registered",
    "get_spec",
    "discover",
    "run_suite",
    "active_profiler",
    "bench_dir",
    "results_dir",
    "smoke_mode",
    "emit",
    "emit_json",
    "timed",
]

#: Environment flag every bench honours for seconds-scale runs.
SMOKE_ENV = "REPRO_BENCH_SMOKE"

#: Override for the benchmarks directory (tests, exotic layouts).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Global bench registry: name -> spec (insertion-ordered).
_REGISTRY: Dict[str, "BenchSpec"] = {}

#: The profiler of the currently executing bench (see
#: :func:`active_profiler`); ``None`` outside :meth:`BenchSpec.execute`.
_ACTIVE_PROFILER: Optional[Profiler] = None


def bench_dir() -> Path:
    """The ``benchmarks/`` directory of this checkout.

    Honours ``REPRO_BENCH_DIR``; otherwise resolves relative to the
    package source tree (``src/repro/perf`` -> repo root -> benchmarks).
    """
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks"


def results_dir() -> Path:
    """Where artifacts land (``benchmarks/results/``)."""
    return bench_dir() / "results"


def smoke_mode() -> bool:
    """Whether ``REPRO_BENCH_SMOKE=1`` asks for a seconds-scale run."""
    return os.environ.get(SMOKE_ENV, "") == "1"


def timed(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _json_default(value):
    """JSON fallback for the numpy scalars/arrays payloads carry."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def emit(name: str, text: str, directory: Optional[Path] = None) -> Path:
    """Print a result table and persist it under the results directory."""
    print(f"\n{text}\n", file=sys.stderr)
    directory = Path(directory) if directory else results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def emit_json(name: str, payload: dict, directory: Optional[Path] = None) -> Path:
    """Persist a machine-readable result dict as ``<name>.json``."""
    directory = Path(directory) if directory else results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=_json_default) + "\n",
        encoding="utf-8",
    )
    return path


def active_profiler() -> Optional[Profiler]:
    """The executing bench's profiler (``None`` outside a harness run).

    Bench ``run()`` bodies use this to attach op-counting to engine
    calls (``metrics=active_profiler().metrics``) without the harness
    having to thread the profiler through every signature.
    """
    return _ACTIVE_PROFILER


@contextmanager
def _smoke_env(smoke: bool) -> Iterator[None]:
    """Pin ``REPRO_BENCH_SMOKE`` for the duration of one execution."""
    previous = os.environ.get(SMOKE_ENV)
    os.environ[SMOKE_ENV] = "1" if smoke else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[SMOKE_ENV]
        else:
            os.environ[SMOKE_ENV] = previous


def _payload_dict(payload: Any, smoke: bool) -> dict:
    """Normalise a bench payload to the JSON artifact shape."""
    if hasattr(payload, "columns") and hasattr(payload, "render"):
        # ExperimentResult (duck-typed to avoid an import cycle).
        record = {
            "name": payload.name,
            "description": payload.description,
            "columns": dict(payload.columns),
            "config": dict(payload.config),
            "notes": list(payload.notes),
        }
    elif isinstance(payload, dict):
        record = dict(payload)
    else:
        raise ReproError(
            f"bench payload must be a dict or ExperimentResult, "
            f"got {type(payload).__name__}"
        )
    record.setdefault("smoke", smoke)
    return record


def _manifest_config(payload_dict: dict) -> dict:
    """The manifest's config block: the payload's ``config`` if present."""
    config = payload_dict.get("config")
    return dict(config) if isinstance(config, dict) else {}


def _manifest_workers(payload_dict: dict) -> Optional[int]:
    """Worker count from the payload config, when the bench records one."""
    config = payload_dict.get("config")
    if isinstance(config, dict):
        workers = config.get("workers")
        if isinstance(workers, int) and not isinstance(workers, bool):
            return workers
    return None


def _manifest_engines(payload_dict: dict) -> Optional[Dict[str, dict]]:
    """Per-engine breakdown from the payload, when the bench records one."""
    engines = payload_dict.get("engines")
    if isinstance(engines, dict):
        cleaned = {
            str(name): dict(stats)
            for name, stats in engines.items()
            if isinstance(stats, dict)
        }
        if cleaned:
            return cleaned
    return None


def _default_render(payload: Any, payload_dict: dict) -> str:
    if hasattr(payload, "render"):
        return payload.render()
    return json.dumps(payload_dict, indent=2, sort_keys=True, default=_json_default)


@dataclass
class BenchResult:
    """Outcome of one harness execution."""

    spec: "BenchSpec"
    payload: Any
    payload_dict: dict
    rendered: str
    manifest: RunManifest
    ok: bool
    error: Optional[str] = None


@dataclass
class BenchSpec:
    """One registered benchmark.

    Parameters
    ----------
    name:
        Artifact stem: writes ``results/<name>.txt`` (and ``.json``),
        appears as ``bench`` in manifests and as ``BENCH_<name>.json``.
    run:
        Zero-argument callable producing the payload (a dict or an
        :class:`~repro.experiments.report.ExperimentResult`).  Reads
        :func:`smoke_mode` itself where a seconds-scale variant exists.
    render:
        ``payload -> str`` table renderer; defaults to
        ``payload.render()`` or pretty-printed JSON.
    check:
        ``payload -> None`` asserting the bench's qualitative claims
        (plain ``assert`` statements); a failure marks the manifest
        ``ok=False`` instead of crashing the suite.
    workload:
        ``payload -> {"events": int | None, "balls": int | None}`` —
        units the *engine* phase processed, for throughput reporting.
    seed:
        Root seed recorded in the manifest.
    emit_text / emit_payload:
        Whether to write the ``.txt`` / ``.json`` artifacts.
    """

    name: str
    run: Callable[[], Any]
    render: Optional[Callable[[Any], str]] = None
    check: Optional[Callable[[Any], None]] = None
    workload: Optional[Callable[[Any], Dict[str, Optional[int]]]] = None
    seed: Optional[int] = None
    emit_text: bool = True
    emit_payload: bool = True
    module: Optional[str] = field(default=None, repr=False)

    def execute(
        self,
        smoke: Optional[bool] = None,
        profiler: Optional[Profiler] = None,
        directory: Optional[Path] = None,
        emit_artifacts: bool = True,
        raise_on_check: bool = False,
        quiet: bool = False,
    ) -> BenchResult:
        """Run the bench once under the profiler and build its manifest.

        The engine phase (``run()``) executes inside the
        ``<name>/engine`` span; rendering and artifact serialization
        execute inside the sibling ``<name>/export`` span.  Manifest
        throughput divides workload units by the *engine* span only —
        export time is structurally excluded, and
        ``tests/test_perf_harness.py`` pins that with an injected clock.
        """
        global _ACTIVE_PROFILER
        smoke = smoke_mode() if smoke is None else bool(smoke)
        profiler = profiler if profiler is not None else Profiler()
        ok, error = True, None
        previous_profiler = _ACTIVE_PROFILER
        _ACTIVE_PROFILER = profiler
        try:
            with _smoke_env(smoke), profiler.capture():
                with profiler.span(self.name) as outer:
                    with profiler.span("engine") as engine:
                        payload = self.run()
                    if self.check is not None:
                        try:
                            self.check(payload)
                        except AssertionError as exc:
                            if raise_on_check:
                                raise
                            ok, error = False, str(exc) or "check failed"
                    payload_dict = _payload_dict(payload, smoke)
                    with profiler.span("export") as export:
                        rendered = (
                            self.render(payload)
                            if self.render is not None
                            else _default_render(payload, payload_dict)
                        )
                        if emit_artifacts:
                            stem = f"{self.name}_smoke" if smoke else self.name
                            if self.emit_text:
                                if quiet:
                                    target = Path(directory) if directory else results_dir()
                                    target.mkdir(parents=True, exist_ok=True)
                                    (target / f"{stem}.txt").write_text(
                                        rendered + "\n", encoding="utf-8"
                                    )
                                else:
                                    emit(stem, rendered, directory=directory)
                            if self.emit_payload:
                                emit_json(stem, payload_dict, directory=directory)
        finally:
            _ACTIVE_PROFILER = previous_profiler
        workload = self.workload(payload) if self.workload is not None else {}
        snapshot = profiler.snapshot()
        manifest = RunManifest(
            bench=self.name,
            smoke=smoke,
            ok=ok,
            engine_seconds=float(engine.duration or 0.0),
            export_seconds=float(export.duration or 0.0),
            wall_seconds=float(outer.duration or 0.0),
            config=_manifest_config(payload_dict),
            seed=self.seed,
            workers=_manifest_workers(payload_dict),
            git_sha=git_sha(cwd=bench_dir().parent),
            events=workload.get("events"),
            balls=workload.get("balls"),
            engines=_manifest_engines(payload_dict),
            ops=snapshot["ops"],
            spans=snapshot["spans"],
            tracemalloc_peak_bytes=profiler.tracemalloc_peak_bytes,
            rss_peak_bytes=peak_rss_bytes(),
            error=error,
        )
        return BenchResult(
            spec=self,
            payload=payload,
            payload_dict=payload_dict,
            rendered=rendered,
            manifest=manifest,
            ok=ok,
            error=error,
        )

    def main(self, argv: Optional[Sequence[str]] = None) -> int:
        """Standalone-script entry point: run once, exit non-zero on a
        failed check.  Plain script runs do not touch the history store
        (that is ``repro perf run``'s job)."""
        import argparse

        parser = argparse.ArgumentParser(
            prog=f"bench_{self.name}",
            description=f"run the {self.name!r} benchmark once",
        )
        parser.add_argument(
            "--smoke",
            action="store_true",
            help=f"seconds-scale run (equivalent to {SMOKE_ENV}=1)",
        )
        args = parser.parse_args(argv)
        smoke = args.smoke or smoke_mode()
        result = self.execute(smoke=smoke)
        if result.error:
            print(f"check failed: {result.error}", file=sys.stderr)
        return 0 if result.ok else 1


def register(
    name: str,
    run: Callable[[], Any],
    render: Optional[Callable[[Any], str]] = None,
    check: Optional[Callable[[Any], None]] = None,
    workload: Optional[Callable[[Any], Dict[str, Optional[int]]]] = None,
    seed: Optional[int] = None,
    emit_text: bool = True,
    emit_payload: bool = True,
) -> BenchSpec:
    """Register (or replace) one benchmark in the global registry.

    Re-registration with the same name replaces the previous spec —
    module reloads under pytest must not error — but two *different*
    modules claiming one name is a bug worth failing loudly on.
    """
    module = getattr(run, "__module__", None)
    existing = _REGISTRY.get(name)
    if existing is not None and existing.module not in (None, module, "__main__"):
        if module not in (None, "__main__"):
            raise ReproError(
                f"bench {name!r} is already registered by module "
                f"{existing.module!r} (attempted re-registration from {module!r})"
            )
    spec = BenchSpec(
        name=name,
        run=run,
        render=render,
        check=check,
        workload=workload,
        seed=seed,
        emit_text=emit_text,
        emit_payload=emit_payload,
        module=module,
    )
    _REGISTRY[name] = spec
    return spec


def registered() -> List[BenchSpec]:
    """Registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_spec(name: str) -> BenchSpec:
    """Fetch one spec, with a helpful error when missing."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ReproError(f"no bench named {name!r}; registered: {known}") from None


def discover(directory: Optional[Path] = None) -> List[BenchSpec]:
    """Import every ``bench_*.py`` under ``benchmarks/`` to register it.

    Scripts self-register at import; this just makes the imports happen.
    The directory is prepended to ``sys.path`` so the scripts' local
    ``from _util import ...`` keeps working unchanged.
    """
    directory = Path(directory) if directory else bench_dir()
    if not directory.is_dir():
        raise ReproError(
            f"benchmarks directory not found at {directory}; set "
            f"{BENCH_DIR_ENV} to point the harness at a checkout"
        )
    path_entry = str(directory)
    added = path_entry not in sys.path
    if added:
        sys.path.insert(0, path_entry)
    try:
        for script in sorted(directory.glob("bench_*.py")):
            importlib.import_module(script.stem)
    finally:
        if added:
            sys.path.remove(path_entry)
    return registered()


def run_suite(
    names: Optional[Sequence[str]] = None,
    smoke: bool = True,
    directory: Optional[Path] = None,
    history_path: Optional[Path] = None,
    trajectory_dir: Optional[Path] = None,
    update_history: bool = True,
    quiet: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run a set of registered benches, append history, write trajectories.

    Each bench gets a fresh :class:`Profiler` so its manifest carries
    only its own ops/spans.  History and the top-level
    ``BENCH_<name>.json`` trajectory files update once at the end (and
    only when ``update_history`` — plain script runs never touch them).
    """
    from .history import append_manifests, default_history_path, load_history
    from .history import write_trajectories

    if not _REGISTRY:
        discover()
    specs = (
        [get_spec(name) for name in names] if names else registered()
    )
    results: List[BenchResult] = []
    for spec in specs:
        if progress is not None:
            progress(f"perf: running {spec.name} ({'smoke' if smoke else 'full'})")
        results.append(
            spec.execute(smoke=smoke, directory=directory, quiet=quiet)
        )
    if update_history and results:
        history_path = (
            Path(history_path) if history_path else default_history_path()
        )
        append_manifests([r.manifest for r in results], history_path)
        write_trajectories(load_history(history_path), trajectory_dir)
    return results

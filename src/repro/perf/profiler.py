"""Deterministic profiler: op-counters, span timing, peak memory.

The profiler is a thin bundle over the two existing observability seams
plus a ``tracemalloc`` window:

- **op-counters** live in a private :class:`~repro.obs.MetricsRegistry`.
  Attach ``profiler.metrics`` anywhere a ``metrics=`` argument is
  accepted (both engines, the allocation kernels, the caches) and every
  operation count — requests simulated, balls thrown, cache ops, heap
  events — lands here.  Counter values are *deterministic*: the engines
  record per-trial registries that merge in trial order, so
  :meth:`Profiler.op_counts` is bit-identical for every worker count
  (pinned by ``tests/test_perf_profiler.py``).
- **spans** live in a private :class:`~repro.obs.Tracer`; wall-clock,
  explicitly excluded from the determinism guarantee, injectable clock
  for tests.
- **memory**: :meth:`Profiler.capture` brackets a region with
  ``tracemalloc`` and records the peak traced allocation alongside the
  process RSS high-water mark.

The profiler is an *observer*: attaching it never changes an engine
result (the golden-fixture test pins the disabled path byte-for-byte,
and the determinism tests pin the attached path value-for-value).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.tracer import NULL_TRACER, Tracer
from .schema import peak_rss_bytes

__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER", "as_profiler"]


def _format_key(name: str, labels) -> str:
    """Stable flat key for one metric series: ``name{k=v,...}``."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Profiler:
    """Op-counters + wall-clock spans + peak-memory capture, one handle.

    Parameters
    ----------
    clock:
        Monotonic time source for the span tracer (injectable so the
        harness tests can assert exact span arithmetic).  Defaults to
        :func:`time.perf_counter`.
    max_spans:
        Raw-span retention cap forwarded to the tracer.
    trace_memory:
        Whether :meth:`capture` runs ``tracemalloc`` (it costs a
        constant factor on allocation-heavy code; benches keep it on,
        hot loops that only want counters can turn it off).
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 10_000,
        trace_memory: bool = True,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock=clock if clock is not None else time.perf_counter,
            max_spans=max_spans,
        )
        self._trace_memory = trace_memory
        self.tracemalloc_peak_bytes: Optional[int] = None

    # -- spans -------------------------------------------------------------

    def span(self, name: str):
        """Open a named wall-clock span (delegates to the tracer)."""
        return self.tracer.span(name)

    def span_aggregates(self) -> Dict[str, dict]:
        """Per-path span statistics (count, total, mean, percentiles)."""
        return self.tracer.aggregates()

    # -- op-counters -------------------------------------------------------

    def count(self, op: str, amount: float = 1, **labels: object) -> None:
        """Record ``amount`` operations of kind ``op`` directly."""
        self.metrics.counter(op, **labels).inc(amount)

    def op_counts(self) -> Dict[str, float]:
        """Every counter as a flat ``{name{labels}: value}`` mapping.

        Deterministic: counters recorded through the engines' metrics
        seams are merged in trial order, never completion order, so
        this mapping is identical for any worker count.
        """
        return {
            _format_key(c.name, c.labels): c.value for c in self.metrics.counters()
        }

    # -- memory ------------------------------------------------------------

    @contextmanager
    def capture(self) -> Iterator["Profiler"]:
        """Bracket a region with ``tracemalloc`` peak tracking.

        Nest-safe: if tracing is already on (an outer capture or the
        caller's own tracemalloc session), the window only resets the
        peak counter and leaves tracing running on exit.
        """
        if not self._trace_memory:
            yield self
            return
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        try:
            yield self
        finally:
            _, peak = tracemalloc.get_traced_memory()
            previous = self.tracemalloc_peak_bytes or 0
            self.tracemalloc_peak_bytes = max(previous, int(peak))
            if started_here:
                tracemalloc.stop()

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump: ops, span aggregates, memory peaks."""
        return {
            "ops": self.op_counts(),
            "spans": self.span_aggregates(),
            "memory": {
                "tracemalloc_peak_bytes": self.tracemalloc_peak_bytes,
                "rss_peak_bytes": peak_rss_bytes(),
            },
        }


class NullProfiler(Profiler):
    """The disabled profiler: shared no-op sinks, no clock reads.

    Hands out the process-wide null registry and null tracer, so code
    written against ``profiler.metrics`` / ``profiler.span(...)``
    behaves exactly like the uninstrumented path.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_memory=False, max_spans=0)
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER

    def snapshot(self) -> dict:
        return {
            "ops": {},
            "spans": {},
            "memory": {"tracemalloc_peak_bytes": None, "rss_peak_bytes": None},
        }


#: Process-wide shared no-op profiler.
NULL_PROFILER = NullProfiler()


def as_profiler(profiler: Optional[Profiler]) -> Profiler:
    """Normalise an optional ``profiler=`` argument: ``None`` -> no-op."""
    return NULL_PROFILER if profiler is None else profiler

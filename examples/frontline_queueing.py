#!/usr/bin/env python3
"""Request-level view: what a DDoS actually feels like at the nodes.

The paper's analysis speaks in steady-state rates; this example replays
the attack through the discrete-event engine — Poisson arrivals, real
cache policies, per-node FIFO queues with finite capacity — so you can
see the observable symptoms: hit-rate collapse, tail-latency blowup and
request drops, and how cache provisioning plus a scan-resistant policy
removes them.

Scenarios (same adversary rate throughout):
  A. perfect cache, under-provisioned  -> victim node saturates
  B. perfect cache, provisioned        -> attack absorbed
  C. LRU cache,     provisioned        -> cyclic scan defeats LRU
  D. TinyLFU+LRU,   provisioned        -> admission filter restores B

Run:  python examples/frontline_queueing.py        (~30 s)
"""

from repro import SystemParameters
from repro.experiments.report import render_table
from repro.scenario import ScenarioSpec, run_scenario

N_QUERIES = 60_000
SEED = 21
CAPACITY_FACTOR = 1.5


def queueing_scenario(name, params, workload, cache="perfect"):
    """One request-level scenario as a declarative spec document."""
    return ScenarioSpec.from_dict({
        "scenario": 1,
        "name": name,
        "system": {
            "n": params.n, "m": params.m, "c": params.c,
            "d": params.d, "rate": params.rate,
            "node_capacity": CAPACITY_FACTOR * params.even_split,
        },
        "workload": workload,
        "cache": cache,
        "engine": "event-driven",
        "trials": 1,
        "queries": N_QUERIES,
        "seed": SEED,
    })


def run_row(spec: ScenarioSpec) -> dict:
    outcome = run_scenario(spec)
    result = outcome.result.results[0]
    return {
        "scenario": spec.name,
        "hit_rate": round(result.cache_hit_rate, 3),
        "backend_share": round(result.backend_queries / N_QUERIES, 3),
        "gain": round(result.normalized_max, 2),
        "drop_rate": round(result.drop_rate, 4),
        "p99_ms": round(result.latency_p99 * 1e3, 2),
    }


def main() -> None:
    base = SystemParameters(n=50, m=10_000, c=25, d=3, rate=25_000.0)
    provisioned = base.with_cache(200)  # ~4 entries per node: Case 2
    attack_small = {"kind": "adversarial", "x": base.c + 1}
    sweep = {"kind": "adversarial", "x": provisioned.m}
    scan = {"kind": "cyclic-scan", "x": 4 * provisioned.c}

    specs = [
        queueing_scenario("A: tiny cache, x=c+1 flood", base, attack_small),
        queueing_scenario("B: provisioned, full sweep", provisioned, sweep),
        queueing_scenario(
            "C: provisioned but LRU, cyclic scan", provisioned, scan, cache="lru"
        ),
        queueing_scenario(
            "D: provisioned TinyLFU+LRU, cyclic scan",
            provisioned,
            scan,
            cache={"kind": "tinylfu", "inner": "lru"},
        ),
    ]
    rows = [run_row(spec) for spec in specs]
    columns = {key: [row[key] for row in rows] for key in rows[0]}
    print(render_table(columns, title=f"{N_QUERIES} Poisson arrivals per scenario"))
    print(
        "\nA shows the paper's attack succeeding: one uncached key pins a\n"
        "node at ~n/(c+1) times the even split — past its 1.5x capacity, so\n"
        "requests queue (p99 explodes) and drop.  B is the same adversary\n"
        "against the provisioned cache: gain ~1, zero drops.  C swaps the\n"
        "perfect cache for LRU and sends the sweep in cyclic order: the hit\n"
        "rate collapses to 0 and the back end must absorb 100% of the\n"
        "offered load instead of ~75% — a 1.33x aggregate capacity tax even\n"
        "though the *relative* imbalance stays modest (wide sweeps spread\n"
        "evenly; that is exactly the paper's Case-2 insight).  D puts a\n"
        "TinyLFU admission filter in front of the same LRU and wins back\n"
        "the cache's share with a real, deployable policy."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Request-level view: what a DDoS actually feels like at the nodes.

The paper's analysis speaks in steady-state rates; this example replays
the attack through the discrete-event engine — Poisson arrivals, real
cache policies, per-node FIFO queues with finite capacity — so you can
see the observable symptoms: hit-rate collapse, tail-latency blowup and
request drops, and how cache provisioning plus a scan-resistant policy
removes them.

Scenarios (same adversary rate throughout):
  A. perfect cache, under-provisioned  -> victim node saturates
  B. perfect cache, provisioned        -> attack absorbed
  C. LRU cache,     provisioned        -> cyclic scan defeats LRU
  D. TinyLFU+LRU,   provisioned        -> admission filter restores B

Run:  python examples/frontline_queueing.py        (~30 s)
"""

from repro import EventDrivenSimulator, SystemParameters
from repro.cache import FrequencyAdmissionCache, LRUCache
from repro.experiments.report import render_table
from repro.workload import AdversarialDistribution, CyclicScanDistribution

N_QUERIES = 60_000
SEED = 21


def run_scenario(name, params, distribution, cache=None, capacity_factor=1.5):
    sim = EventDrivenSimulator(
        params,
        distribution,
        cache=cache,
        node_capacity=capacity_factor * params.even_split,
        seed=SEED,
    )
    result = sim.run(N_QUERIES)
    return {
        "scenario": name,
        "hit_rate": round(result.cache_hit_rate, 3),
        "backend_share": round(result.backend_queries / N_QUERIES, 3),
        "gain": round(result.normalized_max, 2),
        "drop_rate": round(result.drop_rate, 4),
        "p99_ms": round(result.latency_p99 * 1e3, 2),
    }


def main() -> None:
    base = SystemParameters(n=50, m=10_000, c=25, d=3, rate=25_000.0)
    provisioned = base.with_cache(200)  # ~4 entries per node: Case 2
    attack_small = AdversarialDistribution(base.m, base.c + 1)
    sweep = AdversarialDistribution(provisioned.m, provisioned.m)
    scan = CyclicScanDistribution(provisioned.m, 4 * provisioned.c)

    rows = [
        run_scenario("A: tiny cache, x=c+1 flood", base, attack_small),
        run_scenario("B: provisioned, full sweep", provisioned, sweep),
        run_scenario(
            "C: provisioned but LRU, cyclic scan",
            provisioned,
            scan,
            cache=LRUCache(provisioned.c),
        ),
        run_scenario(
            "D: provisioned TinyLFU+LRU, cyclic scan",
            provisioned,
            scan,
            cache=FrequencyAdmissionCache(LRUCache(provisioned.c)),
        ),
    ]
    columns = {key: [row[key] for row in rows] for key in rows[0]}
    print(render_table(columns, title=f"{N_QUERIES} Poisson arrivals per scenario"))
    print(
        "\nA shows the paper's attack succeeding: one uncached key pins a\n"
        "node at ~n/(c+1) times the even split — past its 1.5x capacity, so\n"
        "requests queue (p99 explodes) and drop.  B is the same adversary\n"
        "against the provisioned cache: gain ~1, zero drops.  C swaps the\n"
        "perfect cache for LRU and sends the sweep in cyclic order: the hit\n"
        "rate collapses to 0 and the back end must absorb 100% of the\n"
        "offered load instead of ~75% — a 1.33x aggregate capacity tax even\n"
        "though the *relative* imbalance stays modest (wide sweeps spread\n"
        "evenly; that is exactly the paper's Case-2 insight).  D puts a\n"
        "TinyLFU admission filter in front of the same LRU and wins back\n"
        "the cache's share with a real, deployable policy."
    )


if __name__ == "__main__":
    main()

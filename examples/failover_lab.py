#!/usr/bin/env python3
"""Failover lab: watch the cluster lose nodes, retry, and stay bounded.

Replays the paper's worst-case attack through the event-driven engine
while a fault injector crashes (and repairs) nodes live.  Three acts:

1. a healthy run for reference;
2. the same run under a synthesised crash/repair process — the front
   end fails over across replica groups with timeout + backoff, the
   monitor prints each window's effective ``d`` and the Theorem-2 bound
   *refreshed for the degraded cluster*, and the ``degraded-bound``
   alert fires the moment failures bite;
3. an incident replay: a hand-written schedule takes out an entire
   replica group's worth of nodes at once, demonstrating unavailability
   accounting and stale serving.

Run:  python examples/failover_lab.py        (~15 s)
"""

from repro import SystemParameters
from repro.chaos import ChaosConfig, FailureEvent, FailureSchedule, RetryPolicy
from repro.obs import LoadMonitor, MonitorConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

SEED = 13
SYSTEM = SystemParameters(n=50, m=5000, c=25, d=3, rate=10_000.0)
X = 200
QUERIES = 30_000


def replay(label: str, chaos, verbose_windows: bool = False):
    """One seeded replay of the x=200 attack, optionally chaotic."""

    def on_window(w):
        if not verbose_windows:
            return
        eff = w.get("effective_d")
        degraded = w.get("degraded_bound")
        flags = ",".join(w["alerts"]) or "-"
        print(
            f"  t={w['t_end']:6.3f}s  gain={w['running_gain']:5.3f}  "
            f"d_eff={eff if eff is None else format(eff, '4.2f')}  "
            f"bound={w['bound']:5.3f}"
            + (f" -> {degraded:5.3f}" if degraded is not None else "        ")
            + f"  down={w.get('nodes_down', 0)}  alerts={flags}"
        )

    monitor = LoadMonitor(
        MonitorConfig.from_params(SYSTEM, x=X, window=0.1), on_window=on_window
    )
    sim = EventDrivenSimulator(
        SYSTEM, AdversarialDistribution(SYSTEM.m, X), seed=SEED,
        monitor=monitor, chaos=chaos,
    )
    result = sim.run(QUERIES)
    print(f"{label}:")
    served = int(result.served.sum())
    print(
        f"  gain {result.normalized_max:.3f}, {served} served, "
        f"{result.unavailable} unavailable ({result.stale_hits} stale), "
        f"{result.retries} retries, {result.failure_events} failure events"
    )
    summary = monitor.summaries[-1]
    if "effective_d_min" in summary:
        print(
            f"  effective d bottomed at {summary['effective_d_min']:.2f} "
            f"(configured d={SYSTEM.d}); degraded bound peaked at "
            f"{summary['degraded_bound']:.3f} vs healthy {summary['bound']:.3f}"
        )
    fired = sorted({a["rule"] for a in monitor.alerts})
    print(f"  alerts fired: {', '.join(fired) or 'none'}")
    print()
    return result


def incident_schedule() -> FailureSchedule:
    """A scripted incident: a third of the cluster dies at t=1s,
    recovering in staggered waves half a second apart."""
    events = []
    doomed = range(0, SYSTEM.n, 3)
    for wave, node in enumerate(doomed):
        events.append(FailureEvent(time=1.0, node=node, kind="crash"))
        events.append(
            FailureEvent(time=1.5 + 0.5 * (wave % 3), node=node, kind="recover")
        )
    return FailureSchedule(tuple(events))


def main() -> None:
    print(f"FAILOVER LAB: x={X} attack vs {SYSTEM.describe()}\n")

    replay("ACT 1 — healthy cluster", chaos=None)

    process = ChaosConfig(
        failure_rate=0.3, mttr=0.5,
        retry=RetryPolicy(max_attempts=3, timeout=0.01, backoff=0.005),
    )
    print(f"ACT 2 — live crash/repair process ({process.describe()})")
    replay("result", process, verbose_windows=True)

    incident = ChaosConfig(schedule=incident_schedule(), serve_stale=True)
    print(
        f"ACT 3 — scripted incident: {incident.schedule.crash_count} nodes "
        "crash at t=1.0s, staggered recovery"
    )
    replay("result", incident)

    print(
        "replication absorbs the failure process: retries hide almost every\n"
        "crash, unavailability only appears when a key's whole replica group\n"
        "is down at once, and the refreshed bound tracks exactly how much\n"
        "protection the degraded cluster still provably provides."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario sweeps: one YAML document, a whole evaluation grid.

The declarative layer (docs/SCENARIOS.md) turns the question "which
cache policy holds up under a cyclic-scan attack, and how much does
replication help?" into a campaign spec: a base scenario plus a sweep
grid.  The campaign runner expands the grid, executes every cell
through the registered engine, and emits a schema-versioned manifest
plus a comparative HTML report — the exact artifacts
``python -m repro scenario sweep`` produces from a file on disk.

Run:  python examples/scenario_sweep.py        (~30 s)
"""

import tempfile
from pathlib import Path

from repro.scenario import loads_spec, run_campaign

CAMPAIGN = """
campaign: 1
name: scan-resistance
base:
  system: {n: 50, m: 10000, c: 200, d: 3, rate: 25000.0}
  workload: {kind: cyclic-scan, x: 800}
  engine: event-driven
  trials: 2
  queries: 20000
  seed: 21
sweep:
  cache.kind: [lru, sieve, tinylfu]
  system.d: [2, 3]
"""


def main() -> None:
    campaign = loads_spec(CAMPAIGN, fmt="yaml")
    print(f"campaign {campaign.name!r}: grid {campaign.grid_shape} = "
          f"{len(campaign.expand())} scenarios\n")

    out_dir = Path(tempfile.mkdtemp(prefix="scenario-sweep-"))
    result = run_campaign(
        campaign,
        out_dir=out_dir,
        progress=lambda i, total, spec: print(f"[{i + 1}/{total}] {spec.name}"),
    )

    print()
    print(result.describe())
    print(
        "\nreading the table: LRU collapses under the scan (hit rate ~0);\n"
        "SIEVE and the TinyLFU admission filter keep most of the cache's\n"
        "share; raising d lowers the relative imbalance on top.  The\n"
        "manifest pins every spec + stat for regression diffing, and the\n"
        "HTML report holds the side-by-side comparison table."
    )


if __name__ == "__main__":
    main()

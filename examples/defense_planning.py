#!/usr/bin/env python3
"""Defense planning: picking d and c together, auditing a real fleet.

Extends the paper's operator story with the toolkit built around it:

1. the cache-vs-replication cost frontier (`plan_defense`): the paper
   fixes `d` and sizes `c`; with unit costs for fast-memory entries and
   extra replicas you can optimise both at once;
2. an operation-mix derating (`OperationMix`): with reads and writes of
   different back-end cost, an all-write attacker inflates their
   effective rate — capacity must be planned against that;
3. a heterogeneous-fleet audit (`audit_capacities`): mixed hardware
   generations against the worst-case bound, blind vs capacity-aware
   placement.

Run:  python examples/defense_planning.py        (instant — pure analysis)
"""

import numpy as np

from repro import SystemParameters
from repro.core import (
    audit_capacities,
    plan_defense,
    ResourceCosts,
    utilization_equalizing_bound,
)
from repro.experiments.report import render_table
from repro.workload import OperationMix

N = 2000
M = 50_000_000
RATE = 2e6  # 2M qps offered
K_PRIME = 0.75


def main() -> None:
    # --- 1. choose (c, d) on the cost frontier -------------------------
    print("1) cache-vs-replication frontier")
    print("   (cache entry = 1 cost unit; one extra replica of one item = 5e-5)\n")
    plan = plan_defense(
        n=N, m=M, costs=ResourceCosts(cache_entry=1.0, replica_item=5e-5)
    )
    print(plan.describe())
    d = plan.best.d
    c = plan.best.required_cache
    print(f"\n=> deploy d={d}, c={c} ({c / N:.2f} cache entries per node)\n")

    # --- 2. derate for the operation mix --------------------------------
    print("2) operation-mix derating")
    mix = OperationMix({"read": (0.85, 1.0), "write": (0.15, 4.0)})
    inflation = mix.worst_case_inflation()
    print(
        f"   benign mix costs {mix.mean_cost:.2f} units/query; an all-write\n"
        f"   attacker is {inflation:.2f}x heavier per query, so plan capacity\n"
        f"   against an effective rate of {RATE * inflation:,.0f} cost-qps, not {RATE:,.0f}.\n"
    )
    effective_rate = RATE * inflation

    # --- 3. audit the actual fleet ---------------------------------------
    print("3) fleet audit under the worst planned attack")
    system = SystemParameters(n=N, m=M, c=c, d=d, rate=effective_rate)
    rng = np.random.default_rng(3)
    # 70% standard nodes, 25% previous-gen at 0.6x, 5% new at 2x.
    # Standard nodes carry 1.5x the even split — tight, as real fleets are.
    standard = 1.5 * effective_rate / N
    capacities = np.full(N, standard)
    generation = rng.random(N)
    capacities[generation < 0.25] = 0.6 * standard
    capacities[generation > 0.95] = 2.0 * standard

    audit = audit_capacities(system, capacities, k_prime=K_PRIME)
    print(f"   capacity-blind placement : {audit.describe()}")

    hetero_bound = utilization_equalizing_bound(system, capacities, k_prime=K_PRIME)
    at_risk_aware = int((hetero_bound > capacities).sum())
    print(
        f"   capacity-aware placement : {at_risk_aware} node(s) at risk "
        f"(per-node bound vs capacity, least-utilized pinning)"
    )

    rows = {
        "generation": ["previous (0.6x)", "standard", "new (2x)"],
        "nodes": [
            int((capacities == 0.6 * standard).sum()),
            int((capacities == standard).sum()),
            int((capacities == 2.0 * standard).sum()),
        ],
        "capacity_qps": [0.6 * standard, standard, 2.0 * standard],
        "blind_bound_qps": [audit.worst_load_bound] * 3,
        "aware_bound_qps": [
            float(hetero_bound[capacities == 0.6 * standard].max()),
            float(hetero_bound[capacities == standard].max()),
            float(hetero_bound[capacities == 2.0 * standard].max()),
        ],
    }
    print()
    print(render_table(rows, title="   per-generation view", precision=5))
    print(
        "\nunder blind placement every node faces the same worst-case load\n"
        "bound, so the 0.6x generation is the weak link (and here fails the\n"
        "audit); capacity-aware placement gives each generation a bound\n"
        "proportional to its capacity, converting the big nodes' headroom\n"
        "into protection for the small ones — the same fleet passes."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Capacity planning: cache and headroom across deployment sizes.

The scenario the paper's introduction motivates: you operate randomly
partitioned storage (memcached / HDFS / Dynamo-style) and must decide,
for each cluster size you might grow into,

- how many front-end cache entries buy provable DDoS prevention,
- how much per-node capacity headroom the worst adversary forces before
  you reach that cache size, and
- what the same question costs without replication (the SoCC'11 world).

The punchline table shows the required cache is a few entries *per
node* regardless of how many billions of items the cluster stores.

Run:  python examples/capacity_planning.py
"""

from repro import SystemParameters, recommend
from repro.adversary import compare_with_baseline
from repro.core import baseline_socc11
from repro.experiments.report import render_table

K_PRIME = 0.75
RATE = 1e6  # 1M qps offered, scaled with nothing — gains are relative
ITEMS = 10_000_000
CURRENT_CACHE = 1000
CLUSTER_SIZES = (100, 500, 1000, 5000, 20_000, 100_000)


def main() -> None:
    columns = {
        "nodes": [],
        "required_cache": [],
        "entries_per_node": [],
        "worst_gain_now": [],
        "headroom_needed_now": [],
        "d1_best_gain": [],
    }
    for n in CLUSTER_SIZES:
        system = SystemParameters(
            n=n, m=ITEMS, c=min(CURRENT_CACHE, ITEMS), d=3, rate=RATE
        )
        report = recommend(system, k_prime=K_PRIME)
        unreplicated = baseline_socc11.plan_best_attack(system)
        columns["nodes"].append(n)
        columns["required_cache"].append(report.required_cache)
        columns["entries_per_node"].append(round(report.cache_to_nodes_ratio, 2))
        columns["worst_gain_now"].append(round(report.worst_gain_bound, 2))
        columns["headroom_needed_now"].append(
            round(report.min_capacity / system.even_split, 2)
        )
        columns["d1_best_gain"].append(round(unreplicated.gain_bound, 2))

    print(
        render_table(
            columns,
            title=(
                f"provisioning for {ITEMS:,} items, d=3, current cache "
                f"{CURRENT_CACHE} entries (k' = {K_PRIME})"
            ),
        )
    )
    print(
        "\nreading the table:\n"
        "- required_cache scales with n only — the item count never appears;\n"
        "- entries_per_node stays a small constant (the paper's O(n) claim);\n"
        "- headroom_needed_now = worst-case gain with today's cache: the\n"
        "  over-provisioning factor you must carry until the cache is grown;\n"
        "- d1_best_gain: without replication the adversary keeps an effective\n"
        "  attack at every size — replication is what makes prevention possible."
    )

    # A concrete before/after for the 1000-node row.
    system = SystemParameters(n=1000, m=ITEMS, c=CURRENT_CACHE, d=3, rate=RATE)
    comparison = compare_with_baseline(system, k_prime=K_PRIME)
    print("\n1000-node deployment, today's cache:")
    print(comparison.describe())


if __name__ == "__main__":
    main()

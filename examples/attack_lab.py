#!/usr/bin/env python3
"""Attack lab: every strategy in the arsenal vs the same cluster.

Pits the implemented adversaries — point floods of various widths, the
paper's bound-optimal plan, an adaptive prober that learns the best
flood width from feedback alone, and benign traffic for scale — against
one system, under- and properly-provisioned.

Run:  python examples/attack_lab.py        (~20 s)
"""

from repro import SystemParameters, simulate_distribution
from repro.adversary import (
    AdaptiveProbingAdversary,
    FixedSubsetFlood,
    OptimalAdversary,
    UniformFlood,
    ZipfClient,
)
from repro.experiments.report import render_table

TRIALS = 15
SEED = 13
K_PRIME = 0.75


def gains_against(system: SystemParameters) -> dict:
    """Worst-case gain of each strategy against ``system``."""

    def measure(distribution):
        return simulate_distribution(
            system, distribution, trials=TRIALS, seed=SEED
        ).worst_case

    strategies = {
        "flood x=c+1": FixedSubsetFlood(system, x=min(system.c + 1, system.m)),
        "flood x=2c": FixedSubsetFlood(system, x=min(2 * system.c, system.m)),
        "flood x=10c": FixedSubsetFlood(system, x=min(10 * system.c, system.m)),
        "uniform (x=m)": UniformFlood(system),
        "optimal (paper)": OptimalAdversary(system, k_prime=K_PRIME),
        "zipf client (benign)": ZipfClient(system),
    }
    results = {name: measure(s.distribution()) for name, s in strategies.items()}

    # The adaptive prober gets the simulator itself as its oracle —
    # black-box feedback, no knowledge of k.
    prober = AdaptiveProbingAdversary(system, measure, probes=7)
    prober.probe()
    results[f"adaptive probe (found x={prober.distribution().x})"] = measure(
        prober.distribution()
    )
    return results


def main() -> None:
    base = SystemParameters(n=200, m=50_000, c=60, d=3, rate=50_000.0)
    for label, system in (
        ("UNDER-PROVISIONED", base),
        ("PROVISIONED PER THE PAPER", base.with_cache(700)),
    ):
        results = gains_against(system)
        columns = {
            "strategy": list(results.keys()),
            "worst_gain": [round(g, 3) for g in results.values()],
            "effective": [g > 1.0 for g in results.values()],
        }
        print(render_table(columns, title=f"{label}: {system.describe()}"))
        print()
    print(
        "with the small cache the narrow floods win big (gain ~ n / (c+1));\n"
        "with the provisioned cache no strategy — not even the adaptive\n"
        "prober with oracle feedback — pushes any node past the even split."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Attack lab: every strategy in the arsenal vs the same cluster.

Pits the implemented adversaries — point floods of various widths, the
paper's bound-optimal plan, an adaptive prober that learns the best
flood width from feedback alone, and benign traffic for scale — against
one system, under- and properly-provisioned.

The finale replays the paper-optimal attack through the event-driven
engine with the online monitor attached, printing live gain-vs-bound
lines as each simulated-time window closes — what a deployed detector
would see mid-attack.

The last act turns the flight recorder on: a shard-flood blended into
benign Zipf traffic is traced at 25% sampling and the attribution
engine's ranked suspects are scored against the adversary's ground
truth (precision/recall of the flagged prefix buckets, whether the top
suspect client is the attacker).

Run:  python examples/attack_lab.py        (~25 s)
"""

from repro import SystemParameters, simulate_distribution
from repro.adversary import OptimalAdversary
from repro.experiments.report import render_table
from repro.obs import LoadMonitor, MonitorConfig
from repro.scenario import (
    BuildContext,
    ComponentSpec,
    ScenarioSpec,
    build_component,
    run_scenario,
)
from repro.sim.eventsim import EventDrivenSimulator

TRIALS = 15
SEED = 13
K_PRIME = 0.75


def gains_against(system: SystemParameters) -> dict:
    """Worst-case gain of each strategy against ``system``.

    Every strategy is a declarative adversary spec resolved through the
    component registry — the same documents a campaign YAML would hold.
    """

    def measure(adversary: dict) -> float:
        spec = ScenarioSpec.from_dict({
            "scenario": 1,
            "name": f"attack-lab/{adversary['kind']}",
            "system": {
                "n": system.n, "m": system.m, "c": system.c,
                "d": system.d, "rate": system.rate,
            },
            "adversary": adversary,
            "trials": TRIALS,
            "seed": SEED,
        })
        return run_scenario(spec).stats["worst_case"]

    strategies = {
        "flood x=c+1": {"kind": "subset-flood", "x": min(system.c + 1, system.m)},
        "flood x=2c": {"kind": "subset-flood", "x": min(2 * system.c, system.m)},
        "flood x=10c": {"kind": "subset-flood", "x": min(10 * system.c, system.m)},
        "uniform (x=m)": {"kind": "uniform"},
        "optimal (paper)": {"kind": "adversarial", "k_prime": K_PRIME},
        "zipf client (benign)": {"kind": "zipf"},
    }
    results = {name: measure(spec) for name, spec in strategies.items()}

    # The adaptive prober gets a simulator as its oracle — black-box
    # feedback, no knowledge of k.  Built through the registry so the
    # probing loop is wired exactly as `adversary: {kind: adaptive}`
    # in a spec file would be.
    prober = build_component(
        "adversary",
        ComponentSpec.from_data({"kind": "adaptive", "probes": 7}, "adversary"),
        BuildContext(params=system, seed=SEED),
    )
    prober.probe()
    found_x = prober.distribution().x
    results[f"adaptive probe (found x={found_x})"] = simulate_distribution(
        system, prober.distribution(), trials=TRIALS, seed=SEED
    ).worst_case
    return results


def live_monitor_demo(system: SystemParameters) -> None:
    """Replay the optimal attack with the online monitor watching.

    Each closed window prints the running attack gain next to the
    Theorem-2 bound for the adversary's ``x`` — the live view of the
    quantity the tables above report post-hoc — plus any alert the
    rule engine fires (the flat-entropy Theorem-1 fingerprint shows
    up immediately).
    """
    adversary = OptimalAdversary(system, k_prime=K_PRIME)

    def on_window(w):
        gain = w["running_gain"]
        bound = w["bound"]
        flags = ",".join(w["alerts"]) or "-"
        print(
            f"  t={w['t_end']:6.3f}s  req={w['requests']:>5}  "
            f"gain={gain:5.3f} vs bound={bound:5.3f}  "
            f"entropy={w['normalized_entropy']:.4f}  alerts={flags}"
        )

    monitor = LoadMonitor(
        MonitorConfig.from_params(
            system, x=adversary.x, window=0.05, k_prime=K_PRIME
        ),
        on_window=on_window,
    )
    print(
        f"LIVE MONITOR: optimal attack (x={adversary.x}) vs {system.describe()}"
    )
    sim = EventDrivenSimulator(
        system, adversary.distribution(), seed=SEED, monitor=monitor
    )
    sim.run(25_000)
    summary = monitor.summaries[-1]
    print(
        f"  final gain {summary['final_gain']:.3f} "
        f"(bound {summary['bound']:.3f}), "
        f"{summary['alerts']} alerts over {summary['windows']} windows"
    )


def attribution_forensics_demo(system: SystemParameters) -> None:
    """Trace a blended shard-flood and score the attribution engine.

    The flood declares ground truth (``client_id=1`` on its key set),
    so every traced record carries the true culprit.  Precision is the
    attacker's share of traced requests inside the flagged prefix
    buckets (suspects above the uniform 1/buckets share); recall is the
    share of traced attacker requests those buckets capture.
    """
    flood = build_component(
        "adversary",
        ComponentSpec.from_data({"kind": "shard-flood"}, "adversary"),
        BuildContext(params=system, seed=SEED),
    )
    spec = ScenarioSpec.from_dict({
        "scenario": 1,
        "name": "attack-lab/forensics",
        "system": {
            "n": system.n, "m": system.m, "c": system.c,
            "d": system.d, "rate": system.rate,
        },
        "workload": {
            "kind": "mixture",
            "components": [
                {"weight": 0.6, "kind": "zipf"},
                {
                    "weight": 0.4,
                    "kind": "key-set",
                    "keys": [int(k) for k in flood.keys],
                    "client_id": 1,
                },
            ],
        },
        "engine": "event-driven",
        "trace": {
            "kind": "hash", "sample": 0.25,
            "concentration_threshold": 0.7,
        },
        "trials": 2,
        "queries": 15_000,
        "seed": SEED,
    })
    recorder = run_scenario(spec).trace
    suspects = recorder.suspects()
    buckets = recorder.config.prefix_buckets
    truth = {int(key) * buckets // system.m for key in flood.keys}
    flagged = {
        row["prefix"]
        for row in suspects["prefixes"]
        if row["share"] > 1.0 / buckets
    }
    in_flagged = attack_in_flagged = attack_total = 0
    for record in recorder.records:
        is_attack = record["client"] == 1
        attack_total += is_attack
        if record["prefix"] in flagged:
            in_flagged += 1
            attack_in_flagged += is_attack
    precision = attack_in_flagged / in_flagged if in_flagged else float("nan")
    recall = attack_in_flagged / attack_total if attack_total else float("nan")
    top_prefix = suspects["prefixes"][0]
    top_client = suspects["clients"][0]
    print(
        f"FORENSICS: shard-flood (x={flood.x}, shard {flood.target}) at 40% "
        f"of a Zipf base, {recorder.sampled}/{recorder.seen} requests traced"
    )
    print(
        f"  top suspect prefix {top_prefix['prefix']} "
        f"(share {top_prefix['share']:.2f}, backend share "
        f"{(top_prefix['backend_share'] or 0.0):.2f}) — "
        f"{'in' if top_prefix['prefix'] in truth else 'NOT in'} the "
        f"ground-truth attack buckets {sorted(truth)}"
    )
    print(
        f"  top suspect client: {top_client['client']} (1 = the attacker), "
        f"share {top_client['share']:.2f}"
    )
    print(
        f"  flagged prefixes {sorted(flagged)}: precision {precision:.2f}, "
        f"recall {recall:.2f} over {len(recorder.records)} traced requests"
    )
    print(f"  attribution-concentration alerts: {len(recorder.alerts)}")


def main() -> None:
    base = SystemParameters(n=200, m=50_000, c=60, d=3, rate=50_000.0)
    for label, system in (
        ("UNDER-PROVISIONED", base),
        ("PROVISIONED PER THE PAPER", base.with_cache(700)),
    ):
        results = gains_against(system)
        columns = {
            "strategy": list(results.keys()),
            "worst_gain": [round(g, 3) for g in results.values()],
            "effective": [g > 1.0 for g in results.values()],
        }
        print(render_table(columns, title=f"{label}: {system.describe()}"))
        print()
    print(
        "with the small cache the narrow floods win big (gain ~ n / (c+1));\n"
        "with the provisioned cache no strategy — not even the adaptive\n"
        "prober with oracle feedback — pushes any node past the even split."
    )
    print()
    live_monitor_demo(base)
    print()
    attribution_forensics_demo(base)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: is my cluster DDoS-proof, and if not, what cache do I need?

Walks the paper's headline result end to end on its own evaluation
system (1000 nodes, replication 3, 100k items):

1. plan the strongest attack an outsider can mount (Theorem 1 + case
   analysis),
2. simulate it against the real randomized placement,
3. provision the cache per the O(n log log n / log d) bound,
4. simulate the same adversary again and watch the attack die.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemParameters,
    classify_attack,
    plan_best_attack,
    recommend,
    simulate_distribution,
)
from repro.adversary import OptimalAdversary

TRIALS = 25
SEED = 7
K_PRIME = 0.75  # substrate-calibrated Theta(1) remainder


def main() -> None:
    system = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
    print(f"system under test: {system.describe()}\n")

    # 1. The adversary's best plan, from public knowledge only.
    plan = plan_best_attack(system, k_prime=K_PRIME)
    print(f"adversary's plan    : {plan.describe()}")

    # 2. Execute it against the real (secretly seeded) placement.
    adversary = OptimalAdversary(system, k_prime=K_PRIME)
    outcome = simulate_distribution(
        system, adversary.distribution(), trials=TRIALS, seed=SEED
    )
    verdict = classify_attack(outcome)
    print(f"simulated outcome   : {verdict.describe()}\n")

    # 3. Provision the front-end cache per the paper's bound.
    report = recommend(system, k_prime=K_PRIME)
    print("provisioning report")
    print("-------------------")
    print(report.describe())
    print()

    # 4. Same adversary vs the provisioned system.
    protected = system.with_cache(report.required_cache)
    adversary = OptimalAdversary(protected, k_prime=K_PRIME)
    print(f"re-planned attack   : {plan_best_attack(protected, k_prime=K_PRIME).describe()}")
    outcome = simulate_distribution(
        protected, adversary.distribution(), trials=TRIALS, seed=SEED
    )
    verdict = classify_attack(outcome)
    print(f"simulated outcome   : {verdict.describe()}")
    print(
        f"\ncache grew from {system.c} to {protected.c} entries "
        f"({report.cache_to_nodes_ratio:.2f} per node) and the best possible "
        "attack is now no worse than evenly spread benign traffic."
    )


if __name__ == "__main__":
    main()

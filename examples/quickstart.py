#!/usr/bin/env python3
"""Quickstart: is my cluster DDoS-proof, and if not, what cache do I need?

Walks the paper's headline result end to end on its own evaluation
system (1000 nodes, replication 3, 100k items):

1. plan the strongest attack an outsider can mount (Theorem 1 + case
   analysis),
2. simulate it against the real randomized placement,
3. provision the cache per the O(n log log n / log d) bound,
4. simulate the same adversary again and watch the attack die.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemParameters,
    classify_attack,
    plan_best_attack,
    recommend,
)
from repro.scenario import ScenarioSpec, run_scenario

TRIALS = 25
SEED = 7
K_PRIME = 0.75  # substrate-calibrated Theta(1) remainder


def attack_scenario(name: str, system: SystemParameters) -> ScenarioSpec:
    """The paper-optimal attack on ``system`` as a declarative spec.

    The same document could live in a YAML file and run via
    ``python -m repro scenario run`` — see docs/SCENARIOS.md.
    """
    return ScenarioSpec.from_dict({
        "scenario": 1,
        "name": name,
        "system": {
            "n": system.n, "m": system.m, "c": system.c,
            "d": system.d, "rate": system.rate,
        },
        "adversary": {"kind": "adversarial", "k_prime": K_PRIME},
        "trials": TRIALS,
        "seed": SEED,
    })


def main() -> None:
    system = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
    print(f"system under test: {system.describe()}\n")

    # 1. The adversary's best plan, from public knowledge only.
    plan = plan_best_attack(system, k_prime=K_PRIME)
    print(f"adversary's plan    : {plan.describe()}")

    # 2. Execute it against the real (secretly seeded) placement.
    outcome = run_scenario(attack_scenario("quickstart/under-provisioned", system))
    verdict = classify_attack(outcome.result)
    print(f"simulated outcome   : {verdict.describe()}\n")

    # 3. Provision the front-end cache per the paper's bound.
    report = recommend(system, k_prime=K_PRIME)
    print("provisioning report")
    print("-------------------")
    print(report.describe())
    print()

    # 4. Same adversary vs the provisioned system.
    protected = system.with_cache(report.required_cache)
    print(f"re-planned attack   : {plan_best_attack(protected, k_prime=K_PRIME).describe()}")
    outcome = run_scenario(attack_scenario("quickstart/provisioned", protected))
    verdict = classify_attack(outcome.result)
    print(f"simulated outcome   : {verdict.describe()}")
    print(
        f"\ncache grew from {system.c} to {protected.c} entries "
        f"({report.cache_to_nodes_ratio:.2f} per node) and the best possible "
        "attack is now no worse than evenly spread benign traffic."
    )


if __name__ == "__main__":
    main()

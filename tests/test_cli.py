"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_flags(self):
        args = build_parser().parse_args(["fig3a", "--trials", "5", "--seed", "1"])
        assert args.command == "fig3a"
        assert args.trials == 5
        assert args.seed == 1

    def test_provision_flags(self):
        args = build_parser().parse_args(
            ["provision", "-n", "100", "-m", "5000", "-d", "3", "-c", "50"]
        )
        assert args.nodes == 100
        assert args.cache == 50


class TestCommands:
    def test_provision_output(self, capsys):
        code = main(
            ["provision", "-n", "1000", "-m", "100000", "-d", "3", "-c", "200", "--k", "1.2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "c* = 1201" in out
        assert "VULNERABLE" in out

    def test_provision_protected(self, capsys):
        main(["provision", "-n", "1000", "-m", "100000", "-d", "3", "-c", "5000", "--k", "1.2"])
        assert "PROTECTED" in capsys.readouterr().out

    def test_plan_output(self, capsys):
        code = main(["plan", "-n", "1000", "-m", "100000", "-d", "3", "-c", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replicated" in out
        assert "SoCC'11" in out

    def test_calibrate_output(self, capsys):
        code = main(
            ["calibrate", "--nodes", "100", "--replication", "3",
             "--balls", "2000", "--trials", "5", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured k'" in out
        assert "folded k" in out

    def test_figure_quick_run(self, capsys):
        code = main(["fig5b", "--trials", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig5b" in out
        assert "x_queried" in out

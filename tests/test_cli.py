"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_flags(self):
        args = build_parser().parse_args(["fig3a", "--trials", "5", "--seed", "1"])
        assert args.command == "fig3a"
        assert args.trials == 5
        assert args.seed == 1

    def test_provision_flags(self):
        args = build_parser().parse_args(
            ["provision", "-n", "100", "-m", "5000", "-d", "3", "-c", "50"]
        )
        assert args.nodes == 100
        assert args.cache == 50


class TestCommands:
    def test_provision_output(self, capsys):
        code = main(
            ["provision", "-n", "1000", "-m", "100000", "-d", "3", "-c", "200", "--k", "1.2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "c* = 1201" in out
        assert "VULNERABLE" in out

    def test_provision_protected(self, capsys):
        main(["provision", "-n", "1000", "-m", "100000", "-d", "3", "-c", "5000", "--k", "1.2"])
        assert "PROTECTED" in capsys.readouterr().out

    def test_plan_output(self, capsys):
        code = main(["plan", "-n", "1000", "-m", "100000", "-d", "3", "-c", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replicated" in out
        assert "SoCC'11" in out

    def test_calibrate_output(self, capsys):
        code = main(
            ["calibrate", "--nodes", "100", "--replication", "3",
             "--balls", "2000", "--trials", "5", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured k'" in out
        assert "folded k" in out

    def test_figure_quick_run(self, capsys):
        code = main(["fig5b", "--trials", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig5b" in out
        assert "x_queried" in out


class TestScenarioCLI:
    """The ``scenario`` subcommand: run / list / validate / sweep.

    Specs are written as JSON (``load_spec`` dispatches on suffix) so
    these tests do not depend on PyYAML.
    """

    NAMESPACES = (
        "workload", "cache", "partitioner", "selection",
        "layer-selection", "adversary", "chaos", "engine",
    )

    @staticmethod
    def _write(tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    @classmethod
    def _scenario(cls, tmp_path, **over):
        data = {
            "scenario": 1,
            "name": "cli/tiny",
            "system": {"n": 8, "m": 60, "c": 3, "d": 2, "rate": 500.0},
            "adversary": {"kind": "subset-flood", "x": 4},
            "trials": 1,
            "queries": 200,
            "seed": 2,
        }
        data.update(over)
        return cls._write(tmp_path, "spec.json", data)

    @classmethod
    def _campaign(cls, tmp_path):
        return cls._write(tmp_path, "campaign.json", {
            "campaign": 1,
            "name": "cli/grid",
            "base": {
                "name": "cli/grid",
                "system": {"n": 8, "m": 60, "c": 3, "d": 2, "rate": 500.0},
                "adversary": {"kind": "subset-flood", "x": 4},
                "trials": 1,
                "queries": 200,
                "seed": 2,
            },
            "sweep": {"system.d": [1, 2]},
        })

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_list_covers_every_namespace(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for namespace in self.NAMESPACES:
            assert f"{namespace}:" in out
        assert "lru" in out and "monte-carlo" in out

    def test_list_examples_show_params(self, capsys):
        assert main(["scenario", "list", "--namespace", "adversary",
                     "--examples"]) == 0
        out = capsys.readouterr().out
        assert "subset-flood" in out
        assert "'x':" in out  # the materialised example params

    def test_list_unknown_namespace_fails(self, capsys):
        assert main(["scenario", "list", "--namespace", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_validate_ok(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["scenario", "validate", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_reports_unknown_kind_with_path(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path, adversary={"kind": "no-such-thing"}
        )
        assert main(["scenario", "validate", path]) == 2
        err = capsys.readouterr().err
        assert "adversary.kind" in err
        assert "choose from" in err

    def test_validate_reports_spec_error_with_path(self, tmp_path, capsys):
        path = self._scenario(tmp_path, trials=0)
        assert main(["scenario", "validate", path]) == 2
        assert "trials" in capsys.readouterr().err

    def test_validate_mixed_batch_still_checks_all(self, tmp_path, capsys):
        good = self._scenario(tmp_path)
        bad = self._write(tmp_path, "bad.json", {"name": "x"})
        assert main(["scenario", "validate", bad, good]) == 2
        captured = capsys.readouterr()
        assert "OK" in captured.out  # the good spec was still reported

    def test_run_prints_stats(self, tmp_path, capsys):
        assert main(["scenario", "run", self._scenario(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "worst_case" in out
        assert "cli/tiny" in out

    def test_run_json_output_parses(self, tmp_path, capsys):
        import json

        path = self._scenario(tmp_path)
        assert main(["scenario", "run", path, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["engine"] == "monte-carlo"
        assert stats["trials"] == 1

    def test_run_rejects_campaign_spec(self, tmp_path, capsys):
        assert main(["scenario", "run", self._campaign(tmp_path)]) == 2
        assert "scenario sweep" in capsys.readouterr().err

    def test_sweep_rejects_scenario_spec(self, tmp_path, capsys):
        assert main(["scenario", "sweep", self._scenario(tmp_path)]) == 2
        assert "scenario run" in capsys.readouterr().err

    def test_sweep_writes_manifest_and_report(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "out"
        code = main(["scenario", "sweep", self._campaign(tmp_path),
                     "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[1/2]" in out and "[2/2]" in out
        assert "manifest written to" in out
        manifest = json.loads((out_dir / "cli_grid.manifest.json").read_text())
        assert manifest["campaign"] == "cli/grid"
        assert len(manifest["scenarios"]) == 2
        assert (out_dir / "cli_grid.html").read_text().startswith("<!")

    def test_run_missing_file_is_validation_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["scenario", "run", missing]) == 2
        assert "nope.json" in capsys.readouterr().err


class TestTreeCLI:
    """``repro tree``: the shard-flood vs flat/tree comparison."""

    ARGS = [
        "tree", "-n", "10", "-m", "200", "-c", "8", "-d", "2",
        "--rate", "1000", "--edges", "2", "--aggregates", "1",
        "--queries", "300", "--trials", "1", "--seed", "3",
    ]

    def test_tree_flags(self):
        args = build_parser().parse_args(self.ARGS)
        assert args.command == "tree"
        assert args.edges == 2
        assert args.aggregates == 1
        assert args.layer_selection == "two-choice"

    def test_tree_compares_defenses(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "shard-flood:" in out
        assert "Theorem-2 bound" in out
        assert "defense: flat" in out
        assert "defense: tree[2x1 two-choice]" in out
        # Only the tree defense reports the per-layer overlay.
        assert out.count("per-layer shard load") == 1

    def test_tree_parallel_matches_serial(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

"""Tests for repro.workload.costs and repro.workload.scan."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DistributionError
from repro.workload.costs import CostModel, OperationMix, WeightedWorkload
from repro.workload.distributions import UniformDistribution
from repro.workload.scan import CyclicScanDistribution
from repro.workload.zipf import ZipfDistribution


class TestOperationMix:
    def test_mean_and_max_cost(self):
        mix = OperationMix({"read": (0.9, 1.0), "write": (0.1, 5.0)})
        assert mix.mean_cost == pytest.approx(1.4)
        assert mix.max_cost == 5.0

    def test_worst_case_inflation(self):
        mix = OperationMix({"read": (0.9, 1.0), "write": (0.1, 5.0)})
        # An all-write attacker is 5/1.4 times heavier than the mix.
        assert mix.worst_case_inflation() == pytest.approx(5.0 / 1.4)

    def test_uniform_cost_mix_has_no_inflation(self):
        mix = OperationMix({"any": (1.0, 2.0)})
        assert mix.worst_case_inflation() == pytest.approx(1.0)

    def test_sample_costs(self):
        mix = OperationMix({"read": (0.5, 1.0), "write": (0.5, 3.0)})
        costs = mix.sample_costs(10_000, rng=1)
        assert set(np.unique(costs)) == {1.0, 3.0}
        assert costs.mean() == pytest.approx(2.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OperationMix({})
        with pytest.raises(ConfigurationError):
            OperationMix({"a": (0.5, 1.0)})  # fractions don't sum to 1
        with pytest.raises(ConfigurationError):
            OperationMix({"a": (1.0, 0.0)})  # zero cost
        with pytest.raises(ConfigurationError):
            OperationMix({"a": (-0.5, 1.0), "b": (1.5, 1.0)})


class TestCostModel:
    def test_uniform_matches_paper_assumption(self):
        model = CostModel.uniform(10)
        assert model.m == 10
        assert model.cost_of(3) == 1.0
        assert model.max_cost == 1.0

    def test_per_key_costs(self):
        model = CostModel(np.array([1.0, 4.0]))
        assert model.cost_of(1) == 4.0
        assert model.max_cost == 4.0

    def test_costs_returns_copy(self):
        model = CostModel(np.array([1.0, 2.0]))
        model.costs()[0] = 99.0
        assert model.cost_of(0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(np.array([]))
        with pytest.raises(ConfigurationError):
            CostModel(np.array([1.0, 0.0]))
        with pytest.raises(ConfigurationError):
            CostModel.uniform(0)


class TestWeightedWorkload:
    def test_effective_rates(self):
        workload = WeightedWorkload(
            UniformDistribution(4), CostModel(np.array([1.0, 1.0, 2.0, 4.0]))
        )
        rates = workload.effective_rates(total_rate=100.0)
        assert rates.tolist() == [25.0, 25.0, 50.0, 100.0]
        assert workload.total_cost_rate(100.0) == pytest.approx(200.0)

    def test_uniform_costs_recover_plain_rates(self):
        dist = ZipfDistribution(50, 1.01)
        workload = WeightedWorkload(dist, CostModel.uniform(50))
        assert np.allclose(workload.effective_rates(10.0), dist.expected_rates(10.0))

    def test_even_split(self):
        workload = WeightedWorkload(UniformDistribution(4), CostModel.uniform(4, 2.0))
        assert workload.even_split(total_rate=100.0, n=10) == pytest.approx(20.0)

    def test_cluster_integration(self):
        """Weighted rates flow through the cluster: the hot expensive
        key dominates the max load."""
        from repro.cluster.cluster import Cluster

        costs = np.ones(100)
        costs[7] = 50.0
        workload = WeightedWorkload(UniformDistribution(100), CostModel(costs))
        rates = workload.effective_rates(100.0)
        cluster = Cluster(n=10, d=2, m=100, seed=3)
        loads = cluster.apply_rates(
            (np.arange(100), rates), total_rate=workload.total_cost_rate(100.0)
        )
        # Key 7 alone carries 50 cost units/s; max load is at least that.
        assert loads.max_load >= 50.0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedWorkload(UniformDistribution(5), CostModel.uniform(6))


class TestCyclicScan:
    def test_same_marginals_as_adversarial(self):
        scan = CyclicScanDistribution(m=100, x=10)
        probs = scan.probabilities()
        assert np.allclose(probs[:10], 0.1)
        assert probs[10:].sum() == 0.0

    def test_deterministic_cyclic_order(self):
        scan = CyclicScanDistribution(m=100, x=4)
        assert scan.sample(6).tolist() == [0, 1, 2, 3, 0, 1]
        # State advances across calls.
        assert scan.sample(3).tolist() == [2, 3, 0]

    def test_offset_and_reset(self):
        scan = CyclicScanDistribution(m=100, x=4, offset=2)
        assert scan.sample(3).tolist() == [2, 3, 0]
        scan.reset()
        assert scan.position == 0
        assert scan.sample(2).tolist() == [0, 1]

    def test_each_cycle_covers_all_keys_equally(self):
        scan = CyclicScanDistribution(m=50, x=7)
        keys = scan.sample(7 * 13)
        counts = np.bincount(keys, minlength=50)
        assert (counts[:7] == 13).all()
        assert counts[7:].sum() == 0

    def test_defeats_lru_but_not_perfect(self):
        from repro.cache.lru import LRUCache
        from repro.cache.perfect import PerfectCache

        scan = CyclicScanDistribution(m=1000, x=40)
        keys = scan.sample(4000).tolist()
        lru = LRUCache(20)
        perfect = PerfectCache.from_distribution(scan.probabilities(), 20)
        for key in keys:
            lru.access(key)
            perfect.access(key)
        assert lru.stats.hit_rate == 0.0
        assert perfect.stats.hit_rate == pytest.approx(0.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(DistributionError):
            CyclicScanDistribution(m=10, x=11)
        with pytest.raises(DistributionError):
            CyclicScanDistribution(m=10, x=5, offset=-1)
        scan = CyclicScanDistribution(m=10, x=5)
        with pytest.raises(DistributionError):
            scan.sample(-1)

"""Tests for repro.core.baseline_socc11 (the d = 1 baseline of [18])."""

import math

import pytest

from repro.core import baseline_socc11 as baseline
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError


class TestOneChoiceKeyBound:
    def test_zero_balls(self):
        assert baseline.one_choice_key_bound(0, 100) == 0.0

    def test_single_bin(self):
        assert baseline.one_choice_key_bound(50, 1) == 50.0

    def test_average_plus_sqrt_term(self):
        bound = baseline.one_choice_key_bound(10_000, 100)
        expected = 100.0 + math.sqrt(2 * 10_000 * math.log(100) / 100)
        assert bound == pytest.approx(expected)

    def test_polynomially_worse_than_d_choice(self):
        # The whole point of replication: the one-choice excess grows
        # with the ball count, the d-choice excess does not.
        from repro.core.bounds import balls_in_bins_key_bound

        for balls in (10_000, 100_000):
            one = baseline.one_choice_key_bound(balls, 1000) - balls / 1000
            multi = balls_in_bins_key_bound(balls, 1000, 3) - balls / 1000
            assert one > multi
        small_excess = baseline.one_choice_key_bound(10_000, 1000) - 10.0
        large_excess = baseline.one_choice_key_bound(100_000, 1000) - 100.0
        assert large_excess > 2 * small_excess  # grows ~sqrt(balls)

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            baseline.one_choice_key_bound(-1, 10)
        with pytest.raises(ConfigurationError):
            baseline.one_choice_key_bound(10, 0)


class TestBaselineBounds:
    def test_gain_formula(self, paper_params):
        x = 5000
        gain = baseline.normalized_max_load_bound(paper_params, x)
        keys = baseline.one_choice_key_bound(x - 200, 1000)
        expected = keys * (1e5 / (x - 1)) / 100.0
        assert gain == pytest.approx(expected)

    def test_fully_cached_is_zero(self, paper_params):
        assert baseline.expected_max_load_bound(paper_params, 200) == 0.0

    def test_rejects_bad_x(self, paper_params):
        with pytest.raises(ConfigurationError):
            baseline.expected_max_load_bound(paper_params, 0)


class TestOptimalQueryCount:
    def test_interior_optimum(self, paper_params):
        """The defining contrast with the replicated case: x* is strictly
        between the endpoints."""
        x_star = baseline.optimal_query_count(paper_params)
        assert paper_params.c + 1 < x_star < paper_params.m

    def test_is_a_local_maximum(self, paper_params):
        x_star = baseline.optimal_query_count(paper_params)

        def g(x):
            return baseline.normalized_max_load_bound(paper_params, x)

        assert g(x_star) >= g(x_star - 1) - 1e-9
        assert g(x_star) >= g(x_star + 1) - 1e-9

    def test_beats_coarse_grid(self, paper_params):
        def g(x):
            return baseline.normalized_max_load_bound(paper_params, x)

        best = g(baseline.optimal_query_count(paper_params))
        for x in (201, 500, 1000, 5000, 20_000, 100_000):
            assert best >= g(x) - 1e-9

    def test_grows_with_cache_size(self):
        small = baseline.optimal_query_count(
            SystemParameters(n=1000, m=100_000, c=100, d=1)
        )
        large = baseline.optimal_query_count(
            SystemParameters(n=1000, m=100_000, c=2000, d=1)
        )
        assert large > small


class TestBaselinePlan:
    def test_always_effective_at_realistic_scale(self):
        """Fan et al.'s conclusion: no cache size prevents an effective
        attack without replication (it only bounds the damage)."""
        for c in (100, 1000, 5000, 20_000):
            params = SystemParameters(n=1000, m=100_000, c=c, d=1, rate=1e5)
            plan = baseline.plan_best_attack(params)
            assert plan.effective, f"baseline attack should be effective at c={c}"

    def test_replication_paper_contrast(self):
        """The same (n, c) that is provably protected with d = 3 is still
        attackable under the d = 1 analysis."""
        from repro.core.cases import plan_best_attack as replicated_plan

        params = SystemParameters(n=1000, m=100_000, c=2000, d=3, rate=1e5)
        assert not replicated_plan(params, k=1.2).effective
        assert baseline.plan_best_attack(params).effective

    def test_describe(self, paper_params):
        assert "SoCC'11" in baseline.plan_best_attack(paper_params).describe()

    def test_fully_cached_gain_zero(self):
        params = SystemParameters(n=10, m=30, c=30, d=1)
        plan = baseline.plan_best_attack(params)
        assert plan.gain_bound == 0.0
        assert not plan.effective

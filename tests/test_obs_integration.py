"""End-to-end observability contracts across the simulation stack.

Three guarantees, each checked against the real engines:

1. **Zero interference** — running with a registry/tracer attached
   yields byte-identical simulation results to running without.
2. **Worker invariance** — the merged metrics of a parallel campaign
   (``workers=2``) equal the serial campaign's exactly.
3. **Export surface** — a figure-style run plus an event-driven
   campaign produce the JSON/Prometheus artifacts the acceptance
   criteria name: per-node load counters, per-policy cache counters,
   and phase spans with percentiles.
"""

import json

import pytest

from repro.cache.lru import LRUCache
from repro.cli import main as cli_main
from repro.core.notation import SystemParameters
from repro.experiments.fig3 import run_fig3
from repro.experiments.params import PaperParams
from repro.obs import MetricsRegistry, Tracer, export_json, to_prometheus
from repro.sim.analytic import MonteCarloSimulator
from repro.sim.batch import run_event_campaign
from repro.sim.config import SimulationConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.distributions import UniformDistribution


def _params(**overrides):
    defaults = dict(n=10, m=400, c=20, d=3, rate=2000.0)
    defaults.update(overrides)
    return SystemParameters(**defaults)


def _lru_factory():
    """Module-level so ``workers > 1`` can pickle it."""
    return LRUCache(20)


def _mc_report(x=50, seed=11, workers=1, metrics=None, tracer=None):
    sim = MonteCarloSimulator(
        SimulationConfig(
            params=_params(), trials=6, seed=seed, workers=workers,
            metrics=metrics, tracer=tracer,
        )
    )
    return sim.uniform_attack(x)


class TestZeroInterference:
    def test_monte_carlo_report_is_identical(self):
        plain = _mc_report()
        instrumented = _mc_report(metrics=MetricsRegistry(), tracer=Tracer())
        assert (
            plain.normalized_max_per_trial == instrumented.normalized_max_per_trial
        ).all()
        assert plain.metadata == instrumented.metadata

    def test_eventsim_result_is_identical(self):
        def run(metrics=None, tracer=None):
            sim = EventDrivenSimulator(
                _params(), UniformDistribution(400), cache=LRUCache(20),
                seed=3, metrics=metrics, tracer=tracer,
            )
            return sim.run(3000)

        plain = run()
        instrumented = run(metrics=MetricsRegistry(), tracer=Tracer())
        assert plain.normalized_max == instrumented.normalized_max
        assert (plain.served == instrumented.served).all()
        assert (plain.dropped == instrumented.dropped).all()
        assert plain.cache_hit_rate == instrumented.cache_hit_rate

    def test_event_campaign_report_is_identical(self):
        def run(metrics=None):
            return run_event_campaign(
                _params(), UniformDistribution(400), trials=3, n_queries=2000,
                seed=7, metrics=metrics,
            )

        plain = run()
        instrumented = run(metrics=MetricsRegistry())
        assert (
            plain.load_report.normalized_max_per_trial
            == instrumented.load_report.normalized_max_per_trial
        ).all()


class TestWorkerInvariance:
    def test_monte_carlo_metrics_identical_serial_vs_parallel(self):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        report_serial = _mc_report(workers=1, metrics=serial)
        report_parallel = _mc_report(workers=2, metrics=parallel)
        assert (
            report_serial.normalized_max_per_trial
            == report_parallel.normalized_max_per_trial
        ).all()
        assert serial.snapshot() == parallel.snapshot()

    def test_event_campaign_metrics_identical_serial_vs_parallel(self):
        snapshots = []
        for workers in (1, 2):
            registry = MetricsRegistry()
            run_event_campaign(
                _params(), UniformDistribution(400), trials=4, n_queries=2000,
                seed=9, workers=workers, cache_factory=_lru_factory,
                metrics=registry,
            )
            snapshots.append(registry.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_event_campaign_cache_counters_survive_the_merge(self):
        registry = MetricsRegistry()
        run_event_campaign(
            _params(), UniformDistribution(400), trials=2, n_queries=1500,
            seed=5, workers=2, cache_factory=_lru_factory,
            metrics=registry,
        )
        by_name = {
            (c.name, c.labels): c.value for c in registry.counters()
        }
        hits = by_name.get(("cache_hits_total", (("policy", "lru"),)), 0)
        misses = by_name[("cache_misses_total", (("policy", "lru"),))]
        requests = by_name[("requests_total", ())]
        assert hits + misses == requests == 2 * 1500


class TestFigureExportSurface:
    """The ISSUE's fig3-style acceptance check, at test scale."""

    @pytest.fixture(scope="class")
    def document(self):
        metrics, tracer = MetricsRegistry(), Tracer()
        run_fig3(
            cache_size=20,
            paper=PaperParams(n=10, m=400, trials=4),
            x_values=[30, 400],
            seed=2,
            metrics=metrics,
            tracer=tracer,
        )
        # Fold an event-driven campaign into the same registry: the
        # Monte-Carlo engine has no real cache, so hit/miss counters
        # come from this path.
        run_event_campaign(
            _params(), UniformDistribution(400), trials=2, n_queries=1500,
            seed=5, cache_factory=_lru_factory,
            metrics=metrics, tracer=tracer,
        )
        return export_json(metrics, tracer=tracer), to_prometheus(metrics, tracer)

    def test_per_node_load_counters_present(self, document):
        json_doc, prom = document
        node_series = [
            c for c in json_doc["metrics"]["counters"] if c["name"] == "node_load_sum"
        ]
        assert node_series, "fig3-style run must export per-node load counters"
        assert all("node" in c["labels"] for c in node_series)
        assert "repro_node_load_sum{node=" in prom

    def test_cache_counters_present_per_policy(self, document):
        json_doc, prom = document
        names = {
            (c["name"], c["labels"].get("policy"))
            for c in json_doc["metrics"]["counters"]
        }
        assert ("cache_hits_total", "lru") in names
        assert ("cache_misses_total", "lru") in names
        assert 'repro_cache_hits_total{policy="lru"}' in prom

    def test_phase_spans_with_percentiles(self, document):
        json_doc, prom = document
        aggregates = json_doc["trace"]["aggregates"]
        assert any(path.startswith("fig3") for path in aggregates)
        assert any(path.endswith("trials") for path in aggregates)
        for stats in aggregates.values():
            assert {"count", "p50_seconds", "p95_seconds", "p99_seconds"} <= set(stats)
        assert "# TYPE repro_span_duration_seconds summary" in prom

    def test_histogram_percentiles_inline(self, document):
        json_doc, _ = document
        names = {h["name"] for h in json_doc["metrics"]["histograms"]}
        assert "trial_normalized_max" in names
        assert "backend_latency_seconds" in names

    def test_document_is_json_round_trippable(self, document):
        json_doc, _ = document
        assert json.loads(json.dumps(json_doc, sort_keys=True)) == json_doc


class TestCliExport:
    def test_metrics_out_writes_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = cli_main(
            ["fig4", "--trials", "2", "--seed", "1", "--metrics-out", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["version"] == 1
        counter_names = {c["name"] for c in document["metrics"]["counters"]}
        assert "campaign_trials_total" in counter_names
        assert "node_load_sum" in counter_names
        assert document["trace"]["aggregates"]  # spans recorded
        assert str(out) in capsys.readouterr().out

    def test_metrics_prom_writes_exposition_text(self, tmp_path):
        out = tmp_path / "metrics.prom"
        code = cli_main(
            ["fig4", "--trials", "2", "--seed", "1", "--metrics-prom", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "# TYPE repro_campaign_trials_total counter" in text
        assert "repro_span_duration_seconds_count" in text

    def test_no_flags_means_no_sinks(self, tmp_path, capsys):
        code = cli_main(["fig4", "--trials", "2", "--seed", "1"])
        assert code == 0
        assert "metrics written" not in capsys.readouterr().out


class TestNullSinkEquivalence:
    def test_null_registry_collects_nothing_through_the_stack(self):
        from repro.obs import NULL_REGISTRY

        report = _mc_report(metrics=NULL_REGISTRY)
        assert report.trials == 6
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


class TestSubstrateInstrumentation:
    """The lower layers expose the same optional-registry surface."""

    def test_allocation_kernel_counters(self):
        from repro.ballsbins.allocation import d_choice_allocate, one_choice_allocate

        registry = MetricsRegistry()
        one_choice_allocate(500, 20, rng=1, metrics=registry)
        d_choice_allocate(500, 20, d=2, rng=1, metrics=registry)
        values = {(c.name, c.labels): c.value for c in registry.counters()}
        assert values[("alloc_balls_total", (("kernel", "one-choice"),))] == 500
        kernels = {
            labels[0][1]
            for (name, labels) in values
            if name == "alloc_calls_total"
        }
        assert "one-choice" in kernels
        assert kernels & {"batched", "sequential"}  # d-choice resolved a kernel
        # Same seed with and without a registry allocates identically.
        assert (
            d_choice_allocate(500, 20, d=2, rng=1)
            == d_choice_allocate(500, 20, d=2, rng=1, metrics=MetricsRegistry())
        ).all()

    def test_event_scheduler_counters(self):
        from repro.sim.engine import EventScheduler

        registry = MetricsRegistry()
        scheduler = EventScheduler(metrics=registry)
        fired = []
        scheduler.schedule(1.0, lambda sched, now: fired.append(now))
        scheduler.schedule(2.0, lambda sched, now: fired.append(now))
        scheduler.run()
        values = {c.name: c.value for c in registry.counters()}
        assert values["events_fired_total"] == 2 == len(fired)
        assert {g.name: g.value for g in registry.gauges()}["events_pending"] == 0

    def test_cluster_publishes_per_node_gauges(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(n=5, d=2, m=100, seed=3)
        registry = MetricsRegistry()
        cluster.publish_metrics(registry)
        gauges = {g.name for g in registry.gauges()}
        assert {"cluster_nodes", "cluster_replication", "node_keys_assigned"} <= gauges
        cluster.publish_metrics(None)  # optional sink stays optional

"""Tests for repro.cluster.failures (failure injection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ballsbins.allocation import sample_replica_groups
from repro.cluster.failures import (
    degrade_groups,
    expected_unavailable_fraction,
    sample_failures,
)
from repro.exceptions import ConfigurationError


def _groups(keys=200, n=20, d=3, seed=1):
    return sample_replica_groups(keys, n, d, rng=seed)


class TestDegradeGroups:
    def test_no_failures_keeps_everything(self):
        groups = _groups()
        degraded = degrade_groups(groups, [])
        assert degraded.n_keys == 200
        assert degraded.unavailable.size == 0
        assert degraded.unavailable_fraction == 0.0
        for i in range(200):
            assert (degraded.survivors_of(i) == groups[i]).all()

    def test_failed_nodes_removed_everywhere(self):
        groups = _groups()
        degraded = degrade_groups(groups, [3, 7], n=20)
        assert degraded.failed == (3, 7)
        assert 3 not in degraded.flat_nodes
        assert 7 not in degraded.flat_nodes

    def test_unavailable_keys_detected(self):
        groups = np.array([[0, 1], [2, 3], [0, 2]])
        degraded = degrade_groups(groups, [0, 1])
        assert degraded.unavailable.tolist() == [0]
        assert degraded.survivors_of(2).tolist() == [2]

    def test_survivor_slices_consistent(self):
        groups = _groups()
        degraded = degrade_groups(groups, [0, 1, 2, 3, 4])
        total = sum(degraded.survivors_of(i).size for i in range(degraded.n_keys))
        assert total == degraded.flat_nodes.size

    def test_out_of_range_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            degrade_groups(_groups(), [25], n=20)

    def test_survivor_index_validated(self):
        degraded = degrade_groups(_groups(), [])
        with pytest.raises(ConfigurationError):
            degraded.survivors_of(200)


class TestDegradedLoads:
    def test_no_load_on_failed_nodes(self):
        groups = _groups()
        degraded = degrade_groups(groups, [5, 6, 7])
        loads = degraded.least_loaded_loads(np.ones(200), n=20)
        assert loads[5] == loads[6] == loads[7] == 0.0

    def test_conserves_available_rate(self):
        groups = np.array([[0, 1], [2, 3], [0, 2]])
        degraded = degrade_groups(groups, [0, 1])
        loads = degraded.least_loaded_loads(np.array([5.0, 2.0, 1.0]), n=4)
        # Key 0 unavailable: only 3.0 of the 8.0 reaches the back end.
        assert loads.sum() == pytest.approx(3.0)

    def test_failures_raise_max_load(self):
        """Removing half the nodes concentrates surviving keys: the max
        load (over survivors) increases."""
        groups = _groups(keys=2000, n=20, d=3, seed=2)
        rates = np.ones(2000)
        healthy = degrade_groups(groups, []).least_loaded_loads(rates, 20)
        degraded = degrade_groups(groups, list(range(10))).least_loaded_loads(rates, 20)
        assert degraded.max() > healthy.max()

    def test_rates_shape_validated(self):
        degraded = degrade_groups(_groups(), [])
        with pytest.raises(ConfigurationError):
            degraded.least_loaded_loads(np.ones(5), n=20)


class TestSampleFailures:
    def test_count_and_range(self):
        failed = sample_failures(100, 0.25, rng=1)
        assert len(failed) == 25
        assert len(set(failed)) == 25
        assert all(0 <= x < 100 for x in failed)

    def test_zero_fraction(self):
        assert sample_failures(50, 0.0) == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sample_failures(10, 1.0)
        with pytest.raises(ConfigurationError):
            sample_failures(10, -0.1)


class TestExpectedUnavailable:
    def test_exact_small_case(self):
        # n=4, d=2, 2 failed: C(2,2)/C(4,2) = 1/6.
        assert expected_unavailable_fraction(4, 2, 2) == pytest.approx(1 / 6)

    def test_fewer_failures_than_replicas_is_zero(self):
        assert expected_unavailable_fraction(100, 3, 2) == 0.0

    def test_replication_helps_availability(self):
        f = 20
        assert expected_unavailable_fraction(100, 3, f) < expected_unavailable_fraction(
            100, 2, f
        ) < expected_unavailable_fraction(100, 1, f)

    @given(
        n=st.integers(min_value=4, max_value=40),
        d=st.integers(min_value=1, max_value=4),
        frac=st.floats(min_value=0.1, max_value=0.6),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_formula_matches_simulation(self, n, d, frac, seed):
        """Property: the closed form tracks the empirical unavailable
        fraction of randomly degraded random groups."""
        d = min(d, n)
        keys = 600
        groups = sample_replica_groups(keys, n, d, rng=seed)
        failed = sample_failures(n, frac, rng=seed + 1)
        degraded = degrade_groups(groups, failed, n=n)
        expected = expected_unavailable_fraction(n, d, len(failed))
        measured = degraded.unavailable_fraction
        # Binomial noise: allow a generous band around the expectation.
        band = 4.0 * np.sqrt(max(expected * (1 - expected), 1e-4) / keys)
        assert abs(measured - expected) <= band + 0.02

"""Differential suite: ``engine="fast"`` must equal ``engine="legacy"``.

The batched kernel (:mod:`repro.sim.kernel`) promises *bit-identical*
``EventSimResult`` objects — same floats, same arrays, same RNG stream
consumption — plus identical metrics exports and monitor telemetry, for
every configuration.  Configurations the batch transform cannot express
(LRU-family caches, least-outstanding routing, chaos schedules) must
fall back to the legacy loop, which makes them trivially identical; the
tests below also pin *which* path ran via ``sim.last_engine``, so the
fast-path cases cannot silently degrade into vacuous fallback-vs-legacy
comparisons.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.chaos.config import ChaosConfig
from repro.core.notation import SystemParameters
from repro.obs import LoadMonitor, MetricsRegistry, MonitorConfig
from repro.obs.export import export_json
from repro.sim import kernel
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution
from repro.workload.zipf import ZipfDistribution


def _params(**overrides):
    base = dict(n=20, m=500, c=10, d=3, rate=2000.0)
    base.update(overrides)
    return SystemParameters(**base)


def assert_results_identical(a, b):
    """Field-by-field exact equality of two EventSimResults."""
    for name in a.__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if isinstance(left, np.ndarray):
            assert left.dtype == right.dtype, name
            assert (left == right).all(), name
        elif hasattr(left, "loads"):  # LoadVector
            assert (left.loads == right.loads).all(), name
            assert left.total_rate == right.total_rate, name
        elif isinstance(left, float) and np.isnan(left):
            assert np.isnan(right), name
        else:
            assert left == right, name


def _pair(dist_factory, engine_expected, trials=(0, 1), n_queries=3000, **kwargs):
    """Run legacy and fast simulators over ``trials``; compare each run.

    Builds a fresh distribution per simulator so stateful distributions
    cannot leak between the two, and runs several trials on the *same*
    simulator instance so persistent state (pin stickiness) is covered.
    """
    legacy = EventDrivenSimulator(
        _params(), dist_factory(), seed=11, engine="legacy", **kwargs
    )
    fast = EventDrivenSimulator(
        _params(), dist_factory(), seed=11, engine="fast", **kwargs
    )
    for trial in trials:
        a = legacy.run(n_queries, trial=trial)
        b = fast.run(n_queries, trial=trial)
        assert fast.last_engine == engine_expected
        assert_results_identical(a, b)
    return legacy, fast


class TestFastPathIdentity:
    """Configurations the batched kernel handles natively."""

    @pytest.mark.parametrize("routing", ["pin", "random"])
    @pytest.mark.parametrize("service", ["deterministic", "exponential"])
    def test_routing_service_grid(self, routing, service):
        _pair(
            lambda: AdversarialDistribution(500, 11), "fast",
            routing=routing, service=service,
        )

    def test_zipf_workload(self):
        _pair(lambda: ZipfDistribution(500, 1.01), "fast")

    def test_uniform_all_miss_heavy(self):
        _pair(lambda: UniformDistribution(500), "fast")

    def test_saturating_config_with_drops(self):
        params = _params()
        legacy = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=3,
            node_capacity=1.1 * params.even_split, queue_limit=4,
        )
        fast = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=3,
            node_capacity=1.1 * params.even_split, queue_limit=4,
            engine="fast",
        )
        a, b = legacy.run(8000), fast.run(8000)
        assert a.drop_rate > 0  # the comparison must exercise drops
        assert fast.last_engine == "fast"
        assert_results_identical(a, b)

    def test_pin_state_persists_identically_across_runs(self):
        legacy, fast = _pair(
            lambda: AdversarialDistribution(500, 40), "fast", trials=(0, 1, 2)
        )
        assert legacy._pins == fast._pins
        assert (legacy._pin_counts == fast._pin_counts).all()

    def test_monitor_telemetry_identical(self):
        params = _params()

        def run(engine):
            monitor = LoadMonitor(
                MonitorConfig.from_params(params, x=11, window=0.05)
            )
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(500, 11), seed=7,
                monitor=monitor, engine=engine,
            )
            result = sim.run(4000, trial=0)
            return sim, result, monitor

        sim_a, a, mon_a = run("legacy")
        sim_b, b, mon_b = run("fast")
        assert sim_b.last_engine == "fast"
        assert_results_identical(a, b)
        assert mon_a.windows == mon_b.windows
        assert mon_a.alerts == mon_b.alerts
        assert mon_a.summaries == mon_b.summaries

    def test_metrics_export_identical(self):
        def run(engine):
            registry = MetricsRegistry()
            sim = EventDrivenSimulator(
                _params(), AdversarialDistribution(500, 11), seed=5,
                metrics=registry, engine=engine,
            )
            result = sim.run(3000)
            return sim, result, export_json(metrics=registry)

        sim_a, a, export_a = run("legacy")
        sim_b, b, export_b = run("fast")
        assert sim_b.last_engine == "fast"
        assert_results_identical(a, b)
        assert export_a == export_b


class TestFallbackIdentity:
    """Configurations that must take the legacy path under engine="fast"."""

    def test_least_outstanding_falls_back(self):
        _pair(
            lambda: AdversarialDistribution(500, 11), "legacy",
            routing="least-outstanding",
        )

    def test_lru_cache_falls_back(self):
        legacy = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=LRUCache(10), seed=9,
        )
        fast = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=LRUCache(10), seed=9, engine="fast",
        )
        a, b = legacy.run(3000), fast.run(3000)
        assert fast.last_engine == "legacy"
        assert_results_identical(a, b)

    def test_chaos_falls_back(self):
        def run(engine):
            sim = EventDrivenSimulator(
                _params(), UniformDistribution(500), seed=13,
                chaos=ChaosConfig(failure_rate=2.0, mttr=0.2),
                engine=engine,
            )
            return sim, sim.run(4000)

        sim_a, a = run("legacy")
        sim_b, b = run("fast")
        assert sim_b.last_engine == "legacy"
        assert a.failure_events > 0  # chaos actually happened
        assert_results_identical(a, b)

    def test_supports_gate(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=1)
        assert kernel.supports(sim)
        assert not kernel.supports(
            EventDrivenSimulator(
                _params(), UniformDistribution(500),
                routing="least-outstanding", seed=1,
            )
        )
        assert not kernel.supports(
            EventDrivenSimulator(
                _params(), UniformDistribution(500), cache=LRUCache(10), seed=1
            )
        )
        assert not kernel.supports(
            EventDrivenSimulator(
                _params(), UniformDistribution(500), seed=1,
                chaos=ChaosConfig(failure_rate=0.5, mttr=0.1),
            )
        )


@st.composite
def _configs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=50, max_value=800))
    c = draw(st.integers(min_value=0, max_value=min(m, 50)))
    d = draw(st.integers(min_value=1, max_value=min(4, n)))
    x = draw(st.integers(min_value=1, max_value=m))
    routing = draw(st.sampled_from(["pin", "random"]))
    service = draw(st.sampled_from(["deterministic", "exponential"]))
    queue_limit = draw(st.integers(min_value=0, max_value=16))
    headroom = draw(st.floats(min_value=0.5, max_value=6.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_queries = draw(st.integers(min_value=1, max_value=1500))
    return (n, m, c, d, x, routing, service, queue_limit, headroom, seed,
            n_queries)


@pytest.mark.slow
class TestHypothesisDifferential:
    @given(_configs())
    @settings(max_examples=40, deadline=None)
    def test_random_configurations(self, config):
        (n, m, c, d, x, routing, service, queue_limit, headroom, seed,
         n_queries) = config
        params = SystemParameters(n=n, m=m, c=c, d=d, rate=1000.0)
        kwargs = dict(
            routing=routing, service=service, queue_limit=queue_limit,
            node_capacity=headroom * params.even_split, seed=seed,
        )
        legacy = EventDrivenSimulator(
            params, AdversarialDistribution(m, x), **kwargs
        )
        fast = EventDrivenSimulator(
            params, AdversarialDistribution(m, x), engine="fast", **kwargs
        )
        for trial in (0, 1):
            a = legacy.run(n_queries, trial=trial)
            b = fast.run(n_queries, trial=trial)
            assert fast.last_engine == "fast"
            assert_results_identical(a, b)

"""Manifest schema: round-trip, validation, throughput semantics."""

import json

import pytest

from repro.perf.schema import (
    SCHEMA_VERSION,
    PerfSchemaError,
    RunManifest,
    git_sha,
    host_info,
    peak_rss_bytes,
    validate_manifest,
)


def make_manifest(**overrides) -> RunManifest:
    base = dict(
        bench="demo",
        smoke=True,
        ok=True,
        engine_seconds=2.0,
        export_seconds=0.5,
        wall_seconds=2.6,
        config={"n": 50, "workers": 4},
        seed=123,
        workers=4,
        git_sha="a" * 40,
        events=1000,
        balls=4000,
        ops={"campaign_balls_total{campaign=uniform}": 4000.0},
        spans={"demo/engine": {"count": 1, "total_seconds": 2.0}},
        tracemalloc_peak_bytes=1024,
        rss_peak_bytes=2048,
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRoundTrip:
    def test_to_dict_passes_validator(self):
        assert validate_manifest(make_manifest().to_dict())

    def test_from_dict_recovers_every_field(self):
        original = make_manifest()
        restored = RunManifest.from_dict(original.to_dict())
        assert restored == original

    def test_json_line_round_trips(self):
        original = make_manifest()
        restored = RunManifest.from_dict(json.loads(original.to_json_line()))
        assert restored == original

    def test_json_line_rejects_nan(self):
        with pytest.raises(ValueError):
            make_manifest(engine_seconds=float("nan")).to_json_line()

    def test_schema_version_stamped(self):
        assert make_manifest().to_dict()["schema"] == SCHEMA_VERSION


class TestThroughput:
    def test_divides_by_engine_time_not_wall(self):
        m = make_manifest(engine_seconds=2.0, wall_seconds=10.0, events=1000)
        assert m.events_per_second == 500.0
        assert m.balls_per_second == 2000.0

    def test_none_without_workload(self):
        m = make_manifest(events=None, balls=None)
        assert m.events_per_second is None
        assert m.balls_per_second is None

    def test_none_with_zero_engine_time(self):
        m = make_manifest(engine_seconds=0.0)
        assert m.events_per_second is None
        assert m.balls_per_second is None


class TestValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(PerfSchemaError, match="must be a dict"):
            validate_manifest([1, 2, 3])

    def test_unknown_schema_version_rejected(self):
        record = make_manifest().to_dict()
        record["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(PerfSchemaError, match="unsupported manifest schema"):
            validate_manifest(record)

    @pytest.mark.parametrize(
        "missing",
        ["bench", "smoke", "ok", "timestamp", "timings", "throughput",
         "ops", "spans", "memory", "host", "config"],
    )
    def test_missing_field_rejected(self, missing):
        record = make_manifest().to_dict()
        del record[missing]
        with pytest.raises(PerfSchemaError, match=missing):
            validate_manifest(record)

    def test_bool_does_not_satisfy_numeric_field(self):
        record = make_manifest().to_dict()
        record["timestamp"] = True
        with pytest.raises(PerfSchemaError, match="timestamp"):
            validate_manifest(record)

    def test_int_does_not_satisfy_flag_field(self):
        record = make_manifest().to_dict()
        record["smoke"] = 1
        with pytest.raises(PerfSchemaError, match="smoke"):
            validate_manifest(record)

    def test_empty_bench_rejected(self):
        record = make_manifest(bench="x").to_dict()
        record["bench"] = ""
        with pytest.raises(PerfSchemaError, match="non-empty"):
            validate_manifest(record)

    def test_negative_timing_rejected(self):
        record = make_manifest().to_dict()
        record["timings"]["engine_seconds"] = -1.0
        with pytest.raises(PerfSchemaError, match="engine_seconds"):
            validate_manifest(record)

    def test_non_numeric_timing_rejected(self):
        record = make_manifest().to_dict()
        record["timings"]["wall_seconds"] = "fast"
        with pytest.raises(PerfSchemaError, match="wall_seconds"):
            validate_manifest(record)

    def test_missing_timing_rejected(self):
        record = make_manifest().to_dict()
        del record["timings"]["export_seconds"]
        with pytest.raises(PerfSchemaError, match="export_seconds"):
            validate_manifest(record)

    def test_from_dict_validates(self):
        with pytest.raises(PerfSchemaError):
            RunManifest.from_dict({"schema": SCHEMA_VERSION})


class TestProvenance:
    def test_git_sha_in_this_checkout(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_checkout(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None

    def test_host_info_keys(self):
        info = host_info()
        assert {"cpu_count", "python", "platform"} <= set(info)

    def test_peak_rss_positive_on_posix(self):
        peak = peak_rss_bytes()
        assert peak is None or peak > 0

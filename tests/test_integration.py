"""Integration tests: whole-pipeline and cross-engine validation.

These are the tests that tie the reproduction together: the adversary
plans from public knowledge, the simulators execute against private
randomness, and the paper's claims come out — at reduced scale so the
suite stays fast.
"""

import numpy as np
import pytest

from repro.adversary.strategies import OptimalAdversary
from repro.cluster.cluster import Cluster
from repro.core.bounds import normalized_max_load_bound
from repro.core.cases import critical_cache_size, plan_best_attack
from repro.core.notation import SystemParameters
from repro.core.provisioning import recommend
from repro.sim.analytic import (
    best_achievable_gain,
    simulate_distribution,
    simulate_uniform_attack,
)
from repro.sim.eventsim import EventDrivenSimulator
from repro.analysis.critical_point import find_critical_cache_size


class TestEndToEndPipeline:
    """Adversary -> cache -> cluster -> metrics, all public/private
    boundaries respected."""

    def test_planned_attack_executes_as_predicted(self):
        params = SystemParameters(n=100, m=5000, c=30, d=3, rate=10_000.0)
        adversary = OptimalAdversary(params, k_prime=0.5)
        dist = adversary.distribution()
        report = simulate_distribution(params, dist, trials=20, seed=1)
        # Case 1: a single uncached key at rate R/x on one node.
        assert adversary.x == 31
        assert report.worst_case == pytest.approx(100 / 31, rel=0.01)
        # The analytic bound covers the simulation.
        bound = normalized_max_load_bound(params, adversary.x, k_prime=0.5)
        assert report.worst_case <= bound

    def test_provisioned_system_defeats_the_same_adversary(self):
        vulnerable = SystemParameters(n=100, m=5000, c=30, d=3, rate=10_000.0)
        report = recommend(vulnerable, k_prime=0.75)
        protected = vulnerable.with_cache(report.required_cache)
        adversary = OptimalAdversary(protected, k_prime=0.75)
        outcome = simulate_distribution(
            protected, adversary.distribution(), trials=20, seed=2
        )
        assert not plan_best_attack(protected, k_prime=0.75).effective
        assert outcome.worst_case <= 1.05  # ineffective up to MC wiggle

    def test_cluster_object_path_matches_analytic_path(self):
        """Routing rates through a real Cluster (hash partitioner +
        least-loaded selection) produces gains statistically matching
        the abstract placement simulator."""
        params = SystemParameters(n=50, m=2000, c=10, d=3, rate=1000.0)
        x = 500
        analytic = simulate_uniform_attack(params, x, trials=30, seed=3).mean

        gains = []
        for seed in range(30):
            cluster = Cluster(n=50, d=3, m=2000, seed=seed)
            keys = np.arange(params.c, x)
            rates = np.full(keys.size, params.rate / x)
            loads = cluster.apply_rates((keys, rates), total_rate=params.rate)
            gains.append(loads.normalized_max)
        assert np.mean(gains) == pytest.approx(analytic, rel=0.1)


class TestCrossEngineAgreement:
    def test_eventsim_matches_analytic_normalized_max(self):
        """The request-level engine and the placement engine agree on
        the paper's headline metric within sampling error."""
        params = SystemParameters(n=20, m=500, c=10, d=3, rate=5000.0)
        x = 100
        analytic = simulate_uniform_attack(params, x, trials=30, seed=4).mean

        from repro.workload.adversarial import AdversarialDistribution

        event_gains = []
        for trial in range(5):
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(params.m, x), seed=5
            )
            event_gains.append(sim.run(40_000, trial=trial).normalized_max)
        assert np.mean(event_gains) == pytest.approx(analytic, rel=0.25)

    def test_capacity_theorem_observable_in_eventsim(self):
        """Section III-B's closing claim: capacity above the E[L_max]
        bound => no node saturates.  The event engine shows it."""
        params = SystemParameters(n=20, m=500, c=10, d=3, rate=5000.0)
        plan = plan_best_attack(params, k_prime=0.75)
        bound_rate = plan.gain_bound * params.even_split

        from repro.workload.adversarial import AdversarialDistribution

        sim = EventDrivenSimulator(
            params,
            AdversarialDistribution(params.m, plan.x),
            node_capacity=bound_rate * 1.1,
            seed=6,
        )
        result = sim.run(30_000)
        assert result.drop_rate == 0.0


class TestCriticalPointReproduction:
    def test_empirical_crossing_is_theta_n(self):
        """The empirical critical cache size sits within a constant
        factor of n (and is independent of m), the paper's core claim.
        Uses a small system so the bisection stays fast."""
        n, d = 50, 3

        def gain_at(c, m):
            params = SystemParameters(n=n, m=m, c=c, d=d, rate=1000.0)
            return best_achievable_gain(params, trials=10, seed=7)[0]

        result = find_critical_cache_size(
            lambda c: gain_at(c, m=4000), lo=5, hi=1000, tolerance=8
        )
        # Theta(n): between n/2 and 4n for this configuration.
        assert n / 2 <= result.critical_cache <= 4 * n

        # Independence of m: doubling the key space moves the crossing
        # by at most the bisection tolerance + MC noise band.
        result2 = find_critical_cache_size(
            lambda c: gain_at(c, m=8000), lo=5, hi=1000, tolerance=8
        )
        assert abs(result2.critical_cache - result.critical_cache) <= 0.5 * n

    def test_analytic_critical_point_brackets_empirical(self):
        n, d = 50, 3
        analytic_paper_k = critical_cache_size(n, d, k=1.2)
        analytic_calibrated = critical_cache_size(n, d, k_prime=0.75)

        def gain_at(c):
            params = SystemParameters(n=n, m=4000, c=c, d=d, rate=1000.0)
            return best_achievable_gain(params, trials=10, seed=8)[0]

        empirical = find_critical_cache_size(gain_at, lo=5, hi=1000, tolerance=8)
        lo_ref = min(analytic_paper_k, analytic_calibrated)
        hi_ref = max(analytic_paper_k, analytic_calibrated)
        assert lo_ref * 0.4 <= empirical.critical_cache <= hi_ref * 1.6

"""Tests for repro.cluster.health."""

import numpy as np
import pytest

from repro.cluster.health import assess_health
from repro.exceptions import AnalysisError
from repro.types import LoadVector


def _vector(loads, rate=None):
    arr = np.asarray(loads, dtype=float)
    return LoadVector(loads=arr, total_rate=float(arr.sum()) if rate is None else rate)


class TestAssessHealth:
    def test_healthy_without_capacity(self):
        health = assess_health(_vector([1.0, 2.0, 3.0]))
        assert health.healthy
        assert health.saturated == ()
        assert health.headroom is None
        assert health.max_load == 3.0
        assert health.imbalance == pytest.approx(1.5)

    def test_saturation_detection(self):
        health = assess_health(_vector([1.0, 5.0, 9.0]), node_capacity=6.0)
        assert not health.healthy
        assert health.saturated == (2,)
        assert health.headroom == pytest.approx(-3.0)

    def test_boundary_not_saturated(self):
        health = assess_health(_vector([6.0, 1.0]), node_capacity=6.0)
        assert health.healthy

    def test_normalized_max_consistent(self):
        vector = _vector([10.0, 30.0], rate=40.0)
        health = assess_health(vector)
        assert health.normalized_max == pytest.approx(vector.normalized_max)

    def test_zero_load_cluster(self):
        health = assess_health(_vector([0.0, 0.0]), node_capacity=1.0)
        assert health.healthy
        assert health.imbalance == 0.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(AnalysisError):
            assess_health(_vector([1.0]), node_capacity=0.0)

    def test_describe_mentions_state(self):
        assert "healthy" in assess_health(_vector([1.0, 1.0])).describe()
        text = assess_health(_vector([9.0, 1.0]), node_capacity=5.0).describe()
        assert "SATURATED" in text
